"""Shared helpers for the benchmark harness (imported by the benchmark modules).

Every benchmark module regenerates one paper artefact (a figure, a theorem, or
a design-choice ablation — see ``repro.experiments.registry``).  Each test

* runs the measurement exactly once through ``benchmark.pedantic`` (the
  timings pytest-benchmark reports are the wall-clock cost of regenerating the
  artefact, not a claim from the paper);
* prints the regenerated table/series so the captured benchmark output shows
  the paper-shaped result; and
* asserts the *shape* of the result — who wins, growth direction, crossover —
  against the corresponding formula, with constants fitted rather than assumed.
"""

from __future__ import annotations

from repro.adversary.activation import ActivationSchedule
from repro.adversary.base import InterferenceAdversary
from repro.engine.runner import TrialSummary, run_trials
from repro.engine.simulator import SimulationConfig
from repro.params import ModelParameters
from repro.protocols.base import ProtocolFactory


def measure(
    params: ModelParameters,
    protocol_factory: ProtocolFactory,
    activation: ActivationSchedule,
    adversary: InterferenceAdversary,
    seeds: int = 3,
    max_rounds: int = 100_000,
) -> TrialSummary:
    """Run one configuration across ``seeds`` seeds and return the summary."""
    config = SimulationConfig(
        params=params,
        protocol_factory=protocol_factory,
        activation=activation,
        adversary=adversary,
        max_rounds=max_rounds,
    )
    return run_trials(config, seeds=seeds)


def run_once(benchmark, function):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
