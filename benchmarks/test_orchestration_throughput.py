"""Orchestration throughput: one persistent execution pool vs. a fresh pool per unit.

Not a paper artefact — this benchmark instruments the orchestration layer the
same way ``test_engine_throughput`` instruments the round loop.  The regime is
many *tiny* work units (small campaign cells, 2-seed search candidates): here
the pre-pool execution path — a fresh ``ProcessPoolExecutor`` created and torn
down per cell / per candidate, every trial crossing the process boundary as a
fully pickled config and returning a full ``SimulationResult`` — is dominated
by pool spin-up and pickling, not simulation.  The persistent
:class:`~repro.engine.pool.ExecutionPool` (one spin-up per session, chunked
template-and-delta dispatch, in-worker reduction) removes that tax.

Both paths must produce byte-identical store rows — asserted here — so the
speedup is free.  Measured on the baseline machine: ~3.7x on the campaign
grid and ~3x on the search generation (the pinned bench scenarios
``campaign_many_small_cells`` / ``search_generation`` track the pooled path's
absolute throughput across revisions; this test pins the *relative* win).
Wall-clock ratios on shared CI runners jitter, so the hard gate is
deliberately loose and the emitted table records the real ratio.
"""

from __future__ import annotations

import time
from pathlib import Path

from _bench_helpers import run_once
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore, TrialRecord
from repro.engine.plan import ExecutionPlan
from repro.engine.runner import run_trials
from repro.experiments.tables import render_table

#: The many-small-cells grid: 16 trapdoor cells of ~2 ms of simulation each.
GRID = CampaignSpec(
    name="orchestration-bench",
    protocols=("trapdoor",),
    workloads=("quiet_start",),
    frequencies=(4, 8),
    budgets=(0, 1),
    participants=(8, 16),
    node_counts=(2, 3),
    seeds=2,
    max_rounds=1_500,
)


def _run_fresh_pool_per_cell(store: ResultStore) -> None:
    """The pre-pool execution path, reproduced exactly.

    One ``run_trials(plan=ExecutionPlan(workers=2))`` call per cell — i.e. one fresh
    ``ProcessPoolExecutor`` spin-up/teardown per cell, full configs out, full
    ``SimulationResult`` objects back, reduction to store rows in the parent.
    """
    GRID.validate_workloads()
    store.register_campaign(GRID.name, GRID.to_json())
    for cell in GRID.cells():
        summary = run_trials(cell.config(), seeds=cell.seeds, plan=ExecutionPlan(workers=2))
        records = [
            TrialRecord.from_result(seed, result)
            for seed, result in zip(summary.seeds, summary.results)
        ]
        store.record_cell(GRID.name, cell.key, cell.describe_dict(), records)


def _run_persistent_pool(store: ResultStore) -> None:
    """The pooled path: one pool for the whole grid, chunked and reduced."""
    with CampaignRunner(GRID, store, plan=ExecutionPlan(workers=2, pool_chunk=2)) as runner:
        runner.run()


def test_persistent_pool_beats_fresh_pool_per_cell(benchmark, emit, tmp_path: Path):
    def run():
        fresh_start = time.perf_counter()
        with ResultStore(tmp_path / "fresh.db") as fresh_store:
            _run_fresh_pool_per_cell(fresh_store)
            fresh_elapsed = time.perf_counter() - fresh_start
            pooled_start = time.perf_counter()
            with ResultStore(tmp_path / "pooled.db") as pooled_store:
                _run_persistent_pool(pooled_store)
                pooled_elapsed = time.perf_counter() - pooled_start
                fresh_rows = list(fresh_store.iter_cells(GRID.name))
                pooled_rows = list(pooled_store.iter_cells(GRID.name))
        return fresh_elapsed, pooled_elapsed, fresh_rows, pooled_rows

    fresh_elapsed, pooled_elapsed, fresh_rows, pooled_rows = run_once(benchmark, run)
    cells = len(GRID.cells())
    row = {
        "cells": cells,
        "fresh_pool_cells_per_sec": cells / fresh_elapsed,
        "pooled_cells_per_sec": cells / pooled_elapsed,
        "speedup": fresh_elapsed / pooled_elapsed,
    }
    emit(render_table([row], title="Orchestration: fresh pool per cell vs persistent pool",
                      float_digits=2))

    # The headline claim is *identity first*: the pooled/chunked/reduced
    # campaign persists byte-identical rows (same keys, same descriptions,
    # same trial scalars, same insertion order).
    assert pooled_rows == fresh_rows

    assert row["fresh_pool_cells_per_sec"] > 0
    assert row["pooled_cells_per_sec"] > 0
    # Measured ~3.7x on the baseline machine (~3x for search generations).
    # Shared-runner wall clocks jitter by tens of percent, so the gate only
    # catches "the pool stopped helping at all"; the table has the real ratio.
    assert row["speedup"] >= 1.5, row
