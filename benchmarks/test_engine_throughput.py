"""Engine throughput: streaming trace-free execution vs. full-trace recording.

Not a paper artefact — this benchmark instruments the execution core itself.
Two measurements:

* rounds/second of a fixed-length execution with ``TraceLevel.FULL`` (every
  round record buffered) vs ``TraceLevel.NONE`` (pure streaming: checker and
  metrics fold incrementally, nothing is retained);
* a Theorem-10-style multi-seed batch run serially with full traces vs. on a
  4-process pool with no traces — the two must produce *identical*
  liveness/agreement/latency statistics, which is what makes the fast
  configuration safe to use everywhere.
"""

from __future__ import annotations

import time
from dataclasses import replace

from _bench_helpers import run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import RandomJammer
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan
from repro.engine.runner import run_trials
from repro.engine.simulator import SimulationConfig, simulate
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.protocol import TrapdoorProtocol


def _fixed_length_config(trace_level: TraceLevel) -> SimulationConfig:
    """A fixed-round-count execution so both variants simulate identical work."""
    return SimulationConfig(
        params=ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64),
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=8, spacing=3),
        adversary=RandomJammer(),
        max_rounds=4_000,
        stop_when_synchronized=False,
        trace_level=trace_level,
    )


def _rounds_per_second(trace_level: TraceLevel, repetitions: int = 3) -> tuple[float, int]:
    """Best-of-``repetitions`` throughput for one trace level."""
    best = 0.0
    rounds = 0
    for _ in range(repetitions):
        config = _fixed_length_config(trace_level)
        start = time.perf_counter()
        result = simulate(config)
        elapsed = time.perf_counter() - start
        rounds = result.rounds_simulated
        best = max(best, rounds / elapsed)
    return best, rounds


def test_trace_free_execution_throughput(benchmark, emit):
    def run():
        full_rate, rounds = _rounds_per_second(TraceLevel.FULL)
        none_rate, _ = _rounds_per_second(TraceLevel.NONE)
        return {
            "rounds_per_execution": rounds,
            "full_trace_rounds_per_sec": full_rate,
            "trace_free_rounds_per_sec": none_rate,
            "speedup": none_rate / full_rate,
        }

    row = run_once(benchmark, run)
    emit(
        render_table(
            [row],
            title="Engine throughput — full-trace vs trace-free streaming",
            float_digits=2,
        )
    )
    assert row["full_trace_rounds_per_sec"] > 0
    assert row["trace_free_rounds_per_sec"] > 0
    # Trace-free streaming should not be meaningfully slower than full
    # recording.  The bound trades sensitivity for stability: wall-clock
    # ratios on shared CI runners jitter by tens of percent, so this gate only
    # catches gross regressions; the emitted table records the real ratio.
    assert row["speedup"] >= 0.7, row


def test_trace_free_mode_allocates_no_per_round_trace_objects(monkeypatch):
    """Micro-assert: TraceLevel.NONE never touches the trace machinery.

    A trace-free execution must not instantiate a recorder and must never
    append a round record to an :class:`ExecutionTrace` — the whole point of
    the streaming fast path is that no per-round trace objects are retained.
    The FULL-trace control run confirms the instrumentation actually counts.
    """
    from repro.engine import observers as observers_module
    from repro.engine import trace as trace_module

    appends: list[int] = []
    recorders: list[int] = []
    original_append = trace_module.ExecutionTrace.append
    original_init = observers_module.TraceRecorder.__init__

    def counting_append(self, record):
        appends.append(record.global_round)
        return original_append(self, record)

    def counting_init(self, *args, **kwargs):
        recorders.append(1)
        return original_init(self, *args, **kwargs)

    monkeypatch.setattr(trace_module.ExecutionTrace, "append", counting_append)
    monkeypatch.setattr(observers_module.TraceRecorder, "__init__", counting_init)

    config = replace(_fixed_length_config(TraceLevel.NONE), max_rounds=500)
    result = simulate(config)
    assert result.trace is None
    assert recorders == [], "trace-free mode must not build a TraceRecorder"
    assert appends == [], "trace-free mode must not append per-round trace records"

    full = simulate(replace(config, trace_level=TraceLevel.FULL))
    assert len(recorders) == 1
    assert appends == list(range(1, full.rounds_simulated + 1))


def test_parallel_trace_free_batch_matches_serial_full_trace(benchmark, emit):
    """The Theorem-10 configuration, serial+FULL vs workers=4+NONE."""
    config = SimulationConfig(
        params=ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64),
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=8, spacing=3),
        adversary=RandomJammer(),
        max_rounds=100_000,
    )
    seeds = 6

    def run():
        serial_start = time.perf_counter()
        serial = run_trials(config, seeds=seeds)
        serial_elapsed = time.perf_counter() - serial_start
        parallel_start = time.perf_counter()
        parallel = run_trials(
            replace(config), seeds=seeds, trace_level=TraceLevel.NONE, plan=ExecutionPlan(workers=4)
        )
        parallel_elapsed = time.perf_counter() - parallel_start
        return serial, parallel, serial_elapsed, parallel_elapsed

    serial, parallel, serial_elapsed, parallel_elapsed = run_once(benchmark, run)
    emit(
        render_table(
            [
                {
                    "mode": "serial, full trace",
                    "seconds": serial_elapsed,
                    "liveness": serial.liveness_rate,
                    "agreement": serial.agreement_rate,
                    "mean_latency": serial.mean_latency,
                    "p90_latency": serial.percentile_latency(0.9),
                },
                {
                    "mode": "4 workers, no trace",
                    "seconds": parallel_elapsed,
                    "liveness": parallel.liveness_rate,
                    "agreement": parallel.agreement_rate,
                    "mean_latency": parallel.mean_latency,
                    "p90_latency": parallel.percentile_latency(0.9),
                },
            ],
            title="Theorem 10 batch — serial/full-trace vs parallel/trace-free",
            float_digits=3,
        )
    )
    assert parallel.latencies() == serial.latencies()
    assert parallel.liveness_rate == serial.liveness_rate
    assert parallel.agreement_rate == serial.agreement_rate
    assert parallel.percentile_latency(0.9) == serial.percentile_latency(0.9)
    for serial_result, parallel_result in zip(serial.results, parallel.results):
        assert parallel_result.metrics == serial_result.metrics
