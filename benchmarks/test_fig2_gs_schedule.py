"""Experiment ``fig2`` — regenerate Figure 2 (Good Samaritan round structure).

Figure 2 of the paper describes, per super-epoch ``k``: the ``lg N + 2``
epochs of length ``Θ(2^k·log³N)``, the broadcast probability ladder
(``1/N, 2/N, …, 1/2, 1/2, 1/2``), and the frequency-selection distributions —
uniform over the prefix ``[1 .. 2^k]`` mixed with the whole band in regular
epochs, and the ``d``-then-``[1 .. 2^d]`` special distribution in the last two
epochs.  The structure is deterministic; this benchmark regenerates it and
checks every component.
"""

from __future__ import annotations

import pytest

from _bench_helpers import run_once
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.good_samaritan.schedule import GoodSamaritanSchedule

PARAMETER_POINTS = [
    ModelParameters(frequencies=8, disruption_budget=3, participant_bound=256),
    ModelParameters(frequencies=16, disruption_budget=8, participant_bound=256),
    ModelParameters(frequencies=32, disruption_budget=16, participant_bound=1024),
]


@pytest.mark.parametrize("params", PARAMETER_POINTS, ids=lambda p: p.describe())
def test_fig2_super_epoch_structure(benchmark, emit, params):
    schedule = run_once(benchmark, lambda: GoodSamaritanSchedule(params))
    rows = schedule.describe_rows()
    emit(render_table(rows, title=f"Figure 2 — Good Samaritan structure for {params.describe()}"))

    # lg F super-epochs, each with lg N + 2 epochs.
    assert len(rows) == params.log_frequencies
    assert all(row["epochs"] == params.log_participants + 2 for row in rows)

    # Epoch lengths double from super-epoch to super-epoch (the 2^k factor).
    lengths = [row["epoch_length"] for row in rows]
    for previous, current in zip(lengths, lengths[1:]):
        assert current == pytest.approx(2 * previous, rel=0.02)

    # The prefix width is 2^k clamped to the band.
    assert [row["prefix_width"] for row in rows] == [
        min(2**k, params.frequencies) for k in range(1, len(rows) + 1)
    ]

    # The fallback epochs are at least four times the longest optimistic epoch.
    assert schedule.fallback_epoch_length >= 4 * lengths[-1]


@pytest.mark.parametrize("params", PARAMETER_POINTS[:2], ids=lambda p: p.describe())
def test_fig2_probability_ladder_and_special_distribution(benchmark, emit, params):
    schedule = run_once(benchmark, lambda: GoodSamaritanSchedule(params))

    ladder = [
        {"epoch": epoch, "broadcast_probability": schedule.broadcast_probability(epoch)}
        for epoch in range(1, schedule.epochs_per_super_epoch + 1)
    ]
    emit(render_table(ladder, title="Figure 2 — broadcast probability per epoch", float_digits=5))
    # 2^e / 2N for the first lg N epochs, then 1/2 in the last two.
    for entry in ladder[: params.log_participants]:
        expected = min(0.5, 2 ** entry["epoch"] / (2 * params.participant_bound))
        assert entry["broadcast_probability"] == pytest.approx(expected)
    assert ladder[-1]["broadcast_probability"] == pytest.approx(0.5)
    assert ladder[-2]["broadcast_probability"] == pytest.approx(0.5)

    # The special-round frequency distribution of Figure 2: a proper
    # distribution, concentrated on low frequencies, covering the whole band.
    for k in range(1, schedule.super_epoch_count + 1):
        distribution = schedule.special_frequency_distribution(k)
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert distribution[1] >= distribution[params.frequencies]
        assert min(distribution.values()) > 0.0


def test_fig2_adaptive_target_super_epoch(benchmark, emit):
    params = ModelParameters(frequencies=32, disruption_budget=16, participant_bound=256)

    def build():
        schedule = GoodSamaritanSchedule(params)
        return schedule, [
            {
                "t_prime": t_prime,
                "target_super_epoch": schedule.expected_adaptive_super_epoch(t_prime),
                "round_bound": schedule.adaptive_round_bound(t_prime),
            }
            for t_prime in (0, 1, 2, 4, 8, 16)
        ]

    schedule, rows = run_once(benchmark, build)
    emit(render_table(rows, title="Figure 2 — adaptive target super-epoch lg(2t') and round bound"))
    targets = [row["target_super_epoch"] for row in rows]
    bounds = [row["round_bound"] for row in rows]
    assert targets == sorted(targets)
    assert bounds == sorted(bounds)
    assert bounds[-1] <= schedule.optimistic_rounds
