"""Experiment ``thm10`` — Trapdoor Protocol scaling (Theorem 10).

Theorem 10: the Trapdoor Protocol synchronizes every node within
``O(F/(F−t)·log²N + F·t/(F−t)·logN)`` rounds, w.h.p.  The benchmark sweeps
``N`` at fixed ``(F, t)`` and ``t`` at fixed ``(F, N)``, measures the mean
worst-node latency over several seeds, and checks that the measured curves
match the theorem's shape (single fitted constant, growing in the right
direction) while staying within a small constant factor of the formula.

The ``N``-scaling sweep runs *through the campaign layer*: the grid is a
declarative :class:`~repro.campaigns.spec.CampaignSpec`, the measurements are
persisted in a :class:`~repro.campaigns.store.ResultStore`, and the table is
read back through :mod:`repro.campaigns.query` — with one cell cross-checked
against a direct :func:`~repro.engine.runner.run_trials` call to prove the
store reproduces the pre-migration numbers exactly.
"""

from __future__ import annotations

from _bench_helpers import measure, run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import RandomJammer
from repro.analysis.bounds import trapdoor_upper_bound
from repro.analysis.fitting import fit_constant, monotonically_increasing
from repro.campaigns.query import summary_for_cell
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, register_workload
from repro.campaigns.store import ResultStore
from repro.experiments.tables import render_table
from repro.experiments.workloads import Workload
from repro.params import ModelParameters
from repro.protocols.trapdoor.protocol import TrapdoorProtocol


def _thm10_workload(node_count: int) -> Workload:
    """The Theorem 10 scenario: staggered arrivals, full-budget random jammer."""
    return Workload(
        name="thm10_staggered",
        activation=StaggeredActivation(count=node_count, spacing=3),
        adversary=RandomJammer(),
        description="staggered arrivals every 3 rounds, full-budget random jammer",
    )


register_workload("thm10_staggered", _thm10_workload)


def test_thm10_scaling_in_participant_bound(benchmark, emit, tmp_path):
    frequencies, budget = 8, 3
    participant_bounds = (16, 64, 256, 1024)
    spec = CampaignSpec(
        name="thm10_n_scaling",
        protocols=("trapdoor",),
        workloads=("thm10_staggered",),
        frequencies=(frequencies,),
        budgets=(budget,),
        participants=participant_bounds,
        node_counts=(8,),
        seeds=3,
        max_rounds=100_000,
    )

    def run():
        with ResultStore(tmp_path / "thm10.db") as store:
            CampaignRunner(spec, store).run()
            rows = []
            for cell in spec.cells():
                summary = summary_for_cell(store, cell.key)
                rows.append(
                    {
                        "N": cell.params.participant_bound,
                        "measured_mean_latency": summary.mean_latency,
                        "theorem10_shape": trapdoor_upper_bound(
                            cell.params.participant_bound, frequencies, budget
                        ),
                        "agreement": summary.agreement_rate,
                    }
                )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Theorem 10 — Trapdoor latency vs N (F=8, t=3)", float_digits=1))

    # The store-backed numbers are the pre-migration numbers: an equivalent
    # direct measurement of the N=64 cell must agree to the last bit.
    direct = measure(
        ModelParameters(frequencies, budget, 64),
        TrapdoorProtocol.factory(),
        StaggeredActivation(count=8, spacing=3),
        RandomJammer(),
        seeds=3,
    )
    migrated = next(row for row in rows if row["N"] == 64)
    assert migrated["measured_mean_latency"] == direct.mean_latency
    assert migrated["agreement"] == direct.agreement_rate

    measured = [row["measured_mean_latency"] for row in rows]
    predicted = [row["theorem10_shape"] for row in rows]
    assert monotonically_increasing(measured, tolerance=0.1), measured
    fit = fit_constant(measured, predicted)
    assert fit.is_shape_match(0.85), f"measured N-scaling does not match Theorem 10: {fit}"
    # The fitted constant should be a small number (the protocol constants),
    # i.e. the formula is predictive, not just correlated.
    assert 0.5 <= fit.constant <= 50


def test_thm10_scaling_in_disruption_budget(benchmark, emit):
    frequencies, participant_bound = 8, 64
    budgets = (1, 3, 5, 6)

    def run():
        rows = []
        for budget in budgets:
            params = ModelParameters(frequencies, budget, participant_bound)
            summary = measure(
                params,
                TrapdoorProtocol.factory(),
                StaggeredActivation(count=8, spacing=3),
                RandomJammer(),
                seeds=3,
            )
            rows.append(
                {
                    "t": budget,
                    "measured_mean_latency": summary.mean_latency,
                    "theorem10_shape": trapdoor_upper_bound(participant_bound, frequencies, budget),
                    "liveness": summary.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Theorem 10 — Trapdoor latency vs t (F=8, N=64)", float_digits=1))

    assert all(row["liveness"] == 1.0 for row in rows)
    measured = [row["measured_mean_latency"] for row in rows]
    predicted = [row["theorem10_shape"] for row in rows]
    assert measured[-1] > measured[0], "heavier jamming budgets must cost more rounds"
    fit = fit_constant(measured, predicted)
    assert fit.is_shape_match(0.7), f"measured t-scaling does not match Theorem 10: {fit}"


def test_thm10_latency_within_constant_factor_of_formula(benchmark, emit):
    def run():
        rows = []
        for frequencies, budget, participant_bound in ((8, 3, 64), (16, 8, 64), (4, 1, 256)):
            params = ModelParameters(frequencies, budget, participant_bound)
            summary = measure(
                params,
                TrapdoorProtocol.factory(),
                StaggeredActivation(count=6, spacing=4),
                RandomJammer(),
                seeds=3,
            )
            formula = trapdoor_upper_bound(participant_bound, frequencies, budget)
            rows.append(
                {
                    "params": params.describe(),
                    "measured_max_latency": summary.max_latency,
                    "theorem10_shape": formula,
                    "ratio": summary.max_latency / formula,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Theorem 10 — worst measured latency vs formula (constant factor)", float_digits=2))
    ratios = [row["ratio"] for row in rows]
    # One shared constant factor: the spread between parameter points stays small.
    assert max(ratios) / min(ratios) < 6, ratios
    assert max(ratios) < 50
