"""Experiment ``fault_tolerance`` — crash-tolerant synchronization (§8).

The concluding remarks sketch a crash-tolerant Trapdoor variant: restart when
the leader goes silent for ``Ω(F²/(F−t)·logN)`` rounds, and delay committing
an output until several leader messages have been received.  This benchmark
kills the elected leader at different points of the execution and checks that
the surviving nodes still synchronize, agree among themselves, and re-elect a
unique replacement.
"""

from __future__ import annotations

from _bench_helpers import run_once
from repro.adversary.activation import ExplicitActivation, SimultaneousActivation
from repro.adversary.jammers import RandomJammer
from repro.engine.runner import run_trials
from repro.engine.simulator import SimulationConfig
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.fault_tolerant import (
    CrashSchedule,
    FaultToleranceConfig,
    FaultTolerantTrapdoorProtocol,
    crashable,
)
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule

PARAMS = ModelParameters(frequencies=8, disruption_budget=2, participant_bound=16)
FT_CONFIG = FaultToleranceConfig(
    trapdoor=TrapdoorConfig(final_epoch_constant=6.0),
    commit_threshold=2,
    assist_probability=0.25,
)
SCHEDULE = TrapdoorSchedule(PARAMS, FT_CONFIG.trapdoor)


def run_crash_scenario(crash_round: int | None, activation, seeds: int = 3):
    factory = FaultTolerantTrapdoorProtocol.factory(FT_CONFIG)
    if crash_round is not None:
        factory = crashable(factory, CrashSchedule(crash_rounds={0: crash_round}))
    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=factory,
        activation=activation,
        adversary=RandomJammer(),
        max_rounds=150_000,
    )
    return run_trials(config, seeds=seeds)


def survivors_agree(summary) -> float:
    """Fraction of executions where all nodes except the crashed one agree in every round."""
    clean = 0
    for result in summary.results:
        ok = True
        for record in result.trace:
            live_outputs = {
                value for node, value in record.outputs.items() if node != 0 and value is not None
            }
            if len(live_outputs) > 1:
                ok = False
                break
        clean += ok
    return clean / len(summary.results) if summary.results else 0.0


def survivor_liveness(summary) -> float:
    """Fraction of executions where every non-crashed node synchronized."""
    live = 0
    for result in summary.results:
        nodes = [n for n in result.trace.node_ids if n != 0]
        if all(result.trace.sync_round_of(n) is not None for n in nodes):
            live += 1
    return live / len(summary.results) if summary.results else 0.0


def test_fault_tolerance_scenarios(benchmark, emit):
    scenarios = {
        "no crash": None,
        "leader crashes right after winning": SCHEDULE.total_rounds + 1,
        "leader crashes after stabilization": 3 * SCHEDULE.total_rounds,
    }
    activation = ExplicitActivation(rounds=[1, 3, 5, 7])

    def run():
        rows = []
        for name, crash_round in scenarios.items():
            summary = run_crash_scenario(crash_round, activation)
            rows.append(
                {
                    "scenario": name,
                    "survivor_liveness": survivor_liveness(summary),
                    "survivor_agreement": survivors_agree(summary),
                    "mean_latency": summary.mean_latency,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=f"Crash-tolerant Trapdoor ({PARAMS.describe()}, leader = node 0, 3 seeds each)",
            float_digits=2,
        )
    )
    for row in rows:
        assert row["survivor_liveness"] == 1.0, row
        assert row["survivor_agreement"] >= 2 / 3, row
    baseline = next(row for row in rows if row["scenario"] == "no crash")
    early_crash = next(row for row in rows if "right after winning" in row["scenario"])
    # Recovering from an early leader crash costs extra rounds (the silence
    # timeout plus a fresh contention), so the latency must be visibly larger.
    assert early_crash["mean_latency"] > baseline["mean_latency"]


def test_fault_tolerance_without_crashes_matches_trapdoor_behaviour(benchmark, emit):
    def run():
        summary = run_crash_scenario(None, SimultaneousActivation(count=5), seeds=4)
        return {
            "liveness": summary.liveness_rate,
            "agreement": summary.agreement_rate,
            "unique_leader": summary.unique_leader_rate,
            "mean_latency": summary.mean_latency,
            "schedule_rounds": SCHEDULE.total_rounds,
        }

    row = run_once(benchmark, run)
    emit(render_table([row], title="Crash-tolerant variant, failure-free executions", float_digits=2))
    assert row["liveness"] == 1.0
    assert row["agreement"] == 1.0
    assert row["unique_leader"] == 1.0
    # Delayed commitment costs a little extra over the plain schedule but stays
    # within a small constant factor.
    assert row["mean_latency"] < 3 * row["schedule_rounds"]
