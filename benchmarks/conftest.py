"""Pytest fixtures shared by the benchmark modules."""

from __future__ import annotations

import pytest


@pytest.fixture
def emit():
    """Print a block of benchmark output with a blank line around it."""

    def _emit(text: str) -> None:
        print()
        print(text)
        print()

    return _emit
