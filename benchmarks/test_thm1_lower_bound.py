"""Experiment ``thm1`` — the Theorem 1 lower bound and its proof gadgets.

Theorem 1: any *regular* protocol needs ``Ω(log²N / ((F−t)·loglogN))`` rounds
against an adversary that simply jams frequencies ``1..t`` forever.  The proof
rests on two gadgets we implement and check numerically here — Lemma 2 (the
balls-in-bins bound ``2^{-s}``) and Claim 3 (no broadcast probability is
"good" for two well-separated population sizes) — and the benchmark also runs
the Trapdoor Protocol against the theorem's fixed-band adversary to confirm
the measured synchronization times sit above the bound.
"""

from __future__ import annotations

import random


from _bench_helpers import measure, run_once
from repro.adversary.activation import SimultaneousActivation
from repro.adversary.jammers import FixedBandJammer
from repro.analysis.balls_in_bins import lemma2_lower_bound, no_singleton_probability_exact
from repro.analysis.bounds import theorem1_lower_bound, theorem5_lower_bound
from repro.analysis.good_probability import (
    claim3_column_exponents,
    good_population_exponents,
)
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.protocol import TrapdoorProtocol


def test_thm1_bound_formula_scaling(benchmark, emit):
    def build():
        rows = []
        for log_n in (8, 12, 16, 24, 32):
            participant_bound = 2**log_n
            for frequencies, budget in ((8, 4), (16, 8), (16, 14)):
                rows.append(
                    {
                        "N": f"2^{log_n}",
                        "F": frequencies,
                        "t": budget,
                        "thm1_bound": theorem1_lower_bound(participant_bound, frequencies, budget),
                        "thm5_bound": theorem5_lower_bound(participant_bound, frequencies, budget),
                    }
                )
        return rows

    rows = run_once(benchmark, build)
    emit(render_table(rows, title="Theorem 1 / Theorem 5 lower bounds", float_digits=1))
    # The bound grows with N and shrinks as more frequencies stay clear.
    same_ft = [row["thm1_bound"] for row in rows if row["F"] == 8]
    assert same_ft == sorted(same_ft)
    for log_n in (8, 16):
        narrow = next(r for r in rows if r["N"] == f"2^{log_n}" and r["F"] == 16 and r["t"] == 14)
        wide = next(r for r in rows if r["N"] == f"2^{log_n}" and r["F"] == 16 and r["t"] == 8)
        assert narrow["thm1_bound"] > wide["thm1_bound"]


def test_thm1_lemma2_balls_in_bins(benchmark, emit):
    def build():
        rng = random.Random(0)
        rows = []
        for s in (1, 2, 3, 4):
            # s "good frequency" bins plus the dominant "stay silent" bin.
            probabilities = [0.5 / s] * s + [0.5]
            for balls in (4, 8, 16):
                exact = no_singleton_probability_exact(balls, probabilities)
                rows.append(
                    {
                        "good_bins_s": s,
                        "balls_m": balls,
                        "P[no lone broadcaster]": exact,
                        "lemma2_bound_2^-s": lemma2_lower_bound(s),
                        "holds": exact >= lemma2_lower_bound(s),
                    }
                )
        return rows

    rows = run_once(benchmark, build)
    emit(render_table(rows, title="Lemma 2 — probability that no frequency has a lone broadcaster", float_digits=4))
    assert all(row["holds"] for row in rows)


def test_thm1_claim3_good_probability_separation(benchmark, emit):
    participant_bound = 2**128

    def build():
        exponents = claim3_column_exponents(participant_bound)
        rows = []
        for grid_point in range(1, 40):
            probability = grid_point / 40
            good = good_population_exponents(probability, exponents, participant_bound)
            rows.append({"broadcast_probability": probability, "good_for_columns": len(good)})
        return exponents, rows

    exponents, rows = run_once(benchmark, build)
    emit(
        render_table(
            rows,
            title=f"Claim 3 — candidate populations 2^m for m in {exponents}: columns each p is good for",
            float_digits=3,
        )
    )
    assert len(exponents) >= 2
    assert all(row["good_for_columns"] <= 1 for row in rows)


def test_thm1_measured_times_respect_the_bound(benchmark, emit):
    """Trapdoor against the Theorem 1 adversary: measured time ≥ the lower bound."""

    def run():
        rows = []
        for participant_bound in (16, 64, 256):
            params = ModelParameters(frequencies=8, disruption_budget=4, participant_bound=participant_bound)
            summary = measure(
                params,
                TrapdoorProtocol.factory(),
                SimultaneousActivation(count=min(8, participant_bound)),
                FixedBandJammer(),
                seeds=3,
            )
            rows.append(
                {
                    "N": participant_bound,
                    "measured_mean_latency": summary.mean_latency,
                    "thm1_lower_bound": theorem1_lower_bound(participant_bound, 8, 4),
                    "thm5_lower_bound": theorem5_lower_bound(participant_bound, 8, 4),
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Theorem 1 — measured Trapdoor latency vs lower bound (fixed-band jammer)", float_digits=1))
    for row in rows:
        assert row["measured_mean_latency"] >= row["thm1_lower_bound"]
    measured = [row["measured_mean_latency"] for row in rows]
    assert measured == sorted(measured), "latency must grow with N"
