"""Experiment ``thm4`` — the two-node lower bound (Theorem 4).

Theorem 4: against an adversary that always disrupts the ``t`` frequencies
with the largest selection-probability products, two nodes need
``Ω(F·t/(F−t)·log(1/ε))`` rounds to meet on an undisrupted frequency — the
per-round meeting probability is at most ``(k−t)/k²`` with ``k = min(F, 2t)``.
This benchmark (a) tabulates the analytic game value and checks the
``k = min(F, 2t)`` maximizer against brute force, and (b) runs two-node
Trapdoor executions against the product-targeting jammer and checks that
measured rendezvous times grow with ``t`` in the predicted shape.
"""

from __future__ import annotations

import pytest

from _bench_helpers import measure, run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import TwoNodeProductJammer
from repro.analysis.fitting import fit_constant
from repro.analysis.two_node_game import (
    best_protocol_meeting_probability,
    best_protocol_meeting_probability_bruteforce,
    expected_rounds_to_meet,
    rounds_lower_bound,
)
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.protocol import TrapdoorProtocol


def test_thm4_game_value_table(benchmark, emit):
    def build():
        rows = []
        for frequencies in (8, 16, 32):
            for budget in (1, 2, frequencies // 4, frequencies // 2, frequencies - 1):
                value = best_protocol_meeting_probability(frequencies, budget)
                rows.append(
                    {
                        "F": frequencies,
                        "t": budget,
                        "meeting_probability": value,
                        "bruteforce": best_protocol_meeting_probability_bruteforce(frequencies, budget),
                        "expected_rounds": expected_rounds_to_meet(frequencies, budget),
                        "rounds_bound_eps_1%": rounds_lower_bound(frequencies, budget, 0.01),
                    }
                )
        return rows

    rows = run_once(benchmark, build)
    emit(render_table(rows, title="Theorem 4 — two-node game value (k = min(F, 2t))", float_digits=4))
    for row in rows:
        assert row["meeting_probability"] == pytest.approx(row["bruteforce"])
    # Expected rendezvous time grows with t at fixed F.
    for frequencies in (8, 16, 32):
        series = [row["expected_rounds"] for row in rows if row["F"] == frequencies]
        assert series == sorted(series)


def test_thm4_measured_two_node_rendezvous(benchmark, emit):
    """Two nodes, staggered start, product-targeting jammer: latency grows ~ F·t/(F−t)."""

    frequencies = 8
    budgets = (1, 2, 3, 4, 6)

    def run():
        rows = []
        for budget in budgets:
            params = ModelParameters(
                frequencies=frequencies, disruption_budget=budget, participant_bound=16
            )
            summary = measure(
                params,
                TrapdoorProtocol.factory(),
                StaggeredActivation(count=2, spacing=5),
                TwoNodeProductJammer(),
                seeds=5,
            )
            rows.append(
                {
                    "t": budget,
                    "measured_mean_latency": summary.mean_latency,
                    "theory_shape_Ft/(F-t)": frequencies * budget / (frequencies - budget),
                    "liveness": summary.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title="Theorem 4 — measured two-node synchronization latency vs F·t/(F−t) shape",
            float_digits=1,
        )
    )
    assert all(row["liveness"] == 1.0 for row in rows)
    measured = [row["measured_mean_latency"] for row in rows]
    # Latency increases from the lightest to the heaviest disruption budget.
    assert measured[-1] > measured[0]
    # And the overall shape correlates with F·t/(F−t) once a constant is fitted.
    fit = fit_constant(measured, [row["theory_shape_Ft/(F-t)"] for row in rows])
    assert fit.r_squared > 0.5, f"shape mismatch: {fit}"
