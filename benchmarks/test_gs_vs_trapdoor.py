"""Experiment ``gs_vs_trapdoor`` — the adaptivity payoff (§7 motivation).

The Good Samaritan Protocol exists because "for practical networks, there are
often significantly lower levels of interference" than the worst-case budget
``t``: when the actual disruption ``t'`` is small the adaptive protocol should
finish well before the Trapdoor Protocol, whose schedule is sized for ``t``.
This benchmark runs both protocols on identical good executions while sweeping
``t'`` and reports who wins, by what factor, and where the advantage erodes.
"""

from __future__ import annotations

from dataclasses import replace

from _bench_helpers import run_once
from repro.adversary.activation import SimultaneousActivation
from repro.adversary.jammers import NoInterference, RandomJammer
from repro.adversary.oblivious import ObliviousSchedule
from repro.engine.runner import run_trials
from repro.engine.simulator import SimulationConfig
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

# A wide band with a large worst-case budget: the regime the Good Samaritan
# protocol is designed for (t = F/2, but usually only t' ≪ t channels are hit).
# The Trapdoor schedule is sized for t = 32 (its final epoch carries the
# F·t/(F−t) term), while the adaptive protocol's cost depends only on t'.
PARAMS = ModelParameters(frequencies=64, disruption_budget=32, participant_bound=16)
NODE_COUNT = 4
SEEDS = 3


def summary_for(protocol_factory, actual_disruption: int):
    def per_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
        inner = (
            RandomJammer(strength=actual_disruption) if actual_disruption > 0 else NoInterference()
        )
        jammer = ObliviousSchedule.pre_drawn(
            inner, PARAMS.band, PARAMS.disruption_budget, rounds=60_000, seed=seed * 37 + 1
        )
        return replace(config, adversary=jammer)

    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=protocol_factory,
        activation=SimultaneousActivation(count=NODE_COUNT),
        max_rounds=90_000,
    )
    return run_trials(config, seeds=SEEDS, config_for_seed=per_seed)


def test_gs_beats_trapdoor_at_low_actual_disruption(benchmark, emit):
    disruptions = (0, 1, 2)

    def run():
        rows = []
        for t_prime in disruptions:
            trapdoor = summary_for(TrapdoorProtocol.factory(), t_prime)
            samaritan = summary_for(GoodSamaritanProtocol.factory(), t_prime)
            rows.append(
                {
                    "t_prime": t_prime,
                    "trapdoor_mean_latency": trapdoor.mean_latency,
                    "good_samaritan_mean_latency": samaritan.mean_latency,
                    "speedup": trapdoor.mean_latency / samaritan.mean_latency,
                    "trapdoor_liveness": trapdoor.liveness_rate,
                    "gs_liveness": samaritan.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=(
                "Good Samaritan vs Trapdoor on good executions "
                f"({PARAMS.describe()}, simultaneous start, oblivious jammer with t' channels)"
            ),
            float_digits=2,
        )
    )
    assert all(row["trapdoor_liveness"] == 1.0 and row["gs_liveness"] == 1.0 for row in rows)
    # The paper's motivation: with t' ≪ t the adaptive protocol wins outright.
    quiet = rows[0]
    assert quiet["good_samaritan_mean_latency"] < quiet["trapdoor_mean_latency"], quiet
    assert quiet["speedup"] > 1.5, quiet
    # The advantage shrinks as the actual disruption approaches the budget.
    speedups = [row["speedup"] for row in rows]
    assert speedups[-1] <= speedups[0] * 1.5


def test_trapdoor_remains_competitive_under_full_budget_jamming(benchmark, emit):
    """Under worst-case (adaptive, full-budget) jamming the Trapdoor protocol is
    the safer choice — the Good Samaritan pays its log N overhead."""

    def run():
        rows = []
        for name, factory in (
            ("trapdoor", TrapdoorProtocol.factory()),
            ("good_samaritan", GoodSamaritanProtocol.factory()),
        ):
            config = SimulationConfig(
                params=PARAMS,
                protocol_factory=factory,
                activation=SimultaneousActivation(count=NODE_COUNT),
                adversary=RandomJammer(),
                max_rounds=150_000,
            )
            summary = run_trials(config, seeds=2)
            rows.append(
                {
                    "protocol": name,
                    "mean_latency": summary.mean_latency,
                    "max_latency": summary.max_latency,
                    "liveness": summary.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Full-budget random jamming — worst-case comparison", float_digits=1))
    assert all(row["liveness"] == 1.0 for row in rows)
    trapdoor = next(row for row in rows if row["protocol"] == "trapdoor")
    samaritan = next(row for row in rows if row["protocol"] == "good_samaritan")
    # The ordering flips (or at least the GS advantage disappears) under
    # worst-case interference: Trapdoor is no slower here.
    assert trapdoor["mean_latency"] <= samaritan["mean_latency"] * 1.2
