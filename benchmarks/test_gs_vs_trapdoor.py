"""Experiment ``gs_vs_trapdoor`` — the adaptivity payoff (§7 motivation).

The Good Samaritan Protocol exists because "for practical networks, there are
often significantly lower levels of interference" than the worst-case budget
``t``: when the actual disruption ``t'`` is small the adaptive protocol should
finish well before the Trapdoor Protocol, whose schedule is sized for ``t``.
This benchmark runs both protocols on identical good executions while sweeping
``t'`` and reports who wins, by what factor, and where the advantage erodes.
"""

from __future__ import annotations

from dataclasses import replace

from _bench_helpers import run_once
from repro.adversary.activation import SimultaneousActivation
from repro.adversary.jammers import NoInterference, RandomJammer
from repro.adversary.oblivious import ObliviousSchedule
from repro.campaigns.query import aggregate
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec, register_workload
from repro.campaigns.store import ResultStore
from repro.engine.runner import run_trials
from repro.engine.simulator import SimulationConfig
from repro.experiments.tables import render_table
from repro.experiments.workloads import Workload
from repro.params import ModelParameters
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

# A wide band with a large worst-case budget: the regime the Good Samaritan
# protocol is designed for (t = F/2, but usually only t' ≪ t channels are hit).
# The Trapdoor schedule is sized for t = 32 (its final epoch carries the
# F·t/(F−t) term), while the adaptive protocol's cost depends only on t'.
PARAMS = ModelParameters(frequencies=64, disruption_budget=32, participant_bound=16)
NODE_COUNT = 4
SEEDS = 3


def summary_for(protocol_factory, actual_disruption: int):
    def per_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
        inner = (
            RandomJammer(strength=actual_disruption) if actual_disruption > 0 else NoInterference()
        )
        jammer = ObliviousSchedule.pre_drawn(
            inner, PARAMS.band, PARAMS.disruption_budget, rounds=60_000, seed=seed * 37 + 1
        )
        return replace(config, adversary=jammer)

    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=protocol_factory,
        activation=SimultaneousActivation(count=NODE_COUNT),
        max_rounds=90_000,
    )
    return run_trials(config, seeds=SEEDS, config_for_seed=per_seed)


def test_gs_beats_trapdoor_at_low_actual_disruption(benchmark, emit):
    disruptions = (0, 1, 2)

    def run():
        rows = []
        for t_prime in disruptions:
            trapdoor = summary_for(TrapdoorProtocol.factory(), t_prime)
            samaritan = summary_for(GoodSamaritanProtocol.factory(), t_prime)
            rows.append(
                {
                    "t_prime": t_prime,
                    "trapdoor_mean_latency": trapdoor.mean_latency,
                    "good_samaritan_mean_latency": samaritan.mean_latency,
                    "speedup": trapdoor.mean_latency / samaritan.mean_latency,
                    "trapdoor_liveness": trapdoor.liveness_rate,
                    "gs_liveness": samaritan.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=(
                "Good Samaritan vs Trapdoor on good executions "
                f"({PARAMS.describe()}, simultaneous start, oblivious jammer with t' channels)"
            ),
            float_digits=2,
        )
    )
    assert all(row["trapdoor_liveness"] == 1.0 and row["gs_liveness"] == 1.0 for row in rows)
    # The paper's motivation: with t' ≪ t the adaptive protocol wins outright.
    quiet = rows[0]
    assert quiet["good_samaritan_mean_latency"] < quiet["trapdoor_mean_latency"], quiet
    assert quiet["speedup"] > 1.5, quiet
    # The advantage shrinks as the actual disruption approaches the budget.
    speedups = [row["speedup"] for row in rows]
    assert speedups[-1] <= speedups[0] * 1.5


def _full_budget_workload(node_count: int) -> Workload:
    """Worst-case §7 scenario: simultaneous start, full-budget random jammer."""
    return Workload(
        name="gs_full_budget_jam",
        activation=SimultaneousActivation(count=node_count),
        adversary=RandomJammer(),
        description="simultaneous start, full-budget random jammer",
    )


register_workload("gs_full_budget_jam", _full_budget_workload)


def test_trapdoor_remains_competitive_under_full_budget_jamming(benchmark, emit, tmp_path):
    """Under worst-case (adaptive, full-budget) jamming the Trapdoor protocol is
    the safer choice — the Good Samaritan pays its log N overhead.

    This comparison runs *through the campaign layer*: both protocols form a
    declarative grid whose cells persist in a result store, and the table is a
    store aggregate grouped by protocol — cross-checked against a direct
    ``run_trials`` call to prove the store reproduces the pre-migration
    numbers exactly.
    """
    spec = CampaignSpec(
        name="gs_vs_trapdoor_worst_case",
        protocols=("trapdoor", "good-samaritan"),
        workloads=("gs_full_budget_jam",),
        frequencies=(PARAMS.frequencies,),
        budgets=(PARAMS.disruption_budget,),
        participants=(PARAMS.participant_bound,),
        node_counts=(NODE_COUNT,),
        seeds=2,
        max_rounds=150_000,
    )

    def run():
        with ResultStore(tmp_path / "worst_case.db") as store:
            CampaignRunner(spec, store).run()
            return aggregate(store, spec.name, group_by=("protocol",))

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Full-budget random jamming — worst-case comparison", float_digits=1))
    assert all(row["liveness"] == 1.0 for row in rows)
    trapdoor = next(row for row in rows if row["protocol"] == "trapdoor")
    samaritan = next(row for row in rows if row["protocol"] == "good-samaritan")
    # The ordering flips (or at least the GS advantage disappears) under
    # worst-case interference: Trapdoor is no slower here.
    assert trapdoor["mean_latency"] <= samaritan["mean_latency"] * 1.2

    # Store-backed aggregates are the pre-migration numbers: a direct run of
    # the Trapdoor configuration must agree to the last bit.
    direct = run_trials(
        SimulationConfig(
            params=PARAMS,
            protocol_factory=TrapdoorProtocol.factory(),
            activation=SimultaneousActivation(count=NODE_COUNT),
            adversary=RandomJammer(),
            max_rounds=150_000,
        ),
        seeds=2,
    )
    assert trapdoor["mean_latency"] == direct.mean_latency
    assert trapdoor["max_latency"] == direct.max_latency
