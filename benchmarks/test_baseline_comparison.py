"""Experiment ``baselines`` — the Trapdoor Protocol against naive strategies (§4).

The related-work positioning of the paper: wake-up style contention without
the Trapdoor structure either guesses a broadcast probability (fixed-``p``),
wastes a ``lg N`` factor cycling probabilities (decay), ignores frequency
diversity (single channel), or is predictable (deterministic sweep).  This
benchmark runs the Trapdoor Protocol and the four baselines on the same
jammed, staggered-arrival workload and reports latency, liveness, agreement,
and leader-uniqueness — the dimensions on which the naive strategies fall over.
"""

from __future__ import annotations

from _bench_helpers import measure, run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import FixedBandJammer, RandomJammer
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.baselines.decay_wakeup import DecayWakeupProtocol
from repro.protocols.baselines.round_robin import RoundRobinSweepProtocol
from repro.protocols.baselines.single_channel import SingleChannelAlohaProtocol
from repro.protocols.baselines.uniform_wakeup import UniformWakeupProtocol
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

PARAMS = ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64)
WORKLOAD = StaggeredActivation(count=8, spacing=4)
# A generous contention horizon so the baselines' weakness is their structure,
# not an unfairly small stopping rule.
VICTORY_ROUNDS = 400

PROTOCOLS = {
    "trapdoor (paper)": TrapdoorProtocol.factory(),
    "uniform wake-up (p=0.1)": UniformWakeupProtocol.factory(
        broadcast_probability=0.1, victory_rounds=VICTORY_ROUNDS
    ),
    "decay wake-up": DecayWakeupProtocol.factory(victory_rounds=VICTORY_ROUNDS),
    "single-channel aloha": SingleChannelAlohaProtocol.factory(),
    "round-robin sweep": RoundRobinSweepProtocol.factory(victory_rounds=VICTORY_ROUNDS),
}


def test_baselines_under_random_jamming(benchmark, emit):
    def run():
        rows = []
        for name, factory in PROTOCOLS.items():
            summary = measure(PARAMS, factory, WORKLOAD, RandomJammer(), seeds=4, max_rounds=30_000)
            rows.append(
                {
                    "protocol": name,
                    "mean_latency": summary.mean_latency,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                    "unique_leader": summary.unique_leader_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=f"Baselines vs Trapdoor — {PARAMS.describe()}, staggered arrivals, random jammer",
            float_digits=2,
        )
    )
    trapdoor = next(row for row in rows if row["protocol"].startswith("trapdoor"))
    assert trapdoor["liveness"] == 1.0
    assert trapdoor["agreement"] == 1.0
    assert trapdoor["unique_leader"] == 1.0
    # The Trapdoor protocol is at least as safe as every baseline, and strictly
    # safer than at least two of them on this workload.
    worse_agreement = [row for row in rows if row["agreement"] < trapdoor["agreement"]]
    assert len(worse_agreement) >= 2, rows
    for row in rows:
        assert trapdoor["agreement"] >= row["agreement"]
        assert trapdoor["unique_leader"] >= row["unique_leader"]


def test_single_channel_collapses_under_targeted_jamming(benchmark, emit):
    """A fixed-band jammer that owns channel 1 silences the single-channel baseline."""

    def run():
        rows = []
        for name, factory in (
            ("trapdoor (paper)", TrapdoorProtocol.factory()),
            ("single-channel aloha", SingleChannelAlohaProtocol.factory()),
        ):
            summary = measure(
                PARAMS, factory, WORKLOAD, FixedBandJammer(), seeds=3, max_rounds=12_000
            )
            deliveries = sum(result.metrics.deliveries for result in summary.results)
            rows.append(
                {
                    "protocol": name,
                    "mean_latency": summary.mean_latency,
                    "agreement": summary.agreement_rate,
                    "messages_delivered": deliveries,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title="Targeted (fixed-band) jamming — frequency diversity is not optional",
            float_digits=2,
        )
    )
    trapdoor = next(row for row in rows if row["protocol"].startswith("trapdoor"))
    single = next(row for row in rows if row["protocol"].startswith("single"))
    # The single-channel protocol cannot deliver anything (channel 1 is always
    # jammed), so its "synchronization" is every node declaring itself leader:
    # zero deliveries and broken agreement.
    assert single["messages_delivered"] == 0
    assert single["agreement"] == 0.0
    assert trapdoor["messages_delivered"] > 0
    assert trapdoor["agreement"] >= 2 / 3
