"""Experiment ``searched_adversary`` — machine-searched worst-case jammers.

The paper's bounds quantify over *all* adversaries within the budget ``t``,
but the other benchmarks witness them only against hand-written jammers.
This benchmark runs the adversarial strategy search (:mod:`repro.search`) on
pinned Trapdoor and Good Samaritan configurations and pits the best-found
strategy against every jammer in the shared adversary registry.

Because the search's warm start evaluates exactly those registered jammers
before optimizing, the best-found strategy is *guaranteed* to score at least
as high as the best hand-written one — the assertion here is that the full
pipeline (genomes → evaluation → checkpointed optimization → export)
preserves that dominance on the pinned configurations, and that the search
is deterministic: re-running the same spec on the same store replays every
candidate from the checkpoint without a single new evaluation.
"""

from __future__ import annotations

from repro.adversary.registry import names as adversary_names
from repro.campaigns.store import ResultStore
from repro.experiments.tables import render_table
from repro.search.checkpoint import SearchCheckpoint, SearchSpec
from repro.search.objective import SearchObjective
from repro.search.runner import StrategySearch, export_search
from repro.search.space import ParametricGenome

from _bench_helpers import run_once

#: The acceptance configuration: Trapdoor on F=8, t=3, N=64, 20 seeds.
TRAPDOOR_OBJECTIVE = SearchObjective(
    protocol="trapdoor",
    workload="quiet_start",
    frequencies=8,
    budget=3,
    participants=64,
    node_count=8,
    seeds=tuple(range(20)),
    max_rounds=20_000,
    metric="median_latency",
)

#: A smaller pinned Good Samaritan configuration (its worst case is far
#: slower per trial, so the search budget and seed count stay modest).
GOOD_SAMARITAN_OBJECTIVE = SearchObjective(
    protocol="good-samaritan",
    workload="quiet_start",
    frequencies=4,
    budget=1,
    participants=16,
    node_count=4,
    seeds=tuple(range(10)),
    max_rounds=30_000,
    metric="median_latency",
)


def _search_and_compare(objective: SearchObjective, store_path, emit, title: str):
    """Run a small hill-climbing search and tabulate it against the registry."""
    spec = SearchSpec(
        name=f"bench-{objective.protocol}",
        objective=objective,
        optimizer="hill-climb",
        population=4,
        generations=2,
        master_seed=2009,
    )
    with ResultStore(store_path) as store:
        result = StrategySearch(spec, store).run()
        assert result.complete and result.best is not None

        # Every hand-written jammer was evaluated by the warm start; read its
        # score back from the checkpoint (zero extra simulation cost).
        checkpoint = SearchCheckpoint(store, spec)
        rows = []
        for name in adversary_names():
            key = checkpoint.key_for(ParametricGenome(name=name))
            records = checkpoint.stored_records(key)
            assert records is not None, f"warm start did not evaluate {name!r}"
            rows.append(
                {
                    "strategy": f"{name} (hand-written)",
                    "median_latency": objective.score_records(records),
                    "failures": sum(1 for record in records if not record.synchronized),
                }
            )
        best_records = checkpoint.stored_records(result.best.key)
        rows.append(
            {
                "strategy": f"SEARCHED: {result.best.genome.describe()}",
                "median_latency": result.best.score,
                "failures": sum(1 for record in best_records if not record.synchronized),
            }
        )
        rows.sort(key=lambda row: row["median_latency"])
        emit(render_table(rows, title=title, float_digits=1))

        # Determinism/resume: a second run of the same spec on the same store
        # must replay entirely from the checkpoint and agree on the best.
        replay = StrategySearch(spec, store).run()
        assert replay.executed == 0
        assert replay.evaluations_total == result.evaluations_total
        assert replay.best is not None
        assert replay.best.key == result.best.key
        assert replay.best.score == result.best.score

        export = export_search(store, spec.name, store_path.parent / f"{spec.name}.json")
        assert export.exists()

        hand_written = [row for row in rows if not row["strategy"].startswith("SEARCHED")]
        best_hand_written = max(row["median_latency"] for row in hand_written)
        return result, best_hand_written


def test_searched_adversary_dominates_hand_written_trapdoor(benchmark, emit, tmp_path):
    """Pinned Trapdoor config: searched strategy ≥ every hand-written jammer."""

    def run():
        return _search_and_compare(
            TRAPDOOR_OBJECTIVE,
            tmp_path / "search-trapdoor.db",
            emit,
            "Searched vs hand-written jammers — Trapdoor, F=8, t=3, N=64, 20 seeds",
        )

    result, best_hand_written = run_once(benchmark, run)
    assert result.best.score >= best_hand_written


def test_searched_adversary_dominates_hand_written_good_samaritan(benchmark, emit, tmp_path):
    """Pinned Good Samaritan config: searched strategy ≥ every hand-written jammer."""

    def run():
        return _search_and_compare(
            GOOD_SAMARITAN_OBJECTIVE,
            tmp_path / "search-gs.db",
            emit,
            "Searched vs hand-written jammers — Good Samaritan, F=4, t=1, N=16, 10 seeds",
        )

    result, best_hand_written = run_once(benchmark, run)
    assert result.best.score >= best_hand_written
