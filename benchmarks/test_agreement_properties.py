"""Experiment ``agreement`` — the safety properties across seeds and workloads.

Theorem 10 (Trapdoor) and Theorem 15 (Good Samaritan) assert that at most one
leader is elected and all non-⊥ outputs agree, with high probability.  This
benchmark measures those rates empirically across seeds for several workloads
and both protocols, and also confirms that the deterministic safety properties
(validity, synch commit, correctness) never fail.
"""

from __future__ import annotations

from _bench_helpers import measure, run_once
from repro.adversary.activation import RandomActivation, SimultaneousActivation, StaggeredActivation
from repro.adversary.jammers import RandomJammer, ReactiveJammer, SweepJammer
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

PARAMS = ModelParameters(frequencies=8, disruption_budget=3, participant_bound=32)

TRAPDOOR_WORKLOADS = {
    "simultaneous + random jammer": (SimultaneousActivation(count=8), RandomJammer()),
    "staggered(4) + sweep jammer": (StaggeredActivation(count=8, spacing=4), SweepJammer()),
    "random arrivals + reactive jammer": (RandomActivation(count=8, window=40, seed=5), ReactiveJammer()),
}


def test_trapdoor_agreement_rates(benchmark, emit):
    def run():
        rows = []
        for name, (activation, adversary) in TRAPDOOR_WORKLOADS.items():
            summary = measure(
                PARAMS, TrapdoorProtocol.factory(), activation, adversary, seeds=6, max_rounds=30_000
            )
            rows.append(
                {
                    "workload": name,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                    "unique_leader": summary.unique_leader_rate,
                    "safety": summary.safety_rate,
                    "mean_latency": summary.mean_latency,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Trapdoor — property rates across workloads (6 seeds each)", float_digits=2))
    for row in rows:
        assert row["liveness"] == 1.0, row
        # Agreement / unique leader hold "with high probability" in N; with
        # N = 32 and the default speed-oriented constants a residual failure
        # rate remains on the adversarial workloads (the reactive jammer
        # focuses its whole budget inside the F' contention band).  The
        # companion test below shows the rate reaches 1.0 once the final-epoch
        # constant is raised, which is the paper's w.h.p. knob.
        assert row["agreement"] >= 0.5, row
        assert row["unique_leader"] >= 0.5, row
    mean_agreement = sum(row["agreement"] for row in rows) / len(rows)
    assert mean_agreement >= 0.7, rows


def test_trapdoor_agreement_is_perfect_with_larger_final_epoch(benchmark, emit):
    """Increasing the final-epoch constant (the paper's w.h.p. knob) removes the residual failures."""

    safe_factory = TrapdoorProtocol.factory(TrapdoorConfig(final_epoch_constant=8.0))

    def run():
        rows = []
        for name, (activation, adversary) in TRAPDOOR_WORKLOADS.items():
            summary = measure(PARAMS, safe_factory, activation, adversary, seeds=4, max_rounds=60_000)
            rows.append(
                {
                    "workload": name,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                    "unique_leader": summary.unique_leader_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title="Trapdoor with final_epoch_constant=8 — property rates (4 seeds each)",
            float_digits=2,
        )
    )
    for row in rows:
        assert row["liveness"] == 1.0
        assert row["agreement"] == 1.0, row
        assert row["unique_leader"] == 1.0, row


def test_good_samaritan_agreement_rates(benchmark, emit):
    gs_params = ModelParameters(frequencies=8, disruption_budget=4, participant_bound=16)

    def run():
        rows = []
        for name, activation in (
            ("simultaneous", SimultaneousActivation(count=6)),
            ("staggered(9)", StaggeredActivation(count=3, spacing=9)),
        ):
            summary = measure(
                gs_params,
                GoodSamaritanProtocol.factory(),
                activation,
                RandomJammer(),
                seeds=3,
                max_rounds=80_000,
            )
            rows.append(
                {
                    "workload": name,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                    "unique_leader": summary.unique_leader_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(render_table(rows, title="Good Samaritan — property rates (Theorem 15)", float_digits=2))
    for row in rows:
        assert row["liveness"] == 1.0, row
        assert row["agreement"] >= 0.66, row
        assert row["unique_leader"] >= 0.66, row
