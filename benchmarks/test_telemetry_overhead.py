"""The telemetry overhead gate: disabled instrumentation costs ≤2%.

The pinned bench scenarios (``trapdoor_n64_batch``,
``campaign_many_small_cells`` — see ``repro.bench.scenarios``) must not get
measurably slower because the telemetry subsystem exists.  "Measurably" is
pinned three complementary ways, none of which depends on comparing two noisy
wall-clock runs of the full scenario:

1. **The hot loops are provably untouched.**  ``trapdoor_n64_batch`` calls
   :func:`repro.engine.batch.run_reduced_batch` directly, and the per-round
   scalar engine lives in ``repro.engine.simulator`` — a static check asserts
   neither module references telemetry at all, so their cost is *identical*
   to the pre-telemetry build, not merely close.

2. **The disabled per-call cost is pinned.**  Orchestration layers
   (pool/campaign/search) do keep their instrument calls when telemetry is
   off; each such call must stay a cheap no-op on a shared singleton.

3. **Calls × cost fits the budget.**  A live counting run of the
   ``campaign_many_small_cells`` workload measures how many instrument
   operations one scenario run performs; that count times the measured no-op
   cost (with a generous safety factor) must be ≤2% of the scenario's actual
   runtime.  If someone instruments a per-round path, the operation count
   explodes and this fails loudly long before the 2% is really spent.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.scenarios import resolve_scenarios
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.engine.plan import ExecutionPlan
from repro.telemetry import TELEMETRY_OFF, Telemetry
from repro.telemetry.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.telemetry.spans import NULL_SPAN

#: Fractional overhead the tentpole allows on the pinned scenarios.
OVERHEAD_BUDGET = 0.02

#: Safety factor on the measured no-op cost (shared-machine noise insurance).
SAFETY_FACTOR = 5.0

#: The same grid as the ``campaign_many_small_cells`` bench scenario.
CAMPAIGN_SPEC_FIELDS = dict(
    protocols=("trapdoor",),
    workloads=("quiet_start",),
    frequencies=(4, 8),
    budgets=(0, 1),
    participants=(8, 16),
    node_counts=(2, 3),
    seeds=2,
    max_rounds=1_500,
)


def _run_campaign_scenario(telemetry=None) -> float:
    """One run of the pinned campaign workload; returns wall-clock seconds."""
    spec = CampaignSpec(name="telemetry-overhead", **CAMPAIGN_SPEC_FIELDS)
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-tel-overhead-") as tmp:
        with ResultStore(Path(tmp) / "cells.db") as store:
            with CampaignRunner(
                spec, store, workers=2, pool_chunk=2, telemetry=telemetry
            ) as runner:
                progress = runner.run()
    assert progress.complete
    return time.perf_counter() - started


def _noop_cost_per_call(calls: int = 200_000) -> float:
    """Measured seconds per disabled-path operation (the worst of the shapes).

    Covers every shape the orchestration layers use when telemetry is off:
    a prebound null instrument call, a disabled-handle lookup returning the
    singleton, the ``enabled`` guard, and a null span context entry/exit.
    """
    shapes = []

    start = time.perf_counter()
    for _ in range(calls):
        NULL_COUNTER.inc()
    shapes.append(time.perf_counter() - start)

    start = time.perf_counter()
    for _ in range(calls):
        TELEMETRY_OFF.counter("pool.chunks_dispatched").inc()
    shapes.append(time.perf_counter() - start)

    start = time.perf_counter()
    for _ in range(calls):
        if TELEMETRY_OFF.enabled:
            raise AssertionError("disabled handle reported enabled")
    shapes.append(time.perf_counter() - start)

    start = time.perf_counter()
    for _ in range(calls):
        with TELEMETRY_OFF.span("x"):
            pass
    shapes.append(time.perf_counter() - start)

    return max(shapes) / calls


def test_hot_path_modules_are_uninstrumented():
    """The per-round engines must never gain telemetry calls.

    ``trapdoor_n64_batch`` runs :mod:`repro.engine.batch` directly and every
    scenario bottoms out in :mod:`repro.engine.simulator`'s round loop; both
    iterate millions of times per scenario, where even a no-op call per round
    would blow the 2% budget.  Instrumentation belongs one layer up (pool,
    runners) — this pins that boundary.
    """
    import repro.engine.batch
    import repro.engine.rng
    import repro.engine.simulator

    for module in (repro.engine.simulator, repro.engine.batch, repro.engine.rng):
        source = Path(module.__file__).read_text(encoding="utf-8")
        assert "telemetry" not in source.lower(), (
            f"{module.__name__} references telemetry — per-round hot paths "
            "must stay uninstrumented (instrument the orchestration layer instead)"
        )


def test_disabled_instruments_are_fast_noops():
    """Each disabled-path operation stays well under a microsecond-scale cap.

    The cap is deliberately loose (shared CI machines), but a disabled path
    that started allocating, locking, or formatting per call lands orders of
    magnitude above it.
    """
    per_call = _noop_cost_per_call(calls=50_000)
    assert per_call < 5e-6, (
        f"disabled telemetry operation costs {per_call * 1e9:.0f}ns per call; "
        "the no-op path must stay allocation-free"
    )
    # And the no-op instruments really are shared singletons.
    assert TELEMETRY_OFF.counter("a") is TELEMETRY_OFF.counter("b") is NULL_COUNTER
    assert TELEMETRY_OFF.gauge("a") is NULL_GAUGE
    assert TELEMETRY_OFF.histogram("a") is NULL_HISTOGRAM
    assert TELEMETRY_OFF.span("a") is NULL_SPAN


def test_batch_scenario_performs_zero_instrument_operations():
    """The pinned batch kernel scenario touches no telemetry at all.

    Running it with a live registry must record nothing: the scenario calls
    ``run_reduced_batch`` directly, below the instrumented orchestration
    layer, so its telemetry-off overhead is exactly zero — the strongest
    possible form of the ≤2% requirement for this scenario.
    """
    [scenario] = resolve_scenarios("trapdoor_n64_batch")
    telemetry = Telemetry()
    # The scenario builds its own engine objects; nothing threads the handle
    # down because nothing in the called stack accepts one.
    scenario.run()
    snapshot = telemetry.snapshot()
    assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}


def test_campaign_scenario_overhead_within_budget(emit):
    """Disabled-path call count × no-op cost ≤ 2% of the scenario runtime.

    The operation count comes from a live counting run (every disabled no-op
    call has a live counterpart that lands in the registry); the per-call
    cost from the pinned microbenchmark; the runtime from an actual scenario
    run.  A generous safety factor keeps the gate honest on noisy machines
    while still catching per-round instrumentation instantly.
    """
    scenario_seconds = _run_campaign_scenario(telemetry=None)

    counting = Telemetry()
    _run_campaign_scenario(telemetry=counting)
    snapshot = counting.snapshot()
    # worker.* entries are excluded from the value sum: one merge_delta call
    # folds large *values* (thousands of simulated rounds) in O(1) operations,
    # and the disabled path skips the merge entirely (ingest guards on
    # ``telemetry.enabled``) — counting the values would gate on work that
    # never happens when telemetry is off.  The worker-delta path gets its own
    # live-cost gate below.
    operations = (
        sum(
            value
            for name, value in snapshot["counters"].items()
            if not name.startswith("worker.")
        )
        + sum(
            entry["count"]
            for name, entry in snapshot["histograms"].items()
            if not name.startswith("worker.")
        )
        # Gauges: the inflight queue depth moves twice per chunk; bound it by
        # the dispatched chunk count plus one end-of-run rate set per gauge.
        + 2 * snapshot["counters"].get("pool.chunks_dispatched", 0)
        + len(snapshot["gauges"])
        # The disabled ingest path still does two dict writes per chunk for
        # crash attribution; bill them as one op each.
        + 2 * snapshot["counters"].get("worker.chunks_completed", 0)
    )
    # Spans enter+exit; histograms already counted one op per completed span.
    operations += sum(
        entry["count"]
        for name, entry in snapshot["histograms"].items()
        if name.startswith("span.")
    )

    per_call = _noop_cost_per_call(calls=50_000)
    projected_overhead = operations * per_call * SAFETY_FACTOR
    budget = OVERHEAD_BUDGET * scenario_seconds
    emit(
        "telemetry overhead gate (campaign_many_small_cells)\n"
        f"  scenario runtime        : {scenario_seconds * 1e3:.1f} ms\n"
        f"  disabled-path operations: {operations:.0f}\n"
        f"  no-op cost per call     : {per_call * 1e9:.0f} ns\n"
        f"  projected overhead (x{SAFETY_FACTOR:.0f}) : {projected_overhead * 1e6:.1f} us\n"
        f"  budget (2% of runtime)  : {budget * 1e3:.2f} ms"
    )
    assert projected_overhead <= budget, (
        f"projected disabled-telemetry overhead {projected_overhead * 1e3:.3f}ms exceeds "
        f"2% of the scenario runtime ({budget * 1e3:.3f}ms) — did a per-round or "
        "per-trial path gain instrument calls?"
    )


def test_worker_delta_path_within_budget(emit):
    """The cross-process stats path fits the same ≤2% budget.

    Two per-chunk costs exist: building the :class:`WorkerStatsDelta` inside
    the worker (always — the chunk entry points wrap every result, telemetry
    on or off) and folding it into the parent registry (live handles only).
    Both are O(chunk), never O(round), so chunks × measured cost with the
    usual safety factor must sit far inside 2% of the scenario runtime.
    """
    from repro.engine.pool import ReducedTrial, _chunk_stats
    from repro.telemetry.metrics import MetricsRegistry

    rows = [
        ReducedTrial(
            seed=seed,
            synchronized=True,
            agreement=True,
            safety=True,
            leader_count=1,
            max_sync_latency=20,
            rounds_simulated=1_500,
        )
        for seed in range(4)
    ]
    repeats = 2_000

    start = time.perf_counter()
    for _ in range(repeats):
        delta = _chunk_stats(rows, True, 0.01)
    build_cost = (time.perf_counter() - start) / repeats

    registry = MetricsRegistry()
    start = time.perf_counter()
    for _ in range(repeats):
        registry.merge_delta(delta)
    merge_cost = (time.perf_counter() - start) / repeats

    scenario_seconds = _run_campaign_scenario(telemetry=None)
    # The scenario dispatches 16 chunks (16 cells / pool_chunk=2 × 2 seeds).
    chunks = 16
    projected = chunks * (build_cost + merge_cost) * SAFETY_FACTOR
    budget = OVERHEAD_BUDGET * scenario_seconds
    emit(
        "worker-delta overhead gate (campaign_many_small_cells)\n"
        f"  scenario runtime        : {scenario_seconds * 1e3:.1f} ms\n"
        f"  delta build per chunk   : {build_cost * 1e6:.2f} us\n"
        f"  delta merge per chunk   : {merge_cost * 1e6:.2f} us\n"
        f"  projected (x{SAFETY_FACTOR:.0f}, {chunks} chunks): {projected * 1e6:.1f} us\n"
        f"  budget (2% of runtime)  : {budget * 1e3:.2f} ms"
    )
    assert projected <= budget, (
        f"projected worker-delta overhead {projected * 1e3:.3f}ms exceeds 2% of the "
        f"scenario runtime ({budget * 1e3:.3f}ms) — the per-chunk stats path must "
        "stay O(chunk), not O(round)"
    )
