"""Experiment ``fig1`` — regenerate Figure 1 (Trapdoor epoch schedule).

Figure 1 of the paper tabulates, for the Trapdoor Protocol, the length and the
contender broadcast probability of each of the ``lg N`` epochs: the first
``lg N − 1`` epochs have length ``Θ(F′/(F′−t)·lg N)`` with probabilities
``1/N, 2/N, …, 1/4``; the final epoch has length ``Θ(F′²/(F′−t)·lg N)`` and
probability ``1/2``.  The schedule is deterministic, so this benchmark
regenerates it exactly for several parameter points and checks its structure.
"""

from __future__ import annotations

import pytest

from _bench_helpers import run_once
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.epochs import TrapdoorSchedule

PARAMETER_POINTS = [
    ModelParameters(frequencies=8, disruption_budget=1, participant_bound=256),
    ModelParameters(frequencies=8, disruption_budget=4, participant_bound=256),
    ModelParameters(frequencies=16, disruption_budget=8, participant_bound=1024),
    ModelParameters(frequencies=16, disruption_budget=15, participant_bound=1024),
]


@pytest.mark.parametrize("params", PARAMETER_POINTS, ids=lambda p: p.describe())
def test_fig1_schedule_structure(benchmark, emit, params):
    schedule = run_once(benchmark, lambda: TrapdoorSchedule(params))
    rows = schedule.describe_rows()
    emit(render_table(rows, title=f"Figure 1 — Trapdoor schedule for {params.describe()}", float_digits=5))

    # Epoch count is lg N.
    assert len(rows) == params.log_participants

    # Broadcast probabilities follow the 2^e / 2N ladder, ending at 1/2, 1/4.
    probabilities = [row["broadcast_probability"] for row in rows]
    expected = [min(0.5, 2**e / (2 * params.participant_bound)) for e in range(1, len(rows) + 1)]
    assert probabilities == pytest.approx(expected)
    assert probabilities[-1] == pytest.approx(0.5)
    if len(probabilities) >= 2:
        assert probabilities[-2] == pytest.approx(0.25)

    # All regular epochs share one length; the final epoch is longer by ~F'.
    lengths = [row["length"] for row in rows]
    assert len(set(lengths[:-1])) == 1
    f_prime = schedule.effective_frequencies
    assert lengths[-1] >= lengths[0] * max(1, f_prime // 2)

    # The total is the Theorem 10 shape: F/(F−t)·log²N + Ft/(F−t)·logN (up to constants).
    assert schedule.total_rounds == sum(lengths)
    assert schedule.total_rounds <= 8 * schedule.theoretical_round_bound() + 8


def test_fig1_schedule_scales_with_disruption(benchmark, emit):
    def build():
        return [
            TrapdoorSchedule(ModelParameters(16, budget, 256)).total_rounds
            for budget in (1, 4, 8, 12, 15)
        ]

    totals = run_once(benchmark, build)
    emit(
        render_table(
            [{"t": t, "total_rounds": total} for t, total in zip((1, 4, 8, 12, 15), totals)],
            title="Figure 1 — total schedule length vs disruption budget (F=16, N=256)",
        )
    )
    assert all(a <= b for a, b in zip(totals, totals[1:])), "schedule must grow with t"
