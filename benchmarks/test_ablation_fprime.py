"""Experiment ``ablation_fprime`` — why contenders restrict themselves to F' = min(F, 2t).

Section 6 fixes ``F′ = min(F, 2t)``: spreading contention over more than
``2t`` channels does not buy extra safety from the adversary (it can never jam
more than half of ``2t`` channels) but it *does* slow everything down, because
the final epoch must be long enough for the eventual winner to hit every rival
on a random channel — a cost of ``Θ(F′²/(F′−t))`` per ``lg N``.  This ablation
runs the Trapdoor Protocol with the restriction on and off on a wide band with
a small disruption budget, where the difference is largest.
"""

from __future__ import annotations

from _bench_helpers import measure, run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import RandomJammer
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

# Wide band, light worst-case budget: F' = 4 ≪ F = 32.
PARAMS = ModelParameters(frequencies=32, disruption_budget=2, participant_bound=64)
WORKLOAD = StaggeredActivation(count=6, spacing=3)


def test_ablation_fprime_band_restriction(benchmark, emit):
    variants = {
        "F' = min(F, 2t) (paper)": TrapdoorConfig(use_effective_band=True),
        "full band F (ablated)": TrapdoorConfig(use_effective_band=False),
    }

    def run():
        rows = []
        for name, config in variants.items():
            schedule = TrapdoorSchedule(PARAMS, config)
            summary = measure(
                PARAMS,
                TrapdoorProtocol.factory(config),
                WORKLOAD,
                RandomJammer(),
                seeds=4,
                max_rounds=60_000,
            )
            rows.append(
                {
                    "variant": name,
                    "contention_band": schedule.effective_frequencies,
                    "schedule_rounds": schedule.total_rounds,
                    "measured_mean_latency": summary.mean_latency,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=f"Ablation — contention band restriction ({PARAMS.describe()}, staggered arrivals)",
            float_digits=2,
        )
    )
    paper = next(row for row in rows if "paper" in row["variant"])
    ablated = next(row for row in rows if "ablated" in row["variant"])
    assert paper["liveness"] == 1.0 and ablated["liveness"] == 1.0
    # The paper's choice yields a much shorter schedule and a faster measured
    # synchronization, with no loss of safety.
    assert paper["schedule_rounds"] < ablated["schedule_rounds"] / 1.5
    assert paper["measured_mean_latency"] < 0.6 * ablated["measured_mean_latency"]
    assert paper["agreement"] >= ablated["agreement"] - 0.25
