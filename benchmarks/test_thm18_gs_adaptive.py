"""Experiment ``thm18`` — Good Samaritan adaptivity (Theorem 18).

Theorem 18: with an oblivious adversary, (a) every execution synchronizes in
``O(F·log³N)`` rounds, and (b) if all ``n ≥ 2`` nodes wake together and at most
``t' ≤ t`` frequencies are actually disrupted per round, synchronization takes
only ``O(t'·log³N)`` rounds.  The benchmark sweeps the *actual* disruption
``t'`` in good executions and checks that the measured latency scales with
``t'`` (not with the worst-case budget ``t``), then confirms the worst-case
fallback bound on a staggered-activation execution.
"""

from __future__ import annotations

from _bench_helpers import run_once
from repro.adversary.activation import SimultaneousActivation, StaggeredActivation
from repro.adversary.jammers import NoInterference, RandomJammer
from repro.adversary.oblivious import ObliviousSchedule
from repro.analysis.fitting import monotonically_increasing
from repro.engine.runner import run_trials
from repro.engine.simulator import SimulationConfig
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.good_samaritan.schedule import GoodSamaritanSchedule

PARAMS = ModelParameters(frequencies=8, disruption_budget=4, participant_bound=16)
SCHEDULE = GoodSamaritanSchedule(PARAMS)


def good_execution_summary(actual_disruption: int, seeds: int = 3, node_count: int = 4):
    """Simultaneous activation against a pre-drawn oblivious jammer using t' channels."""

    def per_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
        inner = (
            RandomJammer(strength=actual_disruption) if actual_disruption > 0 else NoInterference()
        )
        jammer = ObliviousSchedule.pre_drawn(
            inner, PARAMS.band, PARAMS.disruption_budget, rounds=40_000, seed=seed * 101 + 7
        )
        from dataclasses import replace

        return replace(config, adversary=jammer)

    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=GoodSamaritanProtocol.factory(),
        activation=SimultaneousActivation(count=node_count),
        max_rounds=60_000,
    )
    return run_trials(config, seeds=seeds, config_for_seed=per_seed)


def test_thm18_latency_tracks_actual_disruption(benchmark, emit):
    disruptions = (0, 1, 2, 4)

    def run():
        rows = []
        for t_prime in disruptions:
            summary = good_execution_summary(t_prime)
            rows.append(
                {
                    "t_prime": t_prime,
                    "measured_mean_latency": summary.mean_latency,
                    "adaptive_bound_rounds": SCHEDULE.adaptive_round_bound(max(1, t_prime)),
                    "worst_case_rounds": SCHEDULE.total_rounds,
                    "liveness": summary.liveness_rate,
                    "agreement": summary.agreement_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title="Theorem 18 — Good Samaritan latency vs actual disruption t' (good executions)",
            float_digits=1,
        )
    )
    assert all(row["liveness"] == 1.0 for row in rows)
    measured = [row["measured_mean_latency"] for row in rows]
    # Latency grows with the actual disruption (allowing simulation noise) ...
    assert monotonically_increasing(measured, tolerance=0.35), measured
    # ... and in good executions it stays within a constant factor of the
    # adaptive bound, far below the worst-case trajectory.
    for row in rows:
        assert row["measured_mean_latency"] <= 2.5 * row["adaptive_bound_rounds"]
        assert row["measured_mean_latency"] < row["worst_case_rounds"] / 2


def test_thm18_worst_case_fallback_bound(benchmark, emit):
    def run():
        config = SimulationConfig(
            params=PARAMS,
            protocol_factory=GoodSamaritanProtocol.factory(),
            activation=StaggeredActivation(count=3, spacing=13),
            adversary=RandomJammer(),
            max_rounds=80_000,
        )
        return run_trials(config, seeds=2)

    summary = run_once(benchmark, run)
    rows = [
        {
            "workload": "staggered arrivals, full-budget jammer",
            "measured_max_latency": summary.max_latency,
            "worst_case_bound_rounds": SCHEDULE.total_rounds + SCHEDULE.fallback_epoch_length,
            "liveness": summary.liveness_rate,
            "unique_leader": summary.unique_leader_rate,
        }
    ]
    emit(render_table(rows, title="Theorem 18 — worst-case executions stay within O(F·log³N)", float_digits=1))
    assert summary.liveness_rate == 1.0
    assert summary.max_latency <= SCHEDULE.total_rounds + SCHEDULE.fallback_epoch_length
