"""Experiment ``ablation_final_epoch`` — why the last Trapdoor epoch is extended.

The final epoch of the Trapdoor schedule is ``Θ(F′²/(F′−t)·lgN)`` rounds,
an extra factor of ``F′`` over the regular epochs.  The analysis (Theorem 10)
needs that length so the earliest-activated contender can, with high
probability, knock out every late rival that reaches its own final epoch —
this is exactly what guarantees a unique leader and hence agreement.  This
ablation removes the extension and measures how often a second leader slips
through on a tightly staggered workload.
"""

from __future__ import annotations

from _bench_helpers import measure, run_once
from repro.adversary.activation import StaggeredActivation
from repro.adversary.jammers import RandomJammer
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

PARAMS = ModelParameters(frequencies=8, disruption_budget=3, participant_bound=32)
# Arrivals two rounds apart: each contender finishes its schedule two rounds
# after the previous one, so only the final epoch can knock it out.
WORKLOAD = StaggeredActivation(count=8, spacing=2)
SEEDS = 8


def test_ablation_extended_final_epoch(benchmark, emit):
    variants = {
        "extended final epoch (paper)": TrapdoorConfig(use_extended_final_epoch=True,
                                                        final_epoch_constant=4.0),
        "uniform epochs (ablated)": TrapdoorConfig(use_extended_final_epoch=False),
    }

    def run():
        rows = []
        for name, config in variants.items():
            schedule = TrapdoorSchedule(PARAMS, config)
            summary = measure(
                PARAMS,
                TrapdoorProtocol.factory(config),
                WORKLOAD,
                RandomJammer(),
                seeds=SEEDS,
                max_rounds=60_000,
            )
            rows.append(
                {
                    "variant": name,
                    "final_epoch_rounds": schedule.epochs[-1].length,
                    "unique_leader_rate": summary.unique_leader_rate,
                    "agreement_rate": summary.agreement_rate,
                    "mean_latency": summary.mean_latency,
                    "liveness": summary.liveness_rate,
                }
            )
        return rows

    rows = run_once(benchmark, run)
    emit(
        render_table(
            rows,
            title=(
                "Ablation — extended final epoch vs uniform epochs "
                f"({PARAMS.describe()}, arrivals every 2 rounds, {SEEDS} seeds)"
            ),
            float_digits=2,
        )
    )
    paper = next(row for row in rows if "paper" in row["variant"])
    ablated = next(row for row in rows if "ablated" in row["variant"])
    assert paper["liveness"] == 1.0 and ablated["liveness"] == 1.0
    # The ablated protocol is faster (shorter schedule) but loses leader
    # uniqueness on a noticeable fraction of executions; the paper's extended
    # final epoch is what buys agreement.
    assert paper["final_epoch_rounds"] > ablated["final_epoch_rounds"]
    assert paper["unique_leader_rate"] >= ablated["unique_leader_rate"]
    assert paper["unique_leader_rate"] >= 0.85
    assert ablated["unique_leader_rate"] <= 0.75, rows
    assert paper["agreement_rate"] >= ablated["agreement_rate"]
