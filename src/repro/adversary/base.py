"""Interference adversary interface.

The paper models all unpredictable interference — unrelated protocols,
electromagnetic noise, malicious jammers — as a single adversary that may
disrupt up to ``t < F`` frequencies per round.  The adversary chooses its
behaviour for round ``r`` knowing the protocol and the execution through
round ``r − 1`` (an *adaptive* adversary); an *oblivious* adversary commits
to a distribution sequence in advance.

Concrete adversaries implement :meth:`InterferenceAdversary.choose_disruption`.
The simulator enforces the budget: returning more than ``t`` frequencies is a
configuration error, not a way to cheat.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.radio.frequencies import FrequencyBand
from repro.radio.spectrum_log import SpectrumLog
from repro.types import Frequency


@dataclass(frozen=True, slots=True)
class AdversaryContext:
    """Everything an adversary may see when choosing its disruption set.

    Attributes
    ----------
    global_round:
        The 1-based round about to be played.
    band:
        The frequency band.
    budget:
        The maximum number of frequencies that may be disrupted (``t``).
    history:
        Spectrum activity through the end of the previous round.  Adaptive
        adversaries may inspect it; oblivious adversaries must ignore it.
    rng:
        A dedicated random stream for the adversary.
    active_node_count:
        Number of currently active nodes (known to the adversary, which
        controls activation in the model).
    """

    global_round: int
    band: FrequencyBand
    budget: int
    history: SpectrumLog
    rng: random.Random
    active_node_count: int = 0


class InterferenceAdversary(abc.ABC):
    """Base class for interference adversaries.

    Subclasses should be cheap to construct and must be deterministic given
    the random stream in the context, so experiments are reproducible from a
    single master seed.
    """

    #: Whether the adversary is oblivious (ignores the execution history).
    #: Purely informational; the Good Samaritan analysis assumes obliviousness.
    oblivious: bool = False

    @abc.abstractmethod
    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        """Return the set of frequencies to disrupt this round (size ≤ budget)."""

    def describe(self) -> str:
        """A short human-readable description used in experiment tables."""
        return type(self).__name__

    def identity(self) -> str:
        """A stable string pinning down the adversary's behaviour.

        Used to content-hash sweep points into campaign-store keys, so it
        must be identical across processes and must change whenever the
        adversary's behaviour changes.  Dataclass adversaries are fully
        captured by their repr; non-dataclass adversaries whose
        ``describe()`` does not determine their behaviour must override this
        (see :class:`~repro.adversary.oblivious.ObliviousSchedule`).
        """
        if dataclasses.is_dataclass(self):
            return f"{type(self).__qualname__}: {self!r}"
        return f"{type(self).__qualname__}: {self.describe()}"


def validate_budget(band: FrequencyBand, budget: int) -> int:
    """Validate a disruption budget ``t`` against a band of size ``F``.

    The model requires ``0 ≤ t < F``.
    """
    if budget < 0:
        raise ConfigurationError(f"disruption budget must be non-negative, got {budget}")
    if budget >= band.size:
        raise ConfigurationError(
            f"disruption budget t={budget} must be strictly less than F={band.size}"
        )
    return budget
