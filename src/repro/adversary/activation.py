"""Activation schedules.

In the model the adversary also decides *when* each of the ``n`` participating
nodes is activated.  Activation schedules are kept separate from interference
adversaries so they can be combined freely in experiments.

A schedule maps a global round to the list of node ids activated at the
beginning of that round.  The simulator queries it once per round.
"""

from __future__ import annotations

import abc
import dataclasses
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.types import GlobalRound, NodeId


class ActivationSchedule(abc.ABC):
    """Decides which nodes wake up at the beginning of each round."""

    @property
    @abc.abstractmethod
    def node_count(self) -> int:
        """Total number of nodes that will eventually be activated (``n``)."""

    @abc.abstractmethod
    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        """Node ids activated at the beginning of ``global_round``.

        Implementations must be deterministic functions of the round and the
        provided random stream, and must activate every node exactly once
        over the course of the execution.
        """

    @abc.abstractmethod
    def last_activation_round(self) -> int:
        """An upper bound on the round of the last activation (for planning)."""

    def describe(self) -> str:
        """Short human-readable description used in experiment tables."""
        return type(self).__name__

    def identity(self) -> str:
        """A stable string pinning down the schedule's behaviour.

        Used to content-hash sweep points into campaign-store keys.  Every
        built-in schedule is a dataclass, so the repr covers all its fields;
        a non-dataclass subclass must override this if ``describe()`` does
        not determine when each node wakes up.
        """
        if dataclasses.is_dataclass(self):
            return f"{type(self).__qualname__}: {self!r}"
        return f"{type(self).__qualname__}: {self.describe()}"


def _validate_node_count(node_count: int) -> int:
    if node_count < 1:
        raise ConfigurationError(f"an activation schedule needs at least one node, got {node_count}")
    return node_count


@dataclass
class SimultaneousActivation(ActivationSchedule):
    """All ``n`` nodes are activated in the same round (the "good execution").

    Parameters
    ----------
    count:
        The number of nodes ``n``.
    round_index:
        The global round in which they all wake up.
    """

    count: int
    round_index: int = 1

    def __post_init__(self) -> None:
        _validate_node_count(self.count)
        if self.round_index < 1:
            raise ConfigurationError(f"activation round must be >= 1, got {self.round_index}")

    @property
    def node_count(self) -> int:
        return self.count

    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        if global_round == self.round_index:
            return tuple(range(self.count))
        return ()

    def last_activation_round(self) -> int:
        return self.round_index

    def describe(self) -> str:
        return f"simultaneous (n={self.count})"


@dataclass
class StaggeredActivation(ActivationSchedule):
    """Nodes wake up one after another at a fixed spacing.

    Parameters
    ----------
    count:
        The number of nodes ``n``.
    spacing:
        Number of rounds between consecutive activations.
    first_round:
        Round of the first activation.
    """

    count: int
    spacing: int = 1
    first_round: int = 1

    def __post_init__(self) -> None:
        _validate_node_count(self.count)
        if self.spacing < 0:
            raise ConfigurationError(f"spacing must be non-negative, got {self.spacing}")
        if self.first_round < 1:
            raise ConfigurationError(f"first activation round must be >= 1, got {self.first_round}")

    @property
    def node_count(self) -> int:
        return self.count

    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        if self.spacing == 0:
            return tuple(range(self.count)) if global_round == self.first_round else ()
        offset = global_round - self.first_round
        if offset < 0 or offset % self.spacing != 0:
            return ()
        index = offset // self.spacing
        return (index,) if index < self.count else ()

    def last_activation_round(self) -> int:
        return self.first_round + self.spacing * (self.count - 1)

    def describe(self) -> str:
        return f"staggered (n={self.count}, every {self.spacing} rounds)"


@dataclass
class RandomActivation(ActivationSchedule):
    """Each node wakes up at a uniformly random round in a window.

    The draw is made lazily but deterministically from the schedule's own
    seed, so the same experiment seed reproduces the same wake-up pattern.

    Parameters
    ----------
    count:
        The number of nodes ``n``.
    window:
        Activations are drawn uniformly from ``[1 .. window]``.
    seed:
        Seed for the internal draw.
    """

    count: int
    window: int = 64
    seed: int = 0
    _assignment: Mapping[int, tuple[NodeId, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        _validate_node_count(self.count)
        if self.window < 1:
            raise ConfigurationError(f"activation window must be >= 1, got {self.window}")
        rng = random.Random(self.seed)
        assignment: dict[int, list[NodeId]] = {}
        for node_id in range(self.count):
            wake_round = rng.randint(1, self.window)
            assignment.setdefault(wake_round, []).append(node_id)
        object.__setattr__(
            self,
            "_assignment",
            {round_index: tuple(nodes) for round_index, nodes in assignment.items()},
        )

    @property
    def node_count(self) -> int:
        return self.count

    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        return self._assignment.get(global_round, ())

    def last_activation_round(self) -> int:
        return max(self._assignment) if self._assignment else 1

    def describe(self) -> str:
        return f"random (n={self.count}, window {self.window})"


@dataclass
class ExplicitActivation(ActivationSchedule):
    """An explicit per-node activation round list (round of node ``i`` at index ``i``).

    Parameters
    ----------
    rounds:
        ``rounds[i]`` is the global round at which node ``i`` wakes up.
    """

    rounds: Sequence[int]

    def __post_init__(self) -> None:
        if not self.rounds:
            raise ConfigurationError("explicit activation needs at least one node")
        for index, round_index in enumerate(self.rounds):
            if round_index < 1:
                raise ConfigurationError(
                    f"activation round for node {index} must be >= 1, got {round_index}"
                )

    @property
    def node_count(self) -> int:
        return len(self.rounds)

    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        return tuple(
            node_id for node_id, round_index in enumerate(self.rounds) if round_index == global_round
        )

    def last_activation_round(self) -> int:
        return max(self.rounds)

    def describe(self) -> str:
        return f"explicit (n={len(self.rounds)})"


@dataclass
class TrickleActivation(ActivationSchedule):
    """An adversarial "trickle": one straggler arrives long after the rest.

    All nodes but the last wake up in round 1; the final node wakes up
    ``delay`` rounds later.  This is the pattern that stresses the Good
    Samaritan protocol's handling of newly arrived devices.

    Parameters
    ----------
    count:
        The number of nodes ``n`` (must be at least 2).
    delay:
        How many rounds after the group the straggler arrives.
    """

    count: int
    delay: int = 32

    def __post_init__(self) -> None:
        if self.count < 2:
            raise ConfigurationError(f"a trickle needs at least two nodes, got {self.count}")
        if self.delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {self.delay}")

    @property
    def node_count(self) -> int:
        return self.count

    def activations_for_round(self, global_round: GlobalRound, rng: random.Random) -> tuple[NodeId, ...]:
        if global_round == 1:
            return tuple(range(self.count - 1))
        if global_round == 1 + self.delay:
            return (self.count - 1,)
        return ()

    def last_activation_round(self) -> int:
        return 1 + self.delay

    def describe(self) -> str:
        return f"trickle (n={self.count}, straggler +{self.delay})"
