"""Interference adversaries and activation schedules (paper §2)."""

from repro.adversary.activation import (
    ActivationSchedule,
    ExplicitActivation,
    RandomActivation,
    SimultaneousActivation,
    StaggeredActivation,
    TrickleActivation,
)
from repro.adversary.base import AdversaryContext, InterferenceAdversary, validate_budget
from repro.adversary.jammers import (
    BurstyJammer,
    FixedBandJammer,
    LowBandJammer,
    NoInterference,
    RandomJammer,
    ReactiveJammer,
    SweepJammer,
    TwoNodeProductJammer,
)
from repro.adversary.oblivious import CyclicObliviousSchedule, ObliviousSchedule
from repro.adversary.policy import POLICY_ACTIONS, PolicyJammer
from repro.adversary.registry import ADVERSARY_FACTORIES

__all__ = [
    "ActivationSchedule",
    "ExplicitActivation",
    "RandomActivation",
    "SimultaneousActivation",
    "StaggeredActivation",
    "TrickleActivation",
    "AdversaryContext",
    "InterferenceAdversary",
    "validate_budget",
    "BurstyJammer",
    "FixedBandJammer",
    "LowBandJammer",
    "NoInterference",
    "RandomJammer",
    "ReactiveJammer",
    "SweepJammer",
    "TwoNodeProductJammer",
    "ADVERSARY_FACTORIES",
    "CyclicObliviousSchedule",
    "ObliviousSchedule",
    "POLICY_ACTIONS",
    "PolicyJammer",
]
