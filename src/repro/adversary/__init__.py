"""Interference adversaries and activation schedules (paper §2)."""

from repro.adversary.activation import (
    ActivationSchedule,
    ExplicitActivation,
    RandomActivation,
    SimultaneousActivation,
    StaggeredActivation,
    TrickleActivation,
)
from repro.adversary.base import AdversaryContext, InterferenceAdversary, validate_budget
from repro.adversary.jammers import (
    BurstyJammer,
    FixedBandJammer,
    LowBandJammer,
    NoInterference,
    RandomJammer,
    ReactiveJammer,
    SweepJammer,
    TwoNodeProductJammer,
)
from repro.adversary.oblivious import ObliviousSchedule

__all__ = [
    "ActivationSchedule",
    "ExplicitActivation",
    "RandomActivation",
    "SimultaneousActivation",
    "StaggeredActivation",
    "TrickleActivation",
    "AdversaryContext",
    "InterferenceAdversary",
    "validate_budget",
    "BurstyJammer",
    "FixedBandJammer",
    "LowBandJammer",
    "NoInterference",
    "RandomJammer",
    "ReactiveJammer",
    "SweepJammer",
    "TwoNodeProductJammer",
    "ObliviousSchedule",
]
