"""Oblivious adversary wrappers.

The Good Samaritan analysis (§7) assumes an *oblivious* adversary: one whose
behaviour can be written down as a fixed sequence of distributions over
disruption sets before the execution starts.  :class:`ObliviousSchedule`
pre-draws such a sequence from any other adversary (or accepts an explicit
list), guaranteeing that nothing in the execution can influence it.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence

from repro.adversary.base import AdversaryContext, InterferenceAdversary
from repro.exceptions import ConfigurationError
from repro.radio.frequencies import FrequencyBand
from repro.radio.spectrum_log import SpectrumLog
from repro.types import Frequency


class ObliviousSchedule(InterferenceAdversary):
    """An adversary that replays a fixed, pre-committed disruption schedule.

    Parameters
    ----------
    schedule:
        A sequence of disruption sets, one per round.  Rounds beyond the end
        of the schedule repeat the final entry (or are empty if the schedule
        is empty).
    """

    oblivious = True

    def __init__(self, schedule: Sequence[Iterable[Frequency]]) -> None:
        self._schedule: tuple[frozenset[Frequency], ...] = tuple(
            frozenset(entry) for entry in schedule
        )

    def __len__(self) -> int:
        return len(self._schedule)

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if not self._schedule:
            return frozenset()
        index = min(context.global_round - 1, len(self._schedule) - 1)
        return self._schedule[index]

    def describe(self) -> str:
        return f"oblivious schedule ({len(self._schedule)} rounds)"

    def identity(self) -> str:
        """Content digest of the pre-committed schedule.

        Two schedules of the same length but different disruption sets must
        hash to different campaign-store keys, so the identity covers the
        actual per-round sets, not just the length.
        """
        digest = hashlib.sha256()
        for entry in self._schedule:
            digest.update(repr(sorted(entry)).encode("utf-8"))
        return f"{type(self).__qualname__}[{len(self._schedule)}]:{digest.hexdigest()[:16]}"

    @property
    def schedule(self) -> tuple[frozenset[Frequency], ...]:
        """The pre-committed per-round disruption sets."""
        return self._schedule

    @classmethod
    def pre_drawn(
        cls,
        inner: InterferenceAdversary,
        band: FrequencyBand,
        budget: int,
        rounds: int,
        seed: int = 0,
        active_node_count: int = 0,
    ) -> "ObliviousSchedule":
        """Pre-draw ``rounds`` rounds of ``inner``'s behaviour into a fixed schedule.

        The inner adversary sees an *empty* history in every round (it cannot
        react to the execution), which is exactly what obliviousness means.

        Parameters
        ----------
        inner:
            The adversary whose behaviour is pre-committed.
        band, budget:
            The band and disruption budget the schedule is drawn for.
        rounds:
            Length of the schedule.
        seed:
            Seed for the adversary's random stream.
        active_node_count:
            A constant node count exposed to the inner adversary.
        """
        if rounds < 0:
            raise ConfigurationError(f"schedule length must be non-negative, got {rounds}")
        rng = random.Random(seed)
        empty_history = SpectrumLog()
        schedule = []
        for global_round in range(1, rounds + 1):
            context = AdversaryContext(
                global_round=global_round,
                band=band,
                budget=budget,
                history=empty_history,
                rng=rng,
                active_node_count=active_node_count,
            )
            schedule.append(inner.choose_disruption(context))
        return cls(schedule)


class CyclicObliviousSchedule(ObliviousSchedule):
    """An oblivious adversary that replays a fixed schedule *cyclically*.

    Where :class:`ObliviousSchedule` repeats its final entry forever, this
    variant wraps around — round ``r`` plays entry ``(r − 1) mod period`` — so
    a short periodic disruption pattern covers executions of any length.  This
    is the decoded form of the strategy search's bounded oblivious genomes
    (:class:`repro.search.space.ObliviousGenome`): the genome stores one
    period, the decoded adversary tiles it over the whole execution.

    The content-digest :meth:`~ObliviousSchedule.identity` is inherited; it
    already distinguishes the cyclic class from the truncating one because it
    embeds the concrete class name.
    """

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if not self._schedule:
            return frozenset()
        return self._schedule[(context.global_round - 1) % len(self._schedule)]

    def describe(self) -> str:
        return f"cyclic oblivious schedule (period {len(self._schedule)})"
