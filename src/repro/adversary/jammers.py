"""Concrete interference adversaries.

The paper's theorems quantify over *all* adversaries within the budget ``t``;
to exercise the protocols we provide a representative family:

* :class:`NoInterference` — the undisrupted baseline.
* :class:`FixedBandJammer` — always disrupts frequencies ``1 .. t`` (the weak
  adversary used in the proof of Theorem 1).
* :class:`RandomJammer` — a fresh uniformly random ``t``-subset every round.
* :class:`SweepJammer` — a contiguous window of ``t`` frequencies sweeping
  across the band (models a frequency-scanning jammer).
* :class:`BurstyJammer` — alternates between jamming at full budget and
  staying silent (duty-cycled interference, e.g. a microwave oven).
* :class:`ReactiveJammer` — adaptive: targets the frequencies with the most
  recently observed broadcasts.
* :class:`LowBandJammer` — targets the low prefix ``[1 .. 2^k]`` of the band,
  the worst case for the Good Samaritan protocol's optimistic portion.
* :class:`TwoNodeProductJammer` — approximates the Theorem 4 adversary by
  jamming the historically most *successful* frequencies (largest empirical
  ``p_j · q_j`` proxies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.base import AdversaryContext, InterferenceAdversary
from repro.exceptions import ConfigurationError
from repro.types import Frequency


class NoInterference(InterferenceAdversary):
    """An adversary that never disrupts anything."""

    oblivious = True

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        return frozenset()

    def describe(self) -> str:
        return "no interference"


class FixedBandJammer(InterferenceAdversary):
    """Always disrupt frequencies ``1 .. t`` (Theorem 1's weak adversary)."""

    oblivious = True

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        budget = min(context.budget, context.band.size - 1)
        return frozenset(range(1, budget + 1))

    def describe(self) -> str:
        return "fixed band [1..t]"


@dataclass
class RandomJammer(InterferenceAdversary):
    """Disrupt a uniformly random subset of ``strength`` frequencies per round.

    Parameters
    ----------
    strength:
        How many frequencies to disrupt each round.  ``None`` means the full
        budget ``t``.  Values above the budget are clamped by the simulator's
        budget check, so pass ``strength <= t``.
    """

    strength: int | None = None
    oblivious = True

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        count = context.budget if self.strength is None else min(self.strength, context.budget)
        if count <= 0:
            return frozenset()
        return frozenset(context.rng.sample(context.band.all_frequencies(), count))

    def describe(self) -> str:
        label = "t" if self.strength is None else str(self.strength)
        return f"random jammer ({label} channels/round)"


@dataclass
class SweepJammer(InterferenceAdversary):
    """Disrupt a contiguous window of frequencies that advances every round.

    Parameters
    ----------
    step:
        How many frequencies the window advances per round.
    """

    step: int = 1
    oblivious = True

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ConfigurationError(f"sweep step must be positive, got {self.step}")

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if context.budget <= 0:
            return frozenset()
        size = context.band.size
        start = ((context.global_round - 1) * self.step) % size
        window = [((start + offset) % size) + 1 for offset in range(context.budget)]
        return frozenset(window)

    def describe(self) -> str:
        return f"sweep jammer (step {self.step})"


@dataclass
class BurstyJammer(InterferenceAdversary):
    """Alternate between full-budget jamming and silence.

    Parameters
    ----------
    on_rounds:
        Length of each jamming burst.
    off_rounds:
        Length of each quiet period.
    """

    on_rounds: int = 8
    off_rounds: int = 8
    oblivious = True

    def __post_init__(self) -> None:
        if self.on_rounds < 1 or self.off_rounds < 0:
            raise ConfigurationError(
                f"bursty jammer needs on_rounds >= 1 and off_rounds >= 0, "
                f"got {self.on_rounds}/{self.off_rounds}"
            )

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        period = self.on_rounds + self.off_rounds
        phase = (context.global_round - 1) % period if period else 0
        if phase >= self.on_rounds or context.budget <= 0:
            return frozenset()
        return frozenset(context.rng.sample(context.band.all_frequencies(), context.budget))

    def describe(self) -> str:
        return f"bursty jammer ({self.on_rounds} on / {self.off_rounds} off)"


class ReactiveJammer(InterferenceAdversary):
    """Adaptive jammer targeting the busiest recently observed frequencies.

    The jammer ranks frequencies by the number of broadcasts observed so far
    and disrupts the top ``t``.  This is a natural adaptive strategy against
    protocols that concentrate traffic on a few channels.
    """

    oblivious = False

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if context.budget <= 0:
            return frozenset()
        targets = context.history.busiest_frequencies(
            context.budget, context.band.all_frequencies()
        )
        return frozenset(targets)

    def describe(self) -> str:
        return "reactive jammer (busiest channels)"


@dataclass
class LowBandJammer(InterferenceAdversary):
    """Jam the low prefix of the band, optionally with a small random remainder.

    The Good Samaritan protocol concentrates its optimistic traffic on the
    prefix ``[1 .. 2^k]``; this jammer spends its budget there first, which is
    the worst case for the optimistic portion.

    Parameters
    ----------
    prefix_width:
        Width of the prefix to attack first.  ``None`` means the full budget.
    """

    prefix_width: int | None = None
    oblivious = True

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if context.budget <= 0:
            return frozenset()
        width = context.budget if self.prefix_width is None else self.prefix_width
        prefix = [f for f in context.band.prefix(width)]
        chosen = prefix[: context.budget]
        remaining = context.budget - len(chosen)
        if remaining > 0:
            others = [f for f in context.band.all_frequencies() if f not in set(chosen)]
            chosen.extend(context.rng.sample(others, min(remaining, len(others))))
        return frozenset(chosen)

    def describe(self) -> str:
        return "low-band jammer"


class TwoNodeProductJammer(InterferenceAdversary):
    """Approximation of the Theorem 4 adversary.

    The lower-bound adversary disrupts the ``t`` frequencies with the largest
    product ``p_j · q_j`` of the two nodes' selection probabilities.  A
    simulated adversary cannot read those probabilities directly, so this
    jammer uses the empirical frequency-usage counts (broadcasts plus
    deliveries) observed so far as a proxy, breaking ties towards low
    frequency indices (where uniform-prefix protocols concentrate mass).
    """

    oblivious = False

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if context.budget <= 0:
            return frozenset()
        history = context.history

        def score(frequency: Frequency) -> tuple[int, int, Frequency]:
            usage = history.broadcast_count(frequency) + history.delivery_count(frequency)
            return (-usage, frequency, frequency)

        ranked = sorted(context.band.all_frequencies(), key=score)
        return frozenset(ranked[: context.budget])

    def describe(self) -> str:
        return "two-node product jammer"
