"""Table-driven reactive jamming policies.

The adversarial strategy search (:mod:`repro.search`) needs a *searchable*
family of adaptive adversaries: something richer than the hand-written
:class:`~repro.adversary.jammers.ReactiveJammer`, but still fully determined
by a small, picklable, content-hashable description.  :class:`PolicyJammer`
is that family — a lookup table from discretized
:class:`~repro.adversary.base.AdversaryContext` features to primitive jamming
moves.

Features (the table index) are deliberately coarse so the policy space stays
small enough to search:

* **phase** — ``(global_round − 1) mod phase_period``, letting a policy play
  periodic patterns;
* **heat** — how many broadcasts the previous round carried, bucketed into
  silent / lone-broadcaster / contended (the signal a real reactive jammer
  can actually sense).

Each table entry names one of the :data:`POLICY_ACTIONS` primitives, all of
which respect the per-round budget ``t`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.adversary.base import AdversaryContext, InterferenceAdversary
from repro.exceptions import ConfigurationError
from repro.types import Frequency

#: The primitive moves a policy table can name.
POLICY_ACTIONS: tuple[str, ...] = (
    "idle",        # disrupt nothing this round
    "busiest",     # the t historically busiest frequencies
    "quietest",    # the t historically least-used frequencies
    "random",      # a fresh uniform t-subset
    "low-band",    # the prefix [1 .. t]
    "high-band",   # the suffix [F−t+1 .. F]
    "sweep",       # a contiguous t-window advancing one frequency per round
)

#: Number of heat buckets (silent / lone broadcaster / contended).
HEAT_BUCKETS = 3


@dataclass
class PolicyJammer(InterferenceAdversary):
    """An adaptive jammer driven by a (phase × heat) → action lookup table.

    Parameters
    ----------
    table:
        One action name per (phase, heat) state, laid out row-major as
        ``table[phase * HEAT_BUCKETS + heat]``; must have exactly
        ``phase_period * HEAT_BUCKETS`` entries drawn from
        :data:`POLICY_ACTIONS`.
    phase_period:
        The period of the phase feature (``≥ 1``).
    """

    table: tuple[str, ...]
    phase_period: int = 4

    oblivious = False

    #: Heat bucketing: 0 = silent previous round, 1 = exactly one broadcast,
    #: 2 = contended (two or more).
    heat_buckets: ClassVar[int] = HEAT_BUCKETS

    def __post_init__(self) -> None:
        self.table = tuple(self.table)
        if self.phase_period < 1:
            raise ConfigurationError(f"phase_period must be positive, got {self.phase_period}")
        expected = self.phase_period * HEAT_BUCKETS
        if len(self.table) != expected:
            raise ConfigurationError(
                f"policy table needs {expected} entries "
                f"({self.phase_period} phases × {HEAT_BUCKETS} heat buckets), got {len(self.table)}"
            )
        unknown = sorted(set(self.table) - set(POLICY_ACTIONS))
        if unknown:
            raise ConfigurationError(
                f"unknown policy actions {unknown}; known: {', '.join(POLICY_ACTIONS)}"
            )

    def _heat(self, context: AdversaryContext) -> int:
        latest = context.history.latest
        if latest is None:
            return 0
        broadcasts = latest.broadcaster_count()
        return 0 if broadcasts == 0 else 1 if broadcasts == 1 else 2

    def choose_disruption(self, context: AdversaryContext) -> frozenset[Frequency]:
        if context.budget <= 0:
            return frozenset()
        phase = (context.global_round - 1) % self.phase_period
        action = self.table[phase * HEAT_BUCKETS + self._heat(context)]
        return self._apply(action, context)

    def _apply(self, action: str, context: AdversaryContext) -> frozenset[Frequency]:
        band, budget, history = context.band, context.budget, context.history
        if action == "idle":
            return frozenset()
        if action == "busiest":
            return frozenset(history.busiest_frequencies(budget, band.all_frequencies()))
        if action == "quietest":
            ranked = sorted(
                band.all_frequencies(),
                key=lambda frequency: (history.broadcast_count(frequency), frequency),
            )
            return frozenset(ranked[:budget])
        if action == "random":
            return frozenset(context.rng.sample(band.all_frequencies(), budget))
        if action == "low-band":
            return frozenset(band.prefix(budget))
        if action == "high-band":
            return frozenset(range(band.size - budget + 1, band.size + 1))
        if action == "sweep":
            start = (context.global_round - 1) % band.size
            return frozenset(((start + offset) % band.size) + 1 for offset in range(budget))
        raise ConfigurationError(f"unknown policy action {action!r}")  # pragma: no cover

    def describe(self) -> str:
        return f"policy jammer ({self.phase_period} phases × {HEAT_BUCKETS} heat buckets)"
