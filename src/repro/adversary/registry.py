"""The named adversary registry.

The CLI, the campaign subsystem, and the adversarial strategy search all refer
to interference adversaries by short names ("random", "sweep", "reactive",
...).  This registry is the one place those names are bound to constructors —
mirroring :mod:`repro.protocols.registry` — so a jammer name means the same
adversary everywhere and a content-hashed store key derived from a name is
stable across subsystems.

Each registry value is a callable returning a *fresh* adversary; parametric
jammers accept their dataclass fields as keyword overrides through
:func:`resolve` (e.g. ``resolve("sweep", step=2)``).
"""

from __future__ import annotations

from typing import Callable

from repro.adversary.base import InterferenceAdversary
from repro.adversary.jammers import (
    BurstyJammer,
    FixedBandJammer,
    LowBandJammer,
    NoInterference,
    RandomJammer,
    ReactiveJammer,
    SweepJammer,
    TwoNodeProductJammer,
)
from repro.exceptions import ConfigurationError

#: name -> constructor of a fresh adversary (keyword overrides allowed).
ADVERSARY_FACTORIES: dict[str, Callable[..., InterferenceAdversary]] = {
    "none": NoInterference,
    "random": RandomJammer,
    "fixed-band": FixedBandJammer,
    "sweep": SweepJammer,
    "bursty": BurstyJammer,
    "reactive": ReactiveJammer,
    "low-band": LowBandJammer,
    "two-node-product": TwoNodeProductJammer,
}


def names() -> tuple[str, ...]:
    """All registered adversary names, sorted."""
    return tuple(sorted(ADVERSARY_FACTORIES))


def resolve(name: str, **overrides: object) -> InterferenceAdversary:
    """Build a fresh adversary for a registered name.

    Parameters
    ----------
    name:
        A registered adversary name.
    overrides:
        Optional constructor keyword arguments (e.g. ``step=2`` for the sweep
        jammer).  Unknown keywords raise ``TypeError``, exactly as direct
        construction would.
    """
    try:
        factory = ADVERSARY_FACTORIES[name]
    except KeyError:
        known = ", ".join(names())
        raise ConfigurationError(f"unknown adversary {name!r}; known: {known}") from None
    return factory(**overrides)


def register(name: str, factory: Callable[..., InterferenceAdversary]) -> None:
    """Register (or overwrite) a named adversary constructor.

    The name becomes part of content-hashed store keys wherever it is used, so
    a name must always mean the same behaviour — overwriting is only safe
    while no store holds results recorded under it.
    """
    ADVERSARY_FACTORIES[name] = factory
