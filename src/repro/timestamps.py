"""Contender timestamps.

The Trapdoor protocol orders contenders by the pair ``(rounds_active, uid)``
compared lexicographically: a node that has been active longer (and hence was
activated earlier) has a *larger* timestamp, with ties broken by the unique
identifier.  The earliest-activated node therefore always has the maximal
timestamp and can never be knocked out, which is the linchpin of the
agreement argument (Theorem 10).
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Default multiplier for the uid range ``[1 .. c · N²]`` suggested by the
#: paper's footnote 4.  With ``c = 16`` the probability of any collision among
#: ``n ≤ N`` uids is at most ``n² / (2 · 16 · N²) ≤ 1/32``... per footnote the
#: constant should be chosen according to the desired error probability; it is
#: exposed as an argument of :func:`draw_uid`.
DEFAULT_UID_RANGE_MULTIPLIER = 16


@functools.total_ordering
@dataclass(frozen=True)
class Timestamp:
    """A lexicographically ordered ``(rounds_active, uid)`` pair.

    Attributes
    ----------
    rounds_active:
        How many rounds the node has been active (its local round counter).
    uid:
        The node's randomly drawn unique identifier.
    """

    rounds_active: int
    uid: int

    def _key(self) -> tuple[int, int]:
        return (self.rounds_active, self.uid)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._key() < other._key()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def aged(self, extra_rounds: int = 1) -> "Timestamp":
        """A copy of this timestamp after ``extra_rounds`` further rounds of activity."""
        if extra_rounds < 0:
            raise ConfigurationError("cannot age a timestamp by a negative number of rounds")
        return Timestamp(self.rounds_active + extra_rounds, self.uid)


def draw_uid(
    rng: random.Random,
    participant_bound: int,
    range_multiplier: int = DEFAULT_UID_RANGE_MULTIPLIER,
) -> int:
    """Draw a unique identifier uniformly from ``[1 .. multiplier · N²]``.

    This follows footnote 4 of the paper: identifiers drawn from a range
    quadratic in the participant bound collide with polynomially small
    probability.

    Parameters
    ----------
    rng:
        The node's random stream.
    participant_bound:
        The bound ``N`` on the number of participants.
    range_multiplier:
        The constant ``c`` in ``[1 .. c · N²]``.
    """
    if participant_bound < 1:
        raise ConfigurationError(f"participant bound must be positive, got {participant_bound}")
    if range_multiplier < 1:
        raise ConfigurationError(f"uid range multiplier must be positive, got {range_multiplier}")
    return rng.randint(1, range_multiplier * participant_bound * participant_bound)
