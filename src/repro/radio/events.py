"""Records describing what happened on the radio network in one round.

These records form the vocabulary shared by the network resolver
(:mod:`repro.radio.network`), the execution trace
(:mod:`repro.engine.trace`), the metrics collector, and the adversaries
(which may observe the history of past rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.radio.messages import Message
from repro.types import Frequency, NodeId


@dataclass(frozen=True, slots=True)
class ReceptionOutcome:
    """What a single node observed at the end of a round.

    Attributes
    ----------
    frequency:
        The frequency the node tuned to.
    broadcast:
        Whether the node itself broadcast (a broadcaster never receives).
    message:
        The message received, or ``None`` if nothing was received (the node
        broadcast, the frequency was silent, collided, or disrupted).
    collision:
        True if two or more nodes broadcast on the node's frequency.  Nodes in
        the paper's model cannot distinguish collision from silence or
        disruption; this flag exists for metrics and tests only and must not
        be used by protocol logic.
    disrupted:
        True if the adversary disrupted the node's frequency.  Also visible to
        metrics/tests only.
    """

    frequency: Frequency
    broadcast: bool
    message: Optional[Message] = None
    collision: bool = False
    disrupted: bool = False

    @property
    def received(self) -> bool:
        """True if the node received a message this round."""
        return self.message is not None


@dataclass(frozen=True, slots=True)
class FrequencyActivity:
    """Aggregate activity on one frequency during one round.

    Attributes
    ----------
    frequency:
        The frequency index.
    broadcasters:
        Node ids that broadcast on this frequency.
    listeners:
        Node ids that listened on this frequency.
    disrupted:
        Whether the adversary disrupted the frequency.
    delivered:
        Whether a message was delivered (exactly one broadcaster and no
        disruption and at least zero listeners — delivery is defined per
        listener, so this is true exactly when listeners could receive).
    """

    frequency: Frequency
    broadcasters: tuple[NodeId, ...] = ()
    listeners: tuple[NodeId, ...] = ()
    disrupted: bool = False
    delivered: bool = False

    @property
    def collided(self) -> bool:
        """True if two or more nodes broadcast on this frequency."""
        return len(self.broadcasters) >= 2


@dataclass(frozen=True, slots=True)
class RoundActivity:
    """Everything that happened on the spectrum in one global round.

    Attributes
    ----------
    global_round:
        The 1-based global round index.
    per_frequency:
        Mapping from frequency to its :class:`FrequencyActivity`.  Frequencies
        with no tuned nodes may be absent.
    disrupted:
        The set of frequencies disrupted by the adversary this round.
    activations:
        Node ids activated at the beginning of this round.
    """

    global_round: int
    per_frequency: Mapping[Frequency, FrequencyActivity] = field(default_factory=dict)
    disrupted: frozenset[Frequency] = frozenset()
    activations: tuple[NodeId, ...] = ()

    def successful_frequencies(self) -> tuple[Frequency, ...]:
        """Frequencies on which a message was delivered this round."""
        return tuple(
            frequency
            for frequency, activity in sorted(self.per_frequency.items())
            if activity.delivered
        )

    def broadcaster_count(self) -> int:
        """Total number of broadcasting nodes this round."""
        return sum(len(activity.broadcasters) for activity in self.per_frequency.values())
