"""Spectrum occupancy history.

The :class:`SpectrumLog` keeps a bounded window of past
:class:`~repro.radio.events.RoundActivity` records.  It is the information an
*adaptive* adversary is allowed to see (everything up to the end of the
previous round), and it also backs a couple of occupancy statistics used by
metrics and by the reactive jammers.

The log doubles as a streaming round observer (it implements the
:class:`~repro.engine.observers.RoundObserver` interface structurally, with
no dependency on the engine layer): the simulator feeds it one resolved round
at a time via :meth:`on_round`.  A bounded ``window`` keeps memory constant
on long executions while the aggregate counters still cover everything.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterable, Iterator, Optional

from repro.radio.events import RoundActivity
from repro.types import Frequency


class SpectrumLog:
    """A (optionally bounded) log of per-round spectrum activity.

    Parameters
    ----------
    window:
        If given, only the most recent ``window`` rounds are retained.  The
        aggregate counters still cover the full execution.
    """

    def __init__(self, window: Optional[int] = None) -> None:
        self._window = window
        self._records: Deque[RoundActivity] = deque(maxlen=window)
        self._broadcast_counts: Counter[Frequency] = Counter()
        self._delivery_counts: Counter[Frequency] = Counter()
        self._disruption_counts: Counter[Frequency] = Counter()
        self._total_rounds = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RoundActivity]:
        return iter(self._records)

    @property
    def total_rounds(self) -> int:
        """Number of rounds recorded over the whole execution (not the window)."""
        return self._total_rounds

    @property
    def latest(self) -> Optional[RoundActivity]:
        """The most recently recorded round, or ``None`` if empty."""
        return self._records[-1] if self._records else None

    def record(self, activity: RoundActivity) -> None:
        """Append one round's activity to the log."""
        self._records.append(activity)
        self._total_rounds += 1
        for frequency, freq_activity in activity.per_frequency.items():
            if freq_activity.broadcasters:
                self._broadcast_counts[frequency] += len(freq_activity.broadcasters)
            if freq_activity.delivered:
                self._delivery_counts[frequency] += 1
        for frequency in activity.disrupted:
            self._disruption_counts[frequency] += 1

    # -- RoundObserver interface (structural, no engine import) -----------

    def on_simulation_start(self, params, seed) -> None:
        """Observer hook: nothing to initialize — the log is ready at birth."""

    def on_activation(self, node_id, global_round) -> None:
        """Observer hook: activations are visible via the round activity."""

    def on_round(self, record) -> None:
        """Observer hook: record the round's spectrum activity."""
        self.record(record.activity)

    def on_simulation_end(self, rounds_simulated) -> None:
        """Observer hook: nothing to finalize."""

    # -- occupancy statistics ---------------------------------------------

    def broadcast_count(self, frequency: Frequency) -> int:
        """Total number of broadcasts observed on ``frequency``."""
        return self._broadcast_counts[frequency]

    def delivery_count(self, frequency: Frequency) -> int:
        """Total number of successful deliveries observed on ``frequency``."""
        return self._delivery_counts[frequency]

    def disruption_count(self, frequency: Frequency) -> int:
        """Total number of rounds ``frequency`` was disrupted."""
        return self._disruption_counts[frequency]

    def busiest_frequencies(self, count: int, universe: Iterable[Frequency]) -> tuple[Frequency, ...]:
        """The ``count`` frequencies with the most observed broadcasts.

        Frequencies from ``universe`` that were never used rank last; ties are
        broken by frequency index for determinism.
        """
        ranked = sorted(
            universe,
            key=lambda frequency: (-self._broadcast_counts[frequency], frequency),
        )
        return tuple(ranked[:count])

    def recent_window(self) -> tuple[RoundActivity, ...]:
        """The retained window of round records (oldest first)."""
        return tuple(self._records)
