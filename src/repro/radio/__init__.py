"""The disrupted single-hop radio network substrate (paper §2)."""

from repro.radio.actions import RadioAction, broadcast, listen
from repro.radio.events import FrequencyActivity, ReceptionOutcome, RoundActivity
from repro.radio.frequencies import FrequencyBand
from repro.radio.messages import (
    ContenderMessage,
    DataMessage,
    LeaderMessage,
    Message,
    SamaritanMessage,
    WakeupMessage,
)
from repro.radio.network import NetworkResolution, SingleHopRadioNetwork
from repro.radio.spectrum_log import SpectrumLog

__all__ = [
    "RadioAction",
    "broadcast",
    "listen",
    "FrequencyActivity",
    "ReceptionOutcome",
    "RoundActivity",
    "FrequencyBand",
    "ContenderMessage",
    "DataMessage",
    "LeaderMessage",
    "Message",
    "SamaritanMessage",
    "WakeupMessage",
    "NetworkResolution",
    "SingleHopRadioNetwork",
    "SpectrumLog",
]
