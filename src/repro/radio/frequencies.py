"""The frequency band abstraction.

The paper models the shared spectrum as ``F`` disjoint narrowband
frequencies, indexed ``1 .. F`` (for example, the ~12 channels 802.11 carves
out of the 2.4 GHz band, or the ~75 Bluetooth channels).  A
:class:`FrequencyBand` validates frequency indices and provides the sub-band
helpers used by the Good Samaritan protocol, which concentrates its traffic
on prefixes ``[1 .. 2^k]`` of the band.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.types import Frequency


@dataclass(frozen=True)
class FrequencyBand:
    """A band of ``size`` disjoint narrowband frequencies, indexed 1-based.

    Parameters
    ----------
    size:
        The number of frequencies ``F``.  Must be at least 1.
    """

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError(f"a frequency band needs at least one frequency, got {self.size}")
        # Precomputed once: adversaries ask for the full band every round.
        object.__setattr__(self, "_all_frequencies", tuple(range(1, self.size + 1)))

    def __contains__(self, frequency: object) -> bool:
        return isinstance(frequency, int) and 1 <= frequency <= self.size

    def __iter__(self):
        return iter(range(1, self.size + 1))

    def __len__(self) -> int:
        return self.size

    def validate(self, frequency: Frequency) -> Frequency:
        """Return ``frequency`` if it lies in the band, else raise.

        Raises
        ------
        ConfigurationError
            If ``frequency`` is outside ``[1 .. F]``.
        """
        if frequency not in self:
            raise ConfigurationError(
                f"frequency {frequency!r} outside band [1..{self.size}]"
            )
        return frequency

    def prefix(self, width: int) -> range:
        """The sub-band ``[1 .. width]``, clamped to the band size.

        The Good Samaritan protocol restricts most of its traffic to the
        prefix ``[1 .. 2^k]`` during super-epoch ``k``; clamping keeps the
        helper usable when ``2^k`` exceeds ``F``.
        """
        if width < 1:
            raise ConfigurationError(f"prefix width must be positive, got {width}")
        return range(1, min(width, self.size) + 1)

    def suffix(self, start: int) -> range:
        """The sub-band ``[start .. F]`` (used by the modified Trapdoor fallback,
        which relies on the upper quarter ``[F/4 .. F]`` of the band)."""
        if start < 1:
            raise ConfigurationError(f"suffix start must be positive, got {start}")
        return range(min(start, self.size), self.size + 1)

    def all_frequencies(self) -> tuple[Frequency, ...]:
        """All frequencies of the band as a tuple (1-based)."""
        return self._all_frequencies  # type: ignore[attr-defined,no-any-return]
