"""The single-hop disrupted radio network.

This module implements the communication rule of the paper's model (§2):

* each node tunes to one frequency per round and either broadcasts or listens;
* a listener on frequency ``f`` receives a message iff **exactly one** node
  broadcast on ``f`` and the adversary did not disrupt ``f``;
* broadcasters receive nothing;
* nodes cannot distinguish silence, collision, and disruption.

The network itself is stateless; :class:`SingleHopRadioNetwork.resolve_round`
is a pure function from the round's actions and the adversary's disruption set
to per-node outcomes plus an aggregate :class:`~repro.radio.events.RoundActivity`
record.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError, SimulationError
from repro.radio.actions import RadioAction
from repro.radio.events import FrequencyActivity, ReceptionOutcome, RoundActivity
from repro.radio.frequencies import FrequencyBand
from repro.types import Frequency, NodeId


@dataclass(frozen=True)
class NetworkResolution:
    """The result of resolving one round of radio communication.

    Attributes
    ----------
    outcomes:
        Per-node reception outcomes.
    activity:
        The aggregate spectrum activity record for the round.
    """

    outcomes: Mapping[NodeId, ReceptionOutcome]
    activity: RoundActivity


class SingleHopRadioNetwork:
    """A single-hop radio network with ``F`` frequencies and collisions.

    Parameters
    ----------
    band:
        The frequency band (defines ``F``).
    """

    def __init__(self, band: FrequencyBand) -> None:
        self._band = band

    @property
    def band(self) -> FrequencyBand:
        """The frequency band this network operates on."""
        return self._band

    def resolve_round(
        self,
        global_round: int,
        actions: Mapping[NodeId, RadioAction],
        disrupted: Iterable[Frequency],
        activations: Iterable[NodeId] = (),
    ) -> NetworkResolution:
        """Resolve one round of communication.

        Parameters
        ----------
        global_round:
            The global round index (only recorded, never interpreted).
        actions:
            The action chosen by every active node this round.
        disrupted:
            The frequencies the adversary disrupts this round.  Frequencies
            outside the band are rejected.
        activations:
            Node ids activated this round (recorded in the activity record).

        Returns
        -------
        NetworkResolution
            Per-node outcomes and the aggregate activity record.
        """
        disrupted_set = frozenset(self._band.validate(f) for f in disrupted)

        broadcasters: dict[Frequency, list[NodeId]] = defaultdict(list)
        listeners: dict[Frequency, list[NodeId]] = defaultdict(list)
        for node_id, action in actions.items():
            frequency = action.frequency
            if frequency not in self._band:
                raise SimulationError(
                    f"node {node_id} tuned to frequency {frequency} outside band "
                    f"[1..{self._band.size}]"
                )
            if action.is_broadcast:
                broadcasters[frequency].append(node_id)
            else:
                listeners[frequency].append(node_id)

        outcomes: dict[NodeId, ReceptionOutcome] = {}
        per_frequency: dict[Frequency, FrequencyActivity] = {}

        used_frequencies = set(broadcasters) | set(listeners)
        for frequency in sorted(used_frequencies):
            freq_broadcasters = tuple(sorted(broadcasters.get(frequency, ())))
            freq_listeners = tuple(sorted(listeners.get(frequency, ())))
            is_disrupted = frequency in disrupted_set
            collision = len(freq_broadcasters) >= 2
            delivered = len(freq_broadcasters) == 1 and not is_disrupted

            message = None
            if delivered:
                only_broadcaster = freq_broadcasters[0]
                message = actions[only_broadcaster].message

            per_frequency[frequency] = FrequencyActivity(
                frequency=frequency,
                broadcasters=freq_broadcasters,
                listeners=freq_listeners,
                disrupted=is_disrupted,
                delivered=delivered,
            )

            for node_id in freq_broadcasters:
                outcomes[node_id] = ReceptionOutcome(
                    frequency=frequency,
                    broadcast=True,
                    message=None,
                    collision=collision,
                    disrupted=is_disrupted,
                )
            for node_id in freq_listeners:
                outcomes[node_id] = ReceptionOutcome(
                    frequency=frequency,
                    broadcast=False,
                    message=message if delivered else None,
                    collision=collision,
                    disrupted=is_disrupted,
                )

        activity = RoundActivity(
            global_round=global_round,
            per_frequency=per_frequency,
            disrupted=disrupted_set,
            activations=tuple(sorted(activations)),
        )
        return NetworkResolution(outcomes=outcomes, activity=activity)

    def validate_disruption_budget(self, disrupted: Iterable[Frequency], budget: int) -> frozenset[Frequency]:
        """Check that a disruption set respects the adversary budget ``t``.

        Returns the validated set.  Raises :class:`ConfigurationError` if the
        set exceeds the budget or contains out-of-band frequencies.
        """
        disrupted_set = frozenset(disrupted)
        for frequency in disrupted_set:
            self._band.validate(frequency)
        if len(disrupted_set) > budget:
            raise ConfigurationError(
                f"adversary disrupted {len(disrupted_set)} frequencies, budget is {budget}"
            )
        return disrupted_set
