"""The single-hop disrupted radio network.

This module implements the communication rule of the paper's model (§2):

* each node tunes to one frequency per round and either broadcasts or listens;
* a listener on frequency ``f`` receives a message iff **exactly one** node
  broadcast on ``f`` and the adversary did not disrupt ``f``;
* broadcasters receive nothing;
* nodes cannot distinguish silence, collision, and disruption.

The network itself is stateless; :class:`SingleHopRadioNetwork.resolve_round`
is a pure function from the round's actions and the adversary's disruption set
to per-node outcomes plus an aggregate :class:`~repro.radio.events.RoundActivity`
record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.exceptions import ConfigurationError, SimulationError
from repro.radio.actions import RadioAction
from repro.radio.events import FrequencyActivity, ReceptionOutcome, RoundActivity
from repro.radio.frequencies import FrequencyBand
from repro.types import Frequency, Intent, NodeId


@dataclass(frozen=True, slots=True)
class NetworkResolution:
    """The result of resolving one round of radio communication.

    Attributes
    ----------
    outcomes:
        Per-node reception outcomes.
    activity:
        The aggregate spectrum activity record for the round.
    """

    outcomes: Mapping[NodeId, ReceptionOutcome]
    activity: RoundActivity


class SingleHopRadioNetwork:
    """A single-hop radio network with ``F`` frequencies and collisions.

    Parameters
    ----------
    band:
        The frequency band (defines ``F``).
    """

    def __init__(self, band: FrequencyBand) -> None:
        self._band = band
        #: The band as a frozenset, for O(t) validation of disruption sets.
        self._band_set: frozenset[Frequency] = frozenset(band.all_frequencies())
        #: Interned reception outcomes.  An outcome with no message is fully
        #: determined by ``(frequency, broadcast, collision, disrupted)`` —
        #: at most ``8·F`` distinct values — and outcomes are immutable, so
        #: the resolver hands every node a shared instance instead of
        #: allocating one dataclass per node per round.
        self._outcome_cache: dict[
            tuple[Frequency, bool, bool, bool], ReceptionOutcome
        ] = {}

    @property
    def band(self) -> FrequencyBand:
        """The frequency band this network operates on."""
        return self._band

    def resolve_round(
        self,
        global_round: int,
        actions: Mapping[NodeId, RadioAction],
        disrupted: Iterable[Frequency],
        activations: Iterable[NodeId] = (),
    ) -> NetworkResolution:
        """Resolve one round of communication.

        Parameters
        ----------
        global_round:
            The global round index (only recorded, never interpreted).
        actions:
            The action chosen by every active node this round.
        disrupted:
            The frequencies the adversary disrupts this round.  Frequencies
            outside the band are rejected.
        activations:
            Node ids activated this round (recorded in the activity record).

        Returns
        -------
        NetworkResolution
            Per-node outcomes and the aggregate activity record.
        """
        # Fast path: the simulator hands us an already-budget-validated
        # frozenset of in-band ints, so a subset check replaces per-frequency
        # validation.  Anything else (or any non-int) takes the strict path.
        if isinstance(disrupted, frozenset) and all(type(f) is int for f in disrupted):
            disrupted_set = disrupted
            if not disrupted_set <= self._band_set:
                for f in disrupted_set:
                    self._band.validate(f)
        else:
            disrupted_set = frozenset(self._band.validate(f) for f in disrupted)

        broadcasters: dict[Frequency, list[NodeId]] = {}
        listeners: dict[Frequency, list[NodeId]] = {}
        band = self._band
        band_size = band.size
        broadcast_intent = Intent.BROADCAST
        for node_id, action in actions.items():
            frequency = action.frequency
            if not (type(frequency) is int and 1 <= frequency <= band_size) and (
                frequency not in band
            ):
                raise SimulationError(
                    f"node {node_id} tuned to frequency {frequency} outside band "
                    f"[1..{band_size}]"
                )
            target = broadcasters if action.intent is broadcast_intent else listeners
            bucket = target.get(frequency)
            if bucket is None:
                target[frequency] = [node_id]
            else:
                bucket.append(node_id)

        outcomes: dict[NodeId, ReceptionOutcome] = {}
        per_frequency: dict[Frequency, FrequencyActivity] = {}
        outcome_cache = self._outcome_cache

        used_frequencies = broadcasters.keys() | listeners.keys()
        for frequency in sorted(used_frequencies):
            freq_bucket = broadcasters.get(frequency)
            listen_bucket = listeners.get(frequency)
            freq_broadcasters = tuple(sorted(freq_bucket)) if freq_bucket else ()
            freq_listeners = tuple(sorted(listen_bucket)) if listen_bucket else ()
            is_disrupted = frequency in disrupted_set
            broadcaster_count = len(freq_broadcasters)
            collision = broadcaster_count >= 2
            delivered = broadcaster_count == 1 and not is_disrupted

            message = None
            if delivered:
                message = actions[freq_broadcasters[0]].message

            per_frequency[frequency] = FrequencyActivity(
                frequency=frequency,
                broadcasters=freq_broadcasters,
                listeners=freq_listeners,
                disrupted=is_disrupted,
                delivered=delivered,
            )

            if freq_broadcasters:
                key = (frequency, True, collision, is_disrupted)
                outcome = outcome_cache.get(key)
                if outcome is None:
                    outcome = ReceptionOutcome(
                        frequency=frequency,
                        broadcast=True,
                        message=None,
                        collision=collision,
                        disrupted=is_disrupted,
                    )
                    outcome_cache[key] = outcome
                for node_id in freq_broadcasters:
                    outcomes[node_id] = outcome
            if freq_listeners:
                if message is None:
                    key = (frequency, False, collision, is_disrupted)
                    outcome = outcome_cache.get(key)
                    if outcome is None:
                        outcome = ReceptionOutcome(
                            frequency=frequency,
                            broadcast=False,
                            message=None,
                            collision=collision,
                            disrupted=is_disrupted,
                        )
                        outcome_cache[key] = outcome
                else:
                    outcome = ReceptionOutcome(
                        frequency=frequency,
                        broadcast=False,
                        message=message,
                        collision=collision,
                        disrupted=is_disrupted,
                    )
                for node_id in freq_listeners:
                    outcomes[node_id] = outcome

        activity = RoundActivity(
            global_round=global_round,
            per_frequency=per_frequency,
            disrupted=disrupted_set,
            activations=tuple(sorted(activations)),
        )
        return NetworkResolution(outcomes=outcomes, activity=activity)

    def validate_disruption_budget(self, disrupted: Iterable[Frequency], budget: int) -> frozenset[Frequency]:
        """Check that a disruption set respects the adversary budget ``t``.

        Returns the validated set.  Raises :class:`ConfigurationError` if the
        set exceeds the budget or contains out-of-band frequencies.
        """
        disrupted_set = frozenset(disrupted)
        for frequency in disrupted_set:
            self._band.validate(frequency)
        if len(disrupted_set) > budget:
            raise ConfigurationError(
                f"adversary disrupted {len(disrupted_set)} frequencies, budget is {budget}"
            )
        return disrupted_set
