"""Message types exchanged over the radio network.

All messages are small, immutable dataclasses.  The simulator never inspects
message contents; only protocols do.  Messages deliberately do not carry a
sender :data:`~repro.types.NodeId` — in the model a receiver learns only what
the sender put in the message, and protocols identify themselves through the
randomly drawn unique identifier embedded in their timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.timestamps import Timestamp


@dataclass(frozen=True)
class Message:
    """Base class for everything sent over a frequency in one round."""


@dataclass(frozen=True)
class ContenderMessage(Message):
    """A Trapdoor/Good-Samaritan contender announcing itself.

    Attributes
    ----------
    timestamp:
        The sender's ``(rounds_active, uid)`` timestamp.  In the Trapdoor
        protocol a receiver with a smaller timestamp is knocked out.
    special:
        Whether the sender designated this round as *special* (Good Samaritan
        protocol only; special rounds never count towards the critical-epoch
        success tally).
    epoch:
        The sender's current epoch index, carried for diagnostics.
    """

    timestamp: Timestamp
    special: bool = False
    epoch: int = 0


@dataclass(frozen=True)
class SamaritanMessage(Message):
    """A good samaritan's broadcast.

    Samaritans broadcast both to knock each other out (only one samaritan is
    needed) and to carry success reports back to contenders.

    Attributes
    ----------
    timestamp:
        The samaritan's timestamp (ignored for knock-out decisions in the
        Good Samaritan protocol, carried for diagnostics).
    reports:
        Mapping from contender uid to the number of successful (countable)
        rounds the samaritan has recorded for that contender in the current
        critical epoch.
    special:
        Whether the samaritan designated this round as special.
    """

    timestamp: Timestamp
    reports: Mapping[int, int] = field(default_factory=dict)
    special: bool = False


@dataclass(frozen=True)
class LeaderMessage(Message):
    """A leader dictating the global round numbering.

    Attributes
    ----------
    leader_uid:
        The unique identifier of the leader.
    round_number:
        The round number the leader assigns to the *current* round.  A
        receiver adopts this value immediately and increments it every round
        thereafter.
    """

    leader_uid: int
    round_number: int


@dataclass(frozen=True)
class WakeupMessage(Message):
    """The single-shot message used by the wake-up style baselines."""

    sender_uid: int
    round_number: int


@dataclass(frozen=True)
class DataMessage(Message):
    """An application-level payload (used by the ``repro.apps`` layer)."""

    sender_uid: int
    payload: Any = None
