"""Per-round radio actions.

In every round each active node chooses a single frequency and either
broadcasts a message on it or listens on it.  A :class:`RadioAction` captures
that choice; it is what a protocol returns from
:meth:`repro.protocols.base.SynchronizationProtocol.choose_action`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ConfigurationError
from repro.radio.messages import Message
from repro.types import Frequency, Intent


@dataclass(frozen=True, slots=True)
class RadioAction:
    """The action a node takes in one round.

    Attributes
    ----------
    frequency:
        The frequency (1-based) the node tunes to for this round.
    intent:
        Whether the node broadcasts or listens on that frequency.
    message:
        The message broadcast.  Must be provided iff ``intent`` is
        ``BROADCAST``.
    """

    frequency: Frequency
    intent: Intent
    message: Optional[Message] = None

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ConfigurationError(f"frequency must be 1-based, got {self.frequency}")
        if self.intent is Intent.BROADCAST and self.message is None:
            raise ConfigurationError("a broadcast action requires a message")
        if self.intent is Intent.LISTEN and self.message is not None:
            raise ConfigurationError("a listen action must not carry a message")

    @property
    def is_broadcast(self) -> bool:
        """True if this action broadcasts a message."""
        return self.intent is Intent.BROADCAST

    @property
    def is_listen(self) -> bool:
        """True if this action listens."""
        return self.intent is Intent.LISTEN


def broadcast(frequency: Frequency, message: Message) -> RadioAction:
    """Convenience constructor for a broadcast action."""
    return RadioAction(frequency=frequency, intent=Intent.BROADCAST, message=message)


#: Interned listen actions.  A listen action is fully determined by its
#: frequency and :class:`RadioAction` is immutable, so every protocol that
#: listens on frequency ``f`` can share one instance — listening is by far the
#: most common action, and this removes a dataclass allocation (plus its
#: ``__post_init__`` validation) from the per-node hot path.
_LISTEN_ACTIONS: dict[Frequency, RadioAction] = {}


def listen(frequency: Frequency) -> RadioAction:
    """Convenience constructor for a listen action (instances are interned)."""
    action = _LISTEN_ACTIONS.get(frequency)
    if action is None:
        action = RadioAction(frequency=frequency, intent=Intent.LISTEN)
        _LISTEN_ACTIONS[frequency] = action
    return action
