"""Declarative, persistent, resumable sweep campaigns.

The campaign subsystem gives the multi-seed trial runner a durable memory:

* :mod:`repro.campaigns.spec` — :class:`CampaignSpec` describes a grid of
  protocol × workload × parameters × seeds declaratively; every expanded
  :class:`CampaignCell` has a stable content-hashed key.
* :mod:`repro.campaigns.store` — :class:`ResultStore`, an SQLite-backed,
  schema-versioned store with append-only per-trial rows, dedup by cell key,
  and atomic per-cell commits.
* :mod:`repro.campaigns.runner` — :class:`CampaignRunner` executes only the
  cells the store is missing, checkpointing each, so an interrupted campaign
  resumes exactly where it stopped.
* :mod:`repro.campaigns.query` — group-by aggregation (success rates, round
  counts, interpolated latency percentiles) straight from the store, in rows
  the table/figure renderers consume directly.
"""

from repro.campaigns.query import (
    GROUPABLE_DIMENSIONS,
    StoredSummary,
    aggregate,
    cell_rows,
    export_campaign,
    summary_for_cell,
)
from repro.campaigns.runner import CampaignProgress, CampaignRunner
from repro.campaigns.spec import (
    SPEC_SCHEMA_VERSION,
    CampaignCell,
    CampaignSpec,
    cell_key,
    register_workload,
    resolve_workload,
)
from repro.campaigns.store import STORE_SCHEMA_VERSION, ResultStore, TrialRecord

__all__ = [
    "GROUPABLE_DIMENSIONS",
    "StoredSummary",
    "aggregate",
    "cell_rows",
    "export_campaign",
    "summary_for_cell",
    "CampaignProgress",
    "CampaignRunner",
    "SPEC_SCHEMA_VERSION",
    "CampaignCell",
    "CampaignSpec",
    "cell_key",
    "register_workload",
    "resolve_workload",
    "STORE_SCHEMA_VERSION",
    "ResultStore",
    "TrialRecord",
]
