"""The resumable campaign runner.

:class:`CampaignRunner` diffs a :class:`~repro.campaigns.spec.CampaignSpec`
against a :class:`~repro.campaigns.store.ResultStore` and executes only the
cells whose content-hashed keys are missing, checkpointing each completed
cell atomically.  Kill the process at any point and re-run: the campaign
resumes exactly where it stopped, and — because every execution derives all
randomness from its own seed — the resumed results are bit-identical to an
uninterrupted run.

With ``workers > 1`` (or an explicit ``pool=``) the runner batches *every
pending cell's* trials onto one persistent
:class:`~repro.engine.pool.ExecutionPool`: work is dispatched in chunks
(template-and-delta pickling), workers reduce each trial to the scalars the
store persists before anything crosses the process boundary, and each cell is
committed — atomically, exactly as in the serial path — the moment its last
chunk completes.  One pool serves the whole run, and survives across ``run``
invocations, so a grid of ten thousand small cells pays pool spin-up once
instead of ten thousand times.  None of this changes results: the stored rows
are bit-identical to a serial campaign's.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import Future, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore, TrialRecord
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan, resolve_plan
from repro.engine.pool import (
    ExecutionPool,
    ReducedTrial,
    payload_is_picklable,
    warn_serial_fallback,
)
from repro.engine.runner import run_reduced_trials
from repro.telemetry import Telemetry, as_telemetry
from repro.telemetry.events import (
    CampaignCompleted,
    CampaignStarted,
    CellCommitted,
    FaultInjected,
)

logger = logging.getLogger("repro.campaigns.runner")


@dataclass(frozen=True)
class CampaignProgress:
    """The outcome of one :meth:`CampaignRunner.run` invocation.

    Attributes
    ----------
    total:
        Number of cells in the spec's grid.
    already_complete:
        Cells the store already held when the run started (skipped).
    executed:
        Cells this invocation ran and recorded.
    remaining:
        Cells still missing after this invocation (non-zero only when the run
        was capped with ``max_cells``).
    """

    total: int
    already_complete: int
    executed: int
    remaining: int

    @property
    def complete(self) -> bool:
        """True once the store holds every cell of the spec."""
        return self.remaining == 0

    def describe(self) -> str:
        """One-line progress summary for logs and the CLI."""
        done = self.already_complete + self.executed
        return (
            f"{done}/{self.total} cells complete "
            f"({self.executed} executed now, {self.already_complete} reused, "
            f"{self.remaining} remaining)"
        )


class CampaignRunner:
    """Executes the missing cells of a campaign spec against a store.

    Parameters
    ----------
    spec:
        The declarative grid to complete.
    store:
        The persistent store holding completed cells.
    workers:
        Deprecated — pass ``plan=ExecutionPlan(workers=...)``.
    trace_level:
        Per-trial trace retention.  Campaign cells persist only summary
        scalars, so the default is :attr:`TraceLevel.NONE` — memory stays
        flat no matter how large the grid is (workers reduce trials to those
        scalars before returning them).
    pool:
        Optional externally owned :class:`~repro.engine.pool.ExecutionPool`
        to share with other subsystems (e.g. one pool across several
        campaigns and a search); overrides the plan's worker count for
        dispatch.  The runner never shuts down a pool it was handed.
    pool_chunk:
        Deprecated — pass ``plan=ExecutionPlan(pool_chunk=...)``.
    batch:
        Deprecated — pass ``plan=ExecutionPlan(batch=True)``.
    plan:
        The :class:`~repro.engine.plan.ExecutionPlan` for the campaign.  A
        parallel plan makes the runner hold one persistent
        :class:`~repro.engine.pool.ExecutionPool` for its whole lifetime
        (all ``run`` invocations included) and batch every pending cell onto
        it with the plan's chunk size; a serial plan executes in-process.
        ``plan.batch`` routes batchable cells through the vectorized
        lockstep kernel with transparent scalar fallback.  No plan ever
        changes the stored rows — they are bit-identical on every path.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  A live handle
        gets campaign lifecycle events, per-cell
        :class:`~repro.telemetry.events.CellCommitted` events, cell-commit
        latency histograms, resume-skip counters, an end-of-run cells/second
        gauge, and — when the runner owns its pool — the pool's dispatch
        instrumentation too.  Telemetry never changes the stored rows:
        campaign stores are byte-identical with it on or off.

    Use as a context manager (or call :meth:`close`) to reclaim the runner's
    own workers deterministically.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: Optional[int] = None,
        trace_level: TraceLevel = TraceLevel.NONE,
        pool: Optional[ExecutionPool] = None,
        pool_chunk: Optional[int] = None,
        batch: bool = False,
        telemetry: Optional[Telemetry] = None,
        *,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        self._spec = spec
        self._store = store
        self._plan = resolve_plan(
            plan, api="CampaignRunner", workers=workers, pool_chunk=pool_chunk, batch=batch
        )
        self._trace_level = trace_level
        self._batch = self._plan.batch
        self._telemetry = as_telemetry(telemetry)
        self._owns_pool = pool is None and self._plan.parallel
        self._pool = self._plan.pool(telemetry=self._telemetry) if self._owns_pool else pool
        self._metric_cells = self._telemetry.counter(
            "campaign.cells_committed", help="cells executed and committed to the store"
        )
        self._metric_trials = self._telemetry.counter(
            "campaign.trials_recorded", help="trial rows committed across all cells"
        )
        self._metric_reused = self._telemetry.counter(
            "campaign.cells_reused", help="cells skipped on resume (already stored)"
        )
        self._metric_commit_latency = self._telemetry.histogram(
            "campaign.cell_commit_seconds",
            help="per-cell latency from execution start (or pool submission) to commit",
        )
        self._metric_rate = self._telemetry.gauge(
            "campaign.cells_per_second", help="executed cells per second, last run() invocation"
        )
        self._metric_total = self._telemetry.gauge(
            "campaign.cells_total",
            help="cells in the campaign grid (the live monitor's progress denominator)",
        )

    @property
    def spec(self) -> CampaignSpec:
        """The spec this runner completes."""
        return self._spec

    @property
    def plan(self) -> ExecutionPlan:
        """The resolved execution plan this runner follows."""
        return self._plan

    @property
    def pool(self) -> Optional[ExecutionPool]:
        """The execution pool batched runs dispatch on (None = serial)."""
        return self._pool

    def close(self) -> None:
        """Shut down the runner's own pool (a shared ``pool=`` is left alone)."""
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def pending_cells(self) -> list[CampaignCell]:
        """The spec's cells whose keys the store does not hold yet, in grid order."""
        completed = self._store.completed_keys()
        return [cell for cell in self._spec.cells() if cell.key not in completed]

    def status(self) -> CampaignProgress:
        """Current completion state without executing anything."""
        cells = self._spec.cells()
        completed = self._store.completed_keys()
        done = sum(1 for cell in cells if cell.key in completed)
        return CampaignProgress(
            total=len(cells),
            already_complete=done,
            executed=0,
            remaining=len(cells) - done,
        )

    def run(
        self,
        max_cells: Optional[int] = None,
        on_cell: Optional[Callable[[CampaignCell, CampaignProgress], None]] = None,
    ) -> CampaignProgress:
        """Execute the missing cells (up to ``max_cells``), checkpointing each.

        Parameters
        ----------
        max_cells:
            Optional cap on how many cells to execute in this invocation —
            the campaign can be completed incrementally across invocations.
        on_cell:
            Optional callback invoked after each cell commits, with the cell
            and the progress so far (used by the CLI for live status lines).
            On the pooled path cells commit as their futures complete, so the
            callback order may differ from grid order; the stored content
            never does.

        Returns
        -------
        CampaignProgress
            What happened: reused vs executed vs still remaining.
        """
        self._spec.validate_workloads()
        self._store.register_campaign(self._spec.name, self._spec.to_json())
        cells = self._spec.cells()
        pending = self.pending_cells()
        pending_keys = {cell.key for cell in pending}
        # Cells another campaign already completed are reused, but this
        # campaign must *claim* them so its own status/aggregates see them.
        self._store.add_cells_to_campaign(
            self._spec.name, [cell.key for cell in cells if cell.key not in pending_keys]
        )
        to_run = pending if max_cells is None else pending[:max_cells]
        reused = len(cells) - len(pending)
        self._metric_total.set(len(cells))
        self._metric_reused.inc(reused)
        started = time.perf_counter()
        if self._telemetry.enabled:
            logger.info(
                "campaign %s: %d cells total, %d pending, %d reused",
                self._spec.name, len(cells), len(pending), reused,
            )
            self._telemetry.emit(
                CampaignStarted(
                    campaign=self._spec.name,
                    total_cells=len(cells),
                    pending_cells=len(pending),
                    reused_cells=reused,
                    workers=self._pool.workers if self._pool is not None else 1,
                    batch=self._batch,
                )
            )

        def progress_after(executed: int) -> CampaignProgress:
            return CampaignProgress(
                total=len(cells),
                already_complete=len(cells) - len(pending),
                executed=executed,
                remaining=len(pending) - executed,
            )

        with self._telemetry.span("campaign.run", campaign=self._spec.name):
            if self._pool is not None and len(to_run) > 1:
                if payload_is_picklable(self._cell_template(to_run[0])):
                    executed = self._run_batched(to_run, progress_after, on_cell)
                else:
                    # An unpicklable grid (closure-built workload parts) cannot
                    # reach the workers.  Degrade to the fully serial path — one
                    # warning, and crucially still one atomic commit per cell as
                    # it finishes, so interrupt-resume keeps working — instead of
                    # letting the batched submission loop execute everything
                    # eagerly in-process with every commit deferred to the end.
                    warn_serial_fallback(stacklevel=2, telemetry=self._telemetry)
                    executed = self._run_serial(to_run, progress_after, on_cell, pool=None)
            else:
                executed = self._run_serial(to_run, progress_after, on_cell, pool=self._pool)

        seconds = time.perf_counter() - started
        rate = executed / seconds if seconds > 0 else 0.0
        self._metric_rate.set(rate)
        progress = progress_after(executed)
        if self._telemetry.enabled:
            self._telemetry.emit(
                CampaignCompleted(
                    campaign=self._spec.name,
                    executed=executed,
                    reused=reused,
                    remaining=progress.remaining,
                    seconds=seconds,
                    cells_per_second=rate,
                )
            )
        return progress

    # -- execution paths --------------------------------------------------

    def _cell_template(self, cell: CampaignCell):
        return replace(cell.config(), trace_level=self._trace_level)

    def _commit_cell(self, cell: CampaignCell, reduced: Sequence[ReducedTrial]) -> None:
        records = [TrialRecord.from_reduced(trial) for trial in reduced]
        self._store.record_cell(self._spec.name, cell.key, cell.describe_dict(), records)
        if self._telemetry.enabled and cell.faults is not None:
            # Reduced rows carry only the per-trial worst recovery, so the
            # event stream gets one FaultInjected per fault-injected trial
            # (round_index None) on both the serial and pooled paths.
            for trial in reduced:
                self._telemetry.emit(
                    FaultInjected(seed=trial.seed, recovery_rounds=trial.stabilization_rounds)
                )

    def _observe_commit(
        self, cell: CampaignCell, reduced: Sequence[ReducedTrial], seconds: float
    ) -> None:
        """Record one committed cell: counters, commit-latency histogram, event."""
        self._metric_cells.inc()
        self._metric_trials.inc(len(reduced))
        self._metric_commit_latency.observe(seconds)
        if self._telemetry.enabled:
            self._telemetry.emit(
                CellCommitted(
                    campaign=self._spec.name,
                    cell_key=cell.key,
                    trials=len(reduced),
                    seconds=seconds,
                )
            )

    def _run_serial(
        self,
        to_run: Sequence[CampaignCell],
        progress_after: Callable[[int], CampaignProgress],
        on_cell: Optional[Callable[[CampaignCell, CampaignProgress], None]],
        pool: Optional[ExecutionPool] = None,
    ) -> int:
        """One cell at a time, in grid order (also the single-cell pool path)."""
        executed = 0
        for cell in to_run:
            cell_started = time.perf_counter()
            with self._telemetry.span("campaign.cell", cell=cell.key):
                with self._telemetry.span("campaign.execute"):
                    reduced = run_reduced_trials(
                        self._cell_template(cell),
                        seeds=cell.seeds,
                        trace_level=None,
                        pool=pool,
                        plan=self._plan.serial(),
                    )
                with self._telemetry.span("campaign.commit"):
                    self._commit_cell(cell, reduced)
            self._observe_commit(cell, reduced, time.perf_counter() - cell_started)
            executed += 1
            if on_cell is not None:
                on_cell(cell, progress_after(executed))
        return executed

    def _run_batched(
        self,
        to_run: Sequence[CampaignCell],
        progress_after: Callable[[int], CampaignProgress],
        on_cell: Optional[Callable[[CampaignCell, CampaignProgress], None]],
    ) -> int:
        """Every cell's chunks on one pool; commit cells as they complete.

        All pending cells are submitted up front — with in-worker reduction a
        chunk's in-flight result is a handful of scalars, so the window costs
        O(cells) tiny futures, not O(trials) simulation results.  Chunks
        finish in whatever order the workers produce them, but cells *commit*
        in grid order (a cell commits the moment it and every cell before it
        are done): the store's atomic per-cell transactions, its documented
        insertion order, and the prefix an interrupt leaves behind are all
        exactly the serial path's, byte for byte.  A worker crash surfaces as
        :class:`~repro.engine.pool.WorkerCrashError` after the pool has reset
        itself, so re-running the campaign resumes cleanly on fresh workers.
        """
        assert self._pool is not None
        chunk_owner: dict[Future, tuple[int, int]] = {}
        outstanding: list[int] = []
        chunk_results: list[dict[int, list[ReducedTrial]]] = []
        submitted_at: list[float] = []
        with self._telemetry.span("campaign.dispatch", cells=len(to_run)):
            for cell_index, cell in enumerate(to_run):
                submitted_at.append(time.perf_counter())
                futures = self._pool.submit_seed_chunks(
                    self._cell_template(cell), cell.seeds, reduce=True, batch=self._batch
                )
                outstanding.append(len(futures))
                chunk_results.append({})
                for position, future in enumerate(futures):
                    chunk_owner[future] = (cell_index, position)

        executed = 0
        for future in as_completed(chunk_owner):
            cell_index, position = chunk_owner[future]
            try:
                # ingest() merges the chunk's worker stats delta into the
                # registry and hands back the plain reduced rows.
                chunk = self._pool.ingest(future.result())
            except BrokenProcessPool as error:
                raise self._pool.recover(error) from error
            chunk_results[cell_index][position] = chunk
            outstanding[cell_index] -= 1
            # Commit every ready cell at the head of the grid order.
            while executed < len(to_run) and outstanding[executed] == 0:
                by_position = chunk_results[executed]
                reduced = [
                    trial for pos in sorted(by_position) for trial in by_position[pos]
                ]
                cell = to_run[executed]
                with self._telemetry.span("campaign.commit", cell=cell.key):
                    self._commit_cell(cell, reduced)
                # Pooled cell latency: pool submission to atomic commit.
                self._observe_commit(
                    cell, reduced, time.perf_counter() - submitted_at[executed]
                )
                chunk_results[executed] = {}
                outstanding[executed] = -1  # committed
                executed += 1
                if on_cell is not None:
                    on_cell(cell, progress_after(executed))
        return executed
