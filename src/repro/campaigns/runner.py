"""The resumable campaign runner.

:class:`CampaignRunner` diffs a :class:`~repro.campaigns.spec.CampaignSpec`
against a :class:`~repro.campaigns.store.ResultStore` and executes only the
cells whose content-hashed keys are missing, checkpointing each completed
cell atomically.  Kill the process at any point and re-run: the campaign
resumes exactly where it stopped, and — because every execution derives all
randomness from its own seed — the resumed results are bit-identical to an
uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.campaigns.spec import CampaignCell, CampaignSpec
from repro.campaigns.store import ResultStore, TrialRecord
from repro.engine.observers import TraceLevel
from repro.engine.runner import run_trials


@dataclass(frozen=True)
class CampaignProgress:
    """The outcome of one :meth:`CampaignRunner.run` invocation.

    Attributes
    ----------
    total:
        Number of cells in the spec's grid.
    already_complete:
        Cells the store already held when the run started (skipped).
    executed:
        Cells this invocation ran and recorded.
    remaining:
        Cells still missing after this invocation (non-zero only when the run
        was capped with ``max_cells``).
    """

    total: int
    already_complete: int
    executed: int
    remaining: int

    @property
    def complete(self) -> bool:
        """True once the store holds every cell of the spec."""
        return self.remaining == 0

    def describe(self) -> str:
        """One-line progress summary for logs and the CLI."""
        done = self.already_complete + self.executed
        return (
            f"{done}/{self.total} cells complete "
            f"({self.executed} executed now, {self.already_complete} reused, "
            f"{self.remaining} remaining)"
        )


class CampaignRunner:
    """Executes the missing cells of a campaign spec against a store.

    Parameters
    ----------
    spec:
        The declarative grid to complete.
    store:
        The persistent store holding completed cells.
    workers:
        Worker processes per cell batch (forwarded to
        :func:`~repro.engine.runner.run_trials`; parallel batches are
        bit-identical to serial ones).
    trace_level:
        Per-trial trace retention.  Campaign cells persist only summary
        scalars, so the default is :attr:`TraceLevel.NONE` — memory stays
        flat no matter how large the grid is.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: Optional[int] = None,
        trace_level: TraceLevel = TraceLevel.NONE,
    ) -> None:
        self._spec = spec
        self._store = store
        self._workers = workers
        self._trace_level = trace_level

    @property
    def spec(self) -> CampaignSpec:
        """The spec this runner completes."""
        return self._spec

    def pending_cells(self) -> list[CampaignCell]:
        """The spec's cells whose keys the store does not hold yet, in grid order."""
        completed = self._store.completed_keys()
        return [cell for cell in self._spec.cells() if cell.key not in completed]

    def status(self) -> CampaignProgress:
        """Current completion state without executing anything."""
        cells = self._spec.cells()
        completed = self._store.completed_keys()
        done = sum(1 for cell in cells if cell.key in completed)
        return CampaignProgress(
            total=len(cells),
            already_complete=done,
            executed=0,
            remaining=len(cells) - done,
        )

    def run(
        self,
        max_cells: Optional[int] = None,
        on_cell: Optional[Callable[[CampaignCell, CampaignProgress], None]] = None,
    ) -> CampaignProgress:
        """Execute the missing cells (up to ``max_cells``), checkpointing each.

        Parameters
        ----------
        max_cells:
            Optional cap on how many cells to execute in this invocation —
            the campaign can be completed incrementally across invocations.
        on_cell:
            Optional callback invoked after each cell commits, with the cell
            and the progress so far (used by the CLI for live status lines).

        Returns
        -------
        CampaignProgress
            What happened: reused vs executed vs still remaining.
        """
        self._spec.validate_workloads()
        self._store.register_campaign(self._spec.name, self._spec.to_json())
        cells = self._spec.cells()
        pending = self.pending_cells()
        pending_keys = {cell.key for cell in pending}
        # Cells another campaign already completed are reused, but this
        # campaign must *claim* them so its own status/aggregates see them.
        self._store.add_cells_to_campaign(
            self._spec.name, [cell.key for cell in cells if cell.key not in pending_keys]
        )
        to_run = pending if max_cells is None else pending[:max_cells]

        executed = 0
        for cell in to_run:
            summary = run_trials(
                cell.config(),
                seeds=cell.seeds,
                workers=self._workers,
                trace_level=self._trace_level,
            )
            records = [
                TrialRecord.from_result(seed, result)
                for seed, result in zip(summary.seeds, summary.results)
            ]
            self._store.record_cell(self._spec.name, cell.key, cell.describe_dict(), records)
            executed += 1
            if on_cell is not None:
                progress = CampaignProgress(
                    total=len(cells),
                    already_complete=len(cells) - len(pending),
                    executed=executed,
                    remaining=len(pending) - executed,
                )
                on_cell(cell, progress)

        return CampaignProgress(
            total=len(cells),
            already_complete=len(cells) - len(pending),
            executed=executed,
            remaining=len(pending) - executed,
        )
