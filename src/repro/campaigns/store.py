"""The persistent, resumable campaign result store.

:class:`ResultStore` is an SQLite database holding one row per completed
*cell* (a simulation configuration) and one row per *trial* (a seed of that
cell).  Three properties make campaigns durable:

* **append-only** — trials are only ever inserted, never updated, so the
  store can be extended by later campaigns that share cells;
* **dedup by cell key** — a cell is identified by its content hash (see
  :mod:`repro.campaigns.spec`), so re-running a spec skips everything already
  recorded, no matter which process or machine recorded it;
* **atomic per-cell commits** — a cell's trials and its completion marker are
  written in one SQLite transaction, so a process killed mid-campaign leaves
  either a fully recorded cell or no trace of it, never a torn one.

The store is schema-versioned: opening a database written by an incompatible
layout raises instead of silently misreading it.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.engine.pool import ReducedTrial
from repro.engine.results import SimulationResult
from repro.exceptions import ConfigurationError, ExperimentError

#: Version of the on-disk layout.  Bump on any incompatible schema change.
#: (The additive ``bench_provenance`` table did not bump it: the table is
#: created on open when missing, and older builds simply ignore it.)
STORE_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    name      TEXT PRIMARY KEY,
    spec_json TEXT
);
CREATE TABLE IF NOT EXISTS cells (
    key       TEXT PRIMARY KEY,
    cell_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_cells (
    campaign  TEXT NOT NULL,
    cell_key  TEXT NOT NULL,
    PRIMARY KEY (campaign, cell_key)
);
CREATE TABLE IF NOT EXISTS trials (
    cell_key        TEXT    NOT NULL,
    seed            INTEGER NOT NULL,
    synchronized    INTEGER NOT NULL,
    agreement       INTEGER NOT NULL,
    safety          INTEGER NOT NULL,
    leader_count    INTEGER NOT NULL,
    max_sync_latency INTEGER,
    rounds_simulated INTEGER NOT NULL,
    stabilization_rounds INTEGER,
    PRIMARY KEY (cell_key, seed)
);
CREATE TABLE IF NOT EXISTS bench_provenance (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    rev          TEXT NOT NULL,
    scenario     TEXT NOT NULL,
    recorded_utc TEXT NOT NULL,
    payload_json TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class TrialRecord:
    """One execution's headline outcome, as persisted per (cell, seed).

    This is the subset of :class:`~repro.engine.results.SimulationResult` the
    aggregation layer needs; it is deliberately scalar so the store stays
    small even for six-figure campaigns.
    """

    seed: int
    synchronized: bool
    agreement: bool
    safety: bool
    leader_count: int
    max_sync_latency: Optional[int]
    rounds_simulated: int
    stabilization_rounds: Optional[int] = None

    @classmethod
    def from_result(cls, seed: int, result: SimulationResult) -> "TrialRecord":
        """Extract the persisted scalars from a simulation result."""
        return cls(
            seed=seed,
            synchronized=result.synchronized,
            agreement=result.agreement_holds,
            safety=result.report.all_safety_holds,
            leader_count=result.leader_count,
            max_sync_latency=result.max_sync_latency,
            rounds_simulated=result.metrics.rounds_simulated,
            stabilization_rounds=result.stabilization_rounds,
        )

    @classmethod
    def from_reduced(cls, reduced: ReducedTrial) -> "TrialRecord":
        """Adopt an in-worker-reduced trial (field-for-field identical).

        :class:`~repro.engine.pool.ReducedTrial` is the engine-layer mirror of
        this record — workers on an execution pool reduce each trial to one
        before it crosses the process boundary, so a pooled campaign persists
        exactly the rows a serial one extracts via :meth:`from_result`.
        """
        return cls(
            seed=reduced.seed,
            synchronized=reduced.synchronized,
            agreement=reduced.agreement,
            safety=reduced.safety,
            leader_count=reduced.leader_count,
            max_sync_latency=reduced.max_sync_latency,
            rounds_simulated=reduced.rounds_simulated,
            stabilization_rounds=reduced.stabilization_rounds,
        )


class ResultStore:
    """An SQLite-backed store of campaign cells and their trial outcomes.

    Parameters
    ----------
    path:
        Database file (created on first open); ``":memory:"`` works for tests.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = str(path)
        self._connection = sqlite3.connect(self._path)
        self._connection.execute("PRAGMA foreign_keys = ON")
        # Write-ahead logging turns the per-cell commits campaigns hammer the
        # store with into sequential appends (readers never block the writer),
        # and synchronous=NORMAL drops the per-commit fsync to one per WAL
        # checkpoint — safe here because every cell commit is atomic and a
        # torn tail is discarded on recovery, so an interrupted campaign
        # resumes bit-identically either way.  Filesystems that cannot take
        # WAL (read-only mounts, some network filesystems) refuse the pragma;
        # fall back to the default rollback journal silently.
        self._wal = False
        try:
            row = self._connection.execute("PRAGMA journal_mode=WAL").fetchone()
            self._wal = row is not None and str(row[0]).lower() == "wal"
        except sqlite3.OperationalError:  # pragma: no cover - fs-dependent
            self._wal = False
        if self._wal:
            self._connection.execute("PRAGMA synchronous=NORMAL")
        with self._connection:
            self._connection.executescript(_SCHEMA)
            # Additive migration (no schema-version bump, like bench_provenance):
            # databases written before fault injection lack the
            # stabilization_rounds column; their rows read back as NULL, which
            # is exactly what fault-free trials store anyway.
            columns = {
                row[1]
                for row in self._connection.execute("PRAGMA table_info(trials)").fetchall()
            }
            if "stabilization_rounds" not in columns:
                self._connection.execute(
                    "ALTER TABLE trials ADD COLUMN stabilization_rounds INTEGER"
                )
            row = self._connection.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row[0]) != STORE_SCHEMA_VERSION:
                raise ConfigurationError(
                    f"result store {self._path!r} has schema version {row[0]}, "
                    f"but this build reads version {STORE_SCHEMA_VERSION}"
                )

    # -- lifecycle -------------------------------------------------------

    @property
    def path(self) -> str:
        """The database location this store was opened on."""
        return self._path

    @property
    def wal_enabled(self) -> bool:
        """True when the store runs in write-ahead-logging mode."""
        return self._wal

    def flush(self) -> None:
        """Force everything committed so far onto stable storage.

        Commits any open transaction and, in WAL mode, checkpoints the whole
        log back into the main database file — after this returns, the rows
        survive a power cut and the database is readable by tools that do not
        speak WAL.  A no-op-safe call at any point; :meth:`close` (and the
        context-manager exit) invokes it, so a cleanly closed store is always
        durable.
        """
        self._connection.commit()
        if self._wal:
            try:
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.OperationalError:  # pragma: no cover - fs-dependent
                pass

    def close(self) -> None:
        """Flush and close the underlying connection (idempotent)."""
        try:
            self.flush()
        except sqlite3.ProgrammingError:
            return  # already closed
        self._connection.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- campaigns -------------------------------------------------------

    def register_campaign(self, name: str, spec_json: Optional[str] = None) -> None:
        """Record a campaign name (and its spec, when declarative).

        Re-registering the same name with the same spec is a no-op; with a
        *different* spec it raises — one name must always mean one grid, or
        resume semantics would silently change under the caller.
        """
        row = self._connection.execute(
            "SELECT spec_json FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is not None:
            if row[0] != spec_json:
                raise ExperimentError(
                    f"campaign {name!r} is already registered with a different spec; "
                    "use a new campaign name (or a new store) for a changed grid"
                )
            return
        with self._connection:
            self._connection.execute(
                "INSERT INTO campaigns (name, spec_json) VALUES (?, ?)", (name, spec_json)
            )

    def campaign_names(self) -> list[str]:
        """All registered campaign names, sorted."""
        rows = self._connection.execute("SELECT name FROM campaigns ORDER BY name").fetchall()
        return [row[0] for row in rows]

    def spec_json_for(self, name: str) -> Optional[str]:
        """The stored spec JSON for a campaign (None for store-backed sweeps)."""
        row = self._connection.execute(
            "SELECT spec_json FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise ExperimentError(f"no campaign {name!r} in store {self._path!r}")
        return row[0]

    # -- cells -----------------------------------------------------------

    def completed_keys(self, campaign: Optional[str] = None) -> set[str]:
        """Keys of every completed cell (optionally restricted to a campaign)."""
        if campaign is None:
            rows = self._connection.execute("SELECT key FROM cells").fetchall()
        else:
            rows = self._connection.execute(
                "SELECT cell_key FROM campaign_cells WHERE campaign = ?", (campaign,)
            ).fetchall()
        return {row[0] for row in rows}

    def has_cell(self, key: str) -> bool:
        """True if a completed cell with this key exists (under any campaign)."""
        row = self._connection.execute("SELECT 1 FROM cells WHERE key = ?", (key,)).fetchone()
        return row is not None

    def add_cells_to_campaign(self, campaign: str, keys: Sequence[str]) -> None:
        """Attribute already-completed cells to a campaign.

        Cell data is shared store-wide (the content hash is the identity);
        attribution is per campaign, so a campaign that *reuses* another's
        cells must claim them to see them in its own status and aggregates.
        Claiming is idempotent.
        """
        missing = [key for key in keys if not self.has_cell(key)]
        if missing:
            raise ExperimentError(
                f"cannot attribute unrecorded cells to campaign {campaign!r}: {missing}"
            )
        with self._connection:
            self._connection.executemany(
                "INSERT OR IGNORE INTO campaign_cells (campaign, cell_key) VALUES (?, ?)",
                [(campaign, key) for key in keys],
            )

    def record_cell(
        self,
        campaign: str,
        key: str,
        cell: Mapping[str, Any],
        records: Sequence[TrialRecord],
    ) -> bool:
        """Atomically record one completed cell, all its trials, and its
        attribution to ``campaign``.

        Returns ``False`` when the cell data was already present — the dedup
        path — in which case only the campaign attribution is (idempotently)
        added.  The dedup check and the insert are one ``INSERT OR IGNORE``
        inside one transaction, so two processes racing on the same cell
        cannot conflict: exactly one records the trials, the other just gains
        the attribution.  An interrupt can never leave a partially recorded
        cell.
        """
        if not records:
            raise ExperimentError(f"cell {key} has no trial records to store")
        with self._connection:
            cursor = self._connection.execute(
                "INSERT OR IGNORE INTO cells (key, cell_json) VALUES (?, ?)",
                (key, json.dumps(dict(cell), sort_keys=True)),
            )
            inserted = cursor.rowcount == 1
            if inserted:
                self._insert_trials(key, records)
            self._connection.execute(
                "INSERT OR IGNORE INTO campaign_cells (campaign, cell_key) VALUES (?, ?)",
                (campaign, key),
            )
        return inserted

    def _insert_trials(self, key: str, records: Sequence[TrialRecord]) -> None:
        self._connection.executemany(
                "INSERT INTO trials (cell_key, seed, synchronized, agreement, safety,"
                " leader_count, max_sync_latency, rounds_simulated, stabilization_rounds)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        key,
                        record.seed,
                        int(record.synchronized),
                        int(record.agreement),
                        int(record.safety),
                        record.leader_count,
                        record.max_sync_latency,
                        record.rounds_simulated,
                        record.stabilization_rounds,
                    )
                    for record in records
                ],
            )

    def cell_description(self, key: str) -> dict[str, Any]:
        """The canonical description a cell was recorded under."""
        row = self._connection.execute(
            "SELECT cell_json FROM cells WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise ExperimentError(f"no cell {key!r} in store {self._path!r}")
        return json.loads(row[0])

    def trial_records(self, key: str) -> tuple[TrialRecord, ...]:
        """The stored trials of one cell, in seed order."""
        rows = self._connection.execute(
            "SELECT seed, synchronized, agreement, safety, leader_count,"
            " max_sync_latency, rounds_simulated, stabilization_rounds FROM trials"
            " WHERE cell_key = ? ORDER BY seed",
            (key,),
        ).fetchall()
        return tuple(
            TrialRecord(
                seed=row[0],
                synchronized=bool(row[1]),
                agreement=bool(row[2]),
                safety=bool(row[3]),
                leader_count=row[4],
                max_sync_latency=row[5],
                rounds_simulated=row[6],
                stabilization_rounds=row[7],
            )
            for row in rows
        )

    def iter_cells(
        self, campaign: Optional[str] = None
    ) -> Iterator[tuple[str, dict[str, Any], tuple[TrialRecord, ...]]]:
        """Yield ``(key, description, trials)`` for every completed cell.

        Cells come back in insertion order, which for a campaign run matches
        the spec's deterministic expansion order.
        """
        if campaign is None:
            rows = self._connection.execute(
                "SELECT key, cell_json FROM cells ORDER BY rowid"
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT cells.key, cells.cell_json FROM campaign_cells"
                " JOIN cells ON cells.key = campaign_cells.cell_key"
                " WHERE campaign_cells.campaign = ? ORDER BY cells.rowid",
                (campaign,),
            ).fetchall()
        for key, cell_json in rows:
            yield key, json.loads(cell_json), self.trial_records(key)

    def cell_count(self, campaign: Optional[str] = None) -> int:
        """Number of completed cells (optionally restricted to a campaign)."""
        return len(self.completed_keys(campaign))

    # -- bench provenance ------------------------------------------------

    def record_bench_provenance(
        self,
        rev: str,
        scenario: str,
        payload: Mapping[str, Any],
        recorded_utc: Optional[str] = None,
    ) -> None:
        """Append one benchmark-provenance row.

        A provenance row ties results in this store (or alongside it) to the
        ``repro bench`` run that produced or accompanied them: the repository
        revision, the scenario name, and the scenario's measurement payload.
        Rows are append-only, like trials.
        """
        if recorded_utc is None:
            recorded_utc = datetime.now(timezone.utc).isoformat()
        with self._connection:
            self._connection.execute(
                "INSERT INTO bench_provenance (rev, scenario, recorded_utc, payload_json)"
                " VALUES (?, ?, ?, ?)",
                (rev, scenario, recorded_utc, json.dumps(dict(payload), sort_keys=True)),
            )

    def bench_provenance(self) -> list[dict[str, Any]]:
        """Every recorded bench-provenance row, oldest first."""
        rows = self._connection.execute(
            "SELECT rev, scenario, recorded_utc, payload_json FROM bench_provenance"
            " ORDER BY id"
        ).fetchall()
        return [
            {
                "rev": row[0],
                "scenario": row[1],
                "recorded_utc": row[2],
                "payload": json.loads(row[3]),
            }
            for row in rows
        ]
