"""Declarative campaign specifications.

A *campaign* is a grid of simulation cells — protocol × workload ×
:class:`~repro.params.ModelParameters` × node count — each run across a fixed
seed range.  :class:`CampaignSpec` describes the grid declaratively (names and
numbers only, no live objects), so it can be serialized into the result store
and re-expanded later to decide which cells are still missing.

Every expanded :class:`CampaignCell` carries a *stable content-hashed key*:
the SHA-256 of the cell's canonical JSON description.  Two cells with the same
protocol, workload, parameters, seeds, and round cap have the same key in any
process on any machine, which is what makes the store's dedup and the
runner's resume logic exact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.adversary.registry import resolve as resolve_adversary
from repro.engine.simulator import SimulationConfig
from repro.exceptions import ConfigurationError
from repro.experiments.workloads import SIMPLE_WORKLOADS, Workload
from repro.faults.plan import FaultPlan
from repro.params import ModelParameters
from repro.protocols.registry import PROTOCOL_FACTORIES, protocol_factory

#: Version of the cell-description layout.  Bumping it changes every cell key,
#: forcing recomputation — do so whenever the meaning of a description field
#: changes.
SPEC_SCHEMA_VERSION = 1

#: Workloads a campaign can name: the shared simple workloads plus anything a
#: caller registers (benchmarks register their bespoke scenarios here).  The
#: workload *name* is part of the cell identity, so a name must always mean
#: the same scenario — re-registering a name overwrites the old binding and is
#: only safe while no store holds results recorded under it.
CAMPAIGN_WORKLOADS: dict[str, Callable[[int], Workload]] = dict(SIMPLE_WORKLOADS)


def register_workload(name: str, factory: Callable[[int], Workload]) -> None:
    """Register (or overwrite) a named workload for campaign use."""
    CAMPAIGN_WORKLOADS[name] = factory


def workload_with_adversary(base: str, adversary_name: str) -> str:
    """Register and return the derived workload ``"{base}@{adversary}"``.

    The derived workload keeps ``base``'s activation pattern but swaps its
    interference for the named adversary from the shared
    :mod:`adversary registry <repro.adversary.registry>`.  The mapping from
    derived name to behaviour is deterministic, so the name is safe to use in
    content-hashed cell keys: any process that re-derives it (e.g. a resumed
    ``campaign run --jammers`` invocation) re-registers the same scenario.
    Registration is idempotent.
    """
    if base not in CAMPAIGN_WORKLOADS:
        known = ", ".join(sorted(CAMPAIGN_WORKLOADS))
        raise ConfigurationError(f"unknown workload {base!r}; known: {known}")
    adversary = resolve_adversary(adversary_name)  # fail fast on unknown names
    name = f"{base}@{adversary_name}"

    def factory(node_count: int) -> Workload:
        base_workload = CAMPAIGN_WORKLOADS[base](node_count)
        return dataclasses.replace(
            base_workload,
            name=name,
            adversary=resolve_adversary(adversary_name),
            description=f"{base_workload.description}; adversary overridden: {adversary.describe()}",
        )

    register_workload(name, factory)
    return name


def resolve_workload(name: str, node_count: int) -> Workload:
    """Build the named workload for ``node_count`` nodes."""
    try:
        factory = CAMPAIGN_WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGN_WORKLOADS))
        raise ConfigurationError(f"unknown workload {name!r}; known: {known}") from None
    return factory(node_count)


def cell_key(description: Mapping[str, Any]) -> str:
    """The stable content hash of a canonical cell description.

    The description must be JSON-serializable; key order does not matter
    (``sort_keys`` canonicalizes it).  The first 16 hex digits of the SHA-256
    are plenty for dedup and keep the keys readable in tables.
    """
    canonical = json.dumps(description, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CampaignCell:
    """One fully resolved point of a campaign grid.

    Attributes
    ----------
    protocol:
        Registered protocol name (see :data:`~repro.protocols.registry.PROTOCOL_FACTORIES`).
    workload:
        Registered workload name (see :data:`CAMPAIGN_WORKLOADS`).
    params:
        The model parameters ``(F, t, N)``.
    node_count:
        How many devices the workload activates.
    seeds:
        The explicit seed list the cell runs.
    max_rounds:
        Per-execution round cap.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        trial of the cell.  Part of the cell identity when set; ``None``
        (the default) leaves the description — and therefore every existing
        cell key — unchanged.
    """

    protocol: str
    workload: str
    params: ModelParameters
    node_count: int
    seeds: tuple[int, ...]
    max_rounds: int
    faults: FaultPlan | None = None

    def describe_dict(self) -> dict[str, Any]:
        """The canonical JSON-serializable description the key is hashed from."""
        description: dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "protocol": self.protocol,
            "workload": self.workload,
            "frequencies": self.params.frequencies,
            "budget": self.params.disruption_budget,
            "participants": self.params.participant_bound,
            "node_count": self.node_count,
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
        }
        if self.faults is not None:
            description["faults"] = self.faults.to_dict()
        return description

    @property
    def key(self) -> str:
        """The stable content-hashed identity of this cell."""
        return cell_key(self.describe_dict())

    def label(self) -> str:
        """Short human-readable label used in status output."""
        label = (
            f"{self.protocol} × {self.workload} × {self.params.describe()}, "
            f"n={self.node_count}, {len(self.seeds)} seeds"
        )
        if self.faults is not None:
            label += f", {self.faults.describe()}"
        return label

    def config(self) -> SimulationConfig:
        """Resolve the cell into a runnable simulation configuration."""
        workload = resolve_workload(self.workload, self.node_count)
        return SimulationConfig(
            params=self.params,
            protocol_factory=protocol_factory(self.protocol),
            activation=workload.activation,
            adversary=workload.adversary,
            max_rounds=self.max_rounds,
            faults=self.faults,
        )


def _as_tuple(value: Sequence[int] | int) -> tuple[int, ...]:
    return (value,) if isinstance(value, int) else tuple(value)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep grid: protocols × workloads × (F, t, N) × node counts.

    Attributes
    ----------
    name:
        The campaign's name (the store groups cells under it).
    protocols:
        Registered protocol names.
    workloads:
        Registered workload names.
    frequencies, budgets, participants:
        The ``F``, ``t``, and ``N`` axes; every combination must satisfy the
        model constraints (``t < F``, ``N ≥ 2``).
    node_counts:
        How many devices to activate (must not exceed any swept ``N``).
    seeds:
        Either a count ``k`` (seeds ``0 .. k−1``) or an explicit seed list,
        applied to every cell.
    max_rounds:
        Per-execution round cap for every cell.
    fault_plans:
        The fault-injection axis: each entry is a
        :class:`~repro.faults.plan.FaultPlan` or ``None`` (fault-free).  The
        default single-``None`` axis reproduces the historical grid exactly
        (cell keys and the serialized spec are unchanged).  A single plan may
        be passed bare and is wrapped into a one-entry axis.
    """

    name: str
    protocols: tuple[str, ...]
    workloads: tuple[str, ...]
    frequencies: tuple[int, ...]
    budgets: tuple[int, ...]
    participants: tuple[int, ...]
    node_counts: tuple[int, ...]
    seeds: tuple[int, ...] = field(default=(0, 1, 2))
    max_rounds: int = 50_000
    fault_plans: tuple[FaultPlan | None, ...] = (None,)

    def __post_init__(self) -> None:
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "frequencies", _as_tuple(self.frequencies))
        object.__setattr__(self, "budgets", _as_tuple(self.budgets))
        object.__setattr__(self, "participants", _as_tuple(self.participants))
        object.__setattr__(self, "node_counts", _as_tuple(self.node_counts))
        seeds = self.seeds
        object.__setattr__(
            self, "seeds", tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
        )
        fault_plans = self.fault_plans
        if fault_plans is None or isinstance(fault_plans, FaultPlan):
            fault_plans = (fault_plans,)
        object.__setattr__(self, "fault_plans", tuple(fault_plans))
        for plan in self.fault_plans:
            if plan is not None and not isinstance(plan, FaultPlan):
                raise ConfigurationError(
                    f"fault_plans entries must be FaultPlan or None, got {type(plan).__name__}"
                )
        if not self.name:
            raise ConfigurationError("a campaign needs a non-empty name")
        for axis, values in (
            ("protocols", self.protocols),
            ("workloads", self.workloads),
            ("frequencies", self.frequencies),
            ("budgets", self.budgets),
            ("participants", self.participants),
            ("node_counts", self.node_counts),
            ("seeds", self.seeds),
            ("fault_plans", self.fault_plans),
        ):
            if not values:
                raise ConfigurationError(f"campaign axis {axis!r} must not be empty")
        for protocol in self.protocols:
            if protocol not in PROTOCOL_FACTORIES:
                known = ", ".join(sorted(PROTOCOL_FACTORIES))
                raise ConfigurationError(f"unknown protocol {protocol!r}; known: {known}")
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be positive, got {self.max_rounds}")

    def validate_workloads(self) -> None:
        """Check every workload name against the registry, failing fast.

        Called by the runner before executing anything, so a typo surfaces
        immediately instead of after hours of compute.  It is *not* part of
        ``__post_init__`` because a spec loaded back from a store (e.g. for
        ``campaign status``) may reference bespoke workloads the current
        process never registered — status and diffing only need names.
        """
        unknown = [name for name in self.workloads if name not in CAMPAIGN_WORKLOADS]
        if unknown:
            known = ", ".join(sorted(CAMPAIGN_WORKLOADS))
            raise ConfigurationError(
                f"campaign {self.name!r} names unregistered workloads {unknown}; known: {known}"
            )

    def cells(self) -> tuple[CampaignCell, ...]:
        """Expand the grid into cells, in deterministic axis order.

        Invalid parameter combinations (``t ≥ F``, ``node_count > N``) raise
        :class:`~repro.exceptions.ConfigurationError` — a spec is expected to
        name only runnable cells.
        """
        expanded = []
        for protocol, workload, f, t, n, node_count, faults in itertools.product(
            self.protocols,
            self.workloads,
            self.frequencies,
            self.budgets,
            self.participants,
            self.node_counts,
            self.fault_plans,
        ):
            params = ModelParameters(
                frequencies=f, disruption_budget=t, participant_bound=n
            )
            if node_count > n:
                raise ConfigurationError(
                    f"campaign {self.name!r} activates {node_count} nodes "
                    f"but sweeps a participant bound of only N={n}"
                )
            expanded.append(
                CampaignCell(
                    protocol=protocol,
                    workload=workload,
                    params=params,
                    node_count=node_count,
                    seeds=self.seeds,
                    max_rounds=self.max_rounds,
                    faults=faults,
                )
            )
        return tuple(expanded)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable description of the grid.

        The ``fault_plans`` key appears only for a non-default axis, so specs
        persisted by earlier releases round-trip byte-identically.
        """
        data: dict[str, Any] = {
            "schema": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "protocols": list(self.protocols),
            "workloads": list(self.workloads),
            "frequencies": list(self.frequencies),
            "budgets": list(self.budgets),
            "participants": list(self.participants),
            "node_counts": list(self.node_counts),
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
        }
        if self.fault_plans != (None,):
            data["fault_plans"] = [
                plan.to_dict() if plan is not None else None for plan in self.fault_plans
            ]
        return data

    def to_json(self) -> str:
        """Canonical JSON form (stable across processes, used by the store)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        schema = data.get("schema", SPEC_SCHEMA_VERSION)
        if schema != SPEC_SCHEMA_VERSION:
            raise ConfigurationError(
                f"campaign spec schema {schema} is not supported "
                f"(this build writes schema {SPEC_SCHEMA_VERSION})"
            )
        fault_plans = tuple(
            FaultPlan.from_dict(entry) if entry is not None else None
            for entry in data.get("fault_plans", [None])
        )
        return cls(
            name=data["name"],
            protocols=tuple(data["protocols"]),
            workloads=tuple(data["workloads"]),
            frequencies=tuple(data["frequencies"]),
            budgets=tuple(data["budgets"]),
            participants=tuple(data["participants"]),
            node_counts=tuple(data["node_counts"]),
            seeds=tuple(data["seeds"]),
            max_rounds=data["max_rounds"],
            fault_plans=fault_plans,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
