"""Aggregation and querying over a campaign result store.

The store keeps raw per-trial scalars; this module turns them back into the
statistics the experiment layer speaks — success (liveness) rates, agreement,
round counts, interpolated latency percentiles — either per cell
(:class:`StoredSummary`, a drop-in statistical twin of
:class:`~repro.engine.runner.TrialSummary`) or grouped over any subset of the
grid dimensions (:func:`aggregate`), in row-dict form that feeds
:func:`repro.experiments.tables.render_table` and
:func:`repro.experiments.figures.render_bars` directly.
"""

from __future__ import annotations

import functools
import json
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.campaigns.store import ResultStore, TrialRecord
from repro.engine.runner import interpolated_percentile
from repro.exceptions import ExperimentError

#: The grid dimensions :func:`aggregate` can group by (all are recorded in
#: every cell description).
GROUPABLE_DIMENSIONS = (
    "protocol",
    "workload",
    "frequencies",
    "budget",
    "participants",
    "node_count",
    "max_rounds",
)


@dataclass(frozen=True)
class StoredSummary:
    """Trial statistics recomputed from persisted records.

    Mirrors the statistical surface of
    :class:`~repro.engine.runner.TrialSummary` exactly — same formulas, same
    interpolation convention — so a benchmark reading through the store gets
    bit-identical numbers to one calling
    :func:`~repro.engine.runner.run_trials` directly.
    """

    records: tuple[TrialRecord, ...]

    @property
    def trials(self) -> int:
        """Number of persisted executions."""
        return len(self.records)

    @property
    def seeds(self) -> tuple[int, ...]:
        """The seeds the records were run with, in record order."""
        return tuple(record.seed for record in self.records)

    @property
    def liveness_rate(self) -> float:
        """Fraction of executions in which every node synchronized."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.synchronized) / len(self.records)

    @property
    def agreement_rate(self) -> float:
        """Fraction of executions with no agreement violation."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.agreement) / len(self.records)

    @property
    def safety_rate(self) -> float:
        """Fraction of executions with no safety violation of any kind."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.safety) / len(self.records)

    @property
    def unique_leader_rate(self) -> float:
        """Fraction of executions that elected at most one leader."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.leader_count <= 1) / len(self.records)

    def latencies(self) -> list[int]:
        """Max activation-to-sync latencies of the executions that synchronized."""
        return [r.max_sync_latency for r in self.records if r.max_sync_latency is not None]

    @functools.cached_property
    def sorted_latencies(self) -> tuple[int, ...]:
        """The latency sample in ascending order, computed once per summary
        (mirrors :attr:`TrialSummary.sorted_latencies`)."""
        return tuple(sorted(self.latencies()))

    @property
    def mean_latency(self) -> float | None:
        """Mean of the per-execution worst-case latencies (synchronized runs only)."""
        latencies = self.sorted_latencies
        return statistics.fmean(latencies) if latencies else None

    @property
    def median_latency(self) -> float | None:
        """Median of the per-execution worst-case latencies."""
        latencies = self.sorted_latencies
        return float(statistics.median(latencies)) if latencies else None

    @property
    def max_latency(self) -> int | None:
        """Worst latency observed across the whole batch."""
        latencies = self.sorted_latencies
        return latencies[-1] if latencies else None

    @property
    def mean_rounds(self) -> float | None:
        """Mean number of simulated rounds per execution."""
        if not self.records:
            return None
        return statistics.fmean(r.rounds_simulated for r in self.records)

    def percentile_latency(self, fraction: float) -> float | None:
        """An interpolated empirical latency percentile (``fraction`` in ``[0, 1]``)."""
        return interpolated_percentile(self.sorted_latencies, fraction, assume_sorted=True)

    def stabilization_rounds(self) -> list[int]:
        """Per-trial worst rounds-to-reconverge (fault-injected trials only).

        Mirrors :meth:`TrialSummary.stabilization_rounds`; empty for
        fault-free cells, whose stored column is NULL.
        """
        return [
            r.stabilization_rounds
            for r in self.records
            if r.stabilization_rounds is not None
        ]

    @property
    def max_stabilization_rounds(self) -> int | None:
        """Worst rounds-to-reconverge across the cell (``None`` fault-free)."""
        rounds = self.stabilization_rounds()
        return max(rounds) if rounds else None

    @property
    def mean_stabilization_rounds(self) -> float | None:
        """Mean per-trial worst rounds-to-reconverge (``None`` fault-free)."""
        rounds = self.stabilization_rounds()
        return statistics.fmean(rounds) if rounds else None

    def describe(self) -> str:
        """One-line summary matching :meth:`TrialSummary.describe`."""
        mean = f"{self.mean_latency:.1f}" if self.mean_latency is not None else "-"
        worst = self.max_latency if self.max_latency is not None else "-"
        line = (
            f"{self.trials} trials: liveness {self.liveness_rate:.0%}, "
            f"agreement {self.agreement_rate:.0%}, mean latency {mean}, worst {worst}"
        )
        stabilization = self.max_stabilization_rounds
        if stabilization is not None:
            line += f", stabilization {stabilization}"
        return line


def summary_for_cell(store: ResultStore, key: str) -> StoredSummary:
    """The stored statistics of one completed cell."""
    records = store.trial_records(key)
    if not records:
        raise ExperimentError(f"cell {key!r} has no stored trials")
    return StoredSummary(records=records)


def _statistics_row(summary: StoredSummary) -> dict[str, Any]:
    row = {
        "trials": summary.trials,
        "liveness": summary.liveness_rate,
        "agreement": summary.agreement_rate,
        "unique_leader": summary.unique_leader_rate,
        "mean_latency": summary.mean_latency,
        "median_latency": summary.median_latency,
        "p90_latency": summary.percentile_latency(0.9),
        "max_latency": summary.max_latency,
        "mean_rounds": summary.mean_rounds,
    }
    # Stabilization columns appear only when the group holds fault-injected
    # trials, keeping fault-free tables and exports unchanged.
    if summary.max_stabilization_rounds is not None:
        row["max_stabilization_rounds"] = summary.max_stabilization_rounds
        row["mean_stabilization_rounds"] = summary.mean_stabilization_rounds
    return row


def cell_rows(store: ResultStore, campaign: Optional[str] = None) -> list[dict[str, Any]]:
    """One table row per completed cell: grid coordinates plus statistics."""
    rows = []
    for key, description, records in store.iter_cells(campaign):
        row: dict[str, Any] = {"cell": key}
        for dimension in GROUPABLE_DIMENSIONS:
            if dimension in description:
                row[dimension] = description[dimension]
        row.update(_statistics_row(StoredSummary(records=records)))
        rows.append(row)
    return rows


def aggregate(
    store: ResultStore,
    campaign: Optional[str] = None,
    group_by: Sequence[str] = ("protocol", "workload"),
) -> list[dict[str, Any]]:
    """Group completed cells and pool their trials into one row per group.

    Parameters
    ----------
    store:
        The result store to read.
    campaign:
        Restrict to one campaign's cells (default: the whole store).
    group_by:
        The grid dimensions to group by, in column order; must be a subset of
        :data:`GROUPABLE_DIMENSIONS`.  Cells recorded without one of the
        requested dimensions (e.g. harness sweeps with free-form
        descriptions) group under ``None`` for that dimension.

    Returns
    -------
    list[dict]
        One row per distinct group, in first-seen order, ready for
        :func:`~repro.experiments.tables.render_table`.
    """
    for dimension in group_by:
        if dimension not in GROUPABLE_DIMENSIONS:
            raise ExperimentError(
                f"cannot group by {dimension!r}; groupable: {', '.join(GROUPABLE_DIMENSIONS)}"
            )
    groups: dict[tuple, list[TrialRecord]] = {}
    for _key, description, records in store.iter_cells(campaign):
        group = tuple(description.get(dimension) for dimension in group_by)
        groups.setdefault(group, []).extend(records)
    if not groups:
        raise ExperimentError(
            f"store {store.path!r} has no completed cells"
            + (f" for campaign {campaign!r}" if campaign else "")
        )
    rows = []
    for group, pooled in groups.items():
        row: dict[str, Any] = dict(zip(group_by, group))
        row.update(_statistics_row(StoredSummary(records=tuple(pooled))))
        rows.append(row)
    return rows


def export_campaign(
    store: ResultStore,
    campaign: str,
    path: str | Path,
    group_by: Sequence[str] = ("protocol", "workload"),
) -> Path:
    """Write a campaign's cells and grouped aggregates as one JSON document."""
    spec_json = store.spec_json_for(campaign)
    document = {
        "campaign": campaign,
        "spec": json.loads(spec_json) if spec_json else None,
        "cells": cell_rows(store, campaign),
        "aggregates": aggregate(store, campaign, group_by=group_by),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    return target
