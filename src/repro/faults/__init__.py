"""Fault injection: churn, Byzantine nodes, transient corruption.

Public surface of the fault subsystem:

* :class:`FaultPlan` / :class:`ChurnEvent` / :class:`CorruptionEvent` — the
  declarative, schema-versioned, content-hashed plan documents;
* :func:`load_fault_plan` — the CLI ``--faults PLAN.json`` loader;
* :class:`FaultInjector` — per-execution deterministic realization;
* :class:`StabilizationTracker` / :class:`StabilizationReport` — the
  rounds-to-reconverge measurement attached to fault-injected results.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_SCHEMA_VERSION,
    ChurnEvent,
    CorruptionEvent,
    FaultPlan,
    load_fault_plan,
)
from repro.faults.stabilization import StabilizationReport, StabilizationTracker

__all__ = [
    "FAULT_SCHEMA_VERSION",
    "ChurnEvent",
    "CorruptionEvent",
    "FaultInjector",
    "FaultPlan",
    "StabilizationReport",
    "StabilizationTracker",
    "load_fault_plan",
]
