"""Deterministic realization of a :class:`~repro.faults.plan.FaultPlan`.

The :class:`FaultInjector` turns a declarative plan into concrete per-round
decisions for one execution: which nodes are Byzantine (drawn from the
trial's ``("fault", "byzantine")`` stream), what a Byzantine node transmits
each round, and which churn/corruption events apply at each round start.

All randomness flows through the simulation's :class:`~repro.engine.rng.
RandomStreams` under ``("fault", ...)`` labels, so fault-free draws (node,
adversary, activation streams) are untouched and every fault decision is a
pure function of ``(master seed, plan)`` — the property the pooled/serial/
resume byte-identity guarantees rest on.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.faults.plan import FaultPlan
from repro.params import ModelParameters
from repro.radio.actions import RadioAction, broadcast
from repro.radio.messages import LeaderMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.rng import RandomStreams

#: Forged round numbers are drawn below this bound — large enough to be far
#: from any honest value, small enough to keep outputs readable in traces.
FORGED_ROUND_BOUND = 1 << 16


class FaultInjector:
    """Per-execution fault decisions derived from one plan and one seed.

    Parameters
    ----------
    plan:
        The declarative fault plan.
    streams:
        The execution's :class:`~repro.engine.rng.RandomStreams`.
    node_count:
        The activation schedule's total node population ``n``.  Byzantine
        membership is sampled from ``range(n)``; churn/corruption events
        naming nodes outside the population are ignored (documented —
        this keeps one plan sweepable across a ``node_counts`` axis).
    params:
        Model parameters (``F`` bounds forged frequencies, ``N`` forged uids).
    """

    def __init__(
        self,
        plan: FaultPlan,
        streams: "RandomStreams",
        node_count: int,
        params: ModelParameters,
    ) -> None:
        self._plan = plan
        self._streams = streams
        self._params = params
        self._node_count = node_count

        count = min(plan.byzantine_count, node_count)
        if count:
            rng = streams.stream("fault", "byzantine")
            self.byzantine_nodes: frozenset[int] = frozenset(
                rng.sample(range(node_count), count)
            )
        else:
            self.byzantine_nodes = frozenset()
        self.byzantine_start_round = plan.byzantine_start_round
        self._byzantine_rngs = {
            node_id: streams.stream("fault", "byzantine", node_id)
            for node_id in sorted(self.byzantine_nodes)
        }

        self._leaves: dict[int, tuple[int, ...]] = {}
        self._rejoins: dict[int, tuple[int, ...]] = {}
        for event in plan.churn:
            if event.node_id >= node_count:
                continue
            self._leaves.setdefault(event.leave_round, ())
            self._leaves[event.leave_round] += (event.node_id,)
            if event.rejoin_round is not None:
                self._rejoins.setdefault(event.rejoin_round, ())
                self._rejoins[event.rejoin_round] += (event.node_id,)
        self._corruptions: dict[int, tuple[int, ...]] = {}
        for event in plan.corruption:
            targets = tuple(n for n in event.node_ids if n < node_count)
            if not targets:
                continue
            self._corruptions.setdefault(event.round_index, ())
            self._corruptions[event.round_index] += targets

        self.last_fault_round = plan.last_fault_round()

    # -- membership ------------------------------------------------------

    def byzantine_active(self, global_round: int) -> bool:
        """True once the Byzantine nodes (if any) have started forging."""
        return bool(self.byzantine_nodes) and global_round >= self.byzantine_start_round

    def byzantine_starts_at(self, global_round: int) -> bool:
        """True exactly at the round the Byzantine behaviour switches on."""
        return bool(self.byzantine_nodes) and global_round == self.byzantine_start_round

    # -- schedule queries (round starts) ---------------------------------

    def leaves_at(self, global_round: int) -> tuple[int, ...]:
        """Node ids scheduled to depart at the start of ``global_round``."""
        return self._leaves.get(global_round, ())

    def rejoins_at(self, global_round: int) -> tuple[int, ...]:
        """Node ids scheduled to rejoin at the start of ``global_round``."""
        return self._rejoins.get(global_round, ())

    def corruptions_at(self, global_round: int) -> tuple[int, ...]:
        """Node ids scheduled for state corruption at the start of ``global_round``."""
        return self._corruptions.get(global_round, ())

    # -- fault materialization -------------------------------------------

    def byzantine_action(self, node_id: int) -> RadioAction:
        """The forged transmission a Byzantine node makes this round.

        A fresh :class:`~repro.radio.messages.LeaderMessage` with a random
        (uid, round number) pair on a random frequency — the strongest forgery
        in this message vocabulary, since receivers adopt a leader's round
        number immediately.
        """
        rng = self._byzantine_rngs[node_id]
        frequency = rng.randrange(1, self._params.frequencies + 1)
        message = LeaderMessage(
            leader_uid=rng.randrange(1, self._params.participant_bound + 1),
            round_number=rng.randrange(1, FORGED_ROUND_BOUND),
        )
        return broadcast(frequency, message)

    def rejoin_stream(self, node_id: int, global_round: int) -> random.Random:
        """The private stream a rejoining node's fresh protocol runs on."""
        return self._streams.stream("fault", "rejoin", node_id, global_round)

    def corruption_stream(self, node_id: int, global_round: int) -> random.Random:
        """The per-(trial, node, round) stream arbitrary state is drawn from."""
        return self._streams.stream("fault", "corrupt", node_id, global_round)
