"""Stabilization measurement: rounds-to-reconverge after fault injections.

The snap-stabilization literature asks how long a protocol needs to return to
a legitimate configuration after its state is perturbed.  For the wireless
synchronization problem the legitimate configuration is *converged output
agreement*: every present honest node emits a non-⊥ round number and all of
them agree.

:class:`StabilizationTracker` is fed by the simulator's fault-aware round
loop: each round in which at least one injection applied opens an *epoch*,
and each subsequent round reports whether the present honest nodes are
converged.  The per-epoch recovery time is the number of rounds from the
injection until the first converged round end (0 = the system was already
converged again at the end of the injection round itself).  Epochs that never
reconverge before the run ends are charged ``rounds_simulated - epoch + 1`` —
strictly greater than any in-run recovery value, so "never recovered" always
dominates "recovered late" in aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional


@dataclass(frozen=True, slots=True)
class StabilizationReport:
    """Per-execution stabilization measurements.

    Attributes
    ----------
    epochs:
        The global rounds at which injections applied, in order (a round with
        several simultaneous injections is one epoch).
    recovery_rounds:
        For each epoch, rounds until the present honest nodes reconverged
        (see module docstring for the never-reconverged charge).
    reconverged:
        True when every epoch reconverged before the run ended.
    """

    epochs: tuple[int, ...] = ()
    recovery_rounds: tuple[int, ...] = ()
    reconverged: bool = True

    @property
    def max_recovery_rounds(self) -> Optional[int]:
        """The worst per-epoch recovery time (``None`` when nothing fired)."""
        return max(self.recovery_rounds) if self.recovery_rounds else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "epochs": list(self.epochs),
            "recovery_rounds": list(self.recovery_rounds),
            "reconverged": self.reconverged,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "StabilizationReport":
        return cls(
            epochs=tuple(int(r) for r in doc.get("epochs", ())),
            recovery_rounds=tuple(int(r) for r in doc.get("recovery_rounds", ())),
            reconverged=bool(doc.get("reconverged", True)),
        )


class StabilizationTracker:
    """Accumulates per-epoch reconvergence times during one execution."""

    def __init__(self) -> None:
        self._epochs: list[int] = []
        self._recovery: list[Optional[int]] = []
        self._pending: list[int] = []  # indices into _epochs awaiting reconvergence

    def record_epoch(self, global_round: int) -> None:
        """Open an injection epoch at ``global_round`` (idempotent per round)."""
        if self._epochs and self._epochs[-1] == global_round:
            return
        self._pending.append(len(self._epochs))
        self._epochs.append(global_round)
        self._recovery.append(None)

    def observe_round(self, global_round: int, converged: bool) -> None:
        """Fold one round-end convergence observation into the pending epochs."""
        if converged and self._pending:
            for index in self._pending:
                self._recovery[index] = global_round - self._epochs[index]
            self._pending.clear()

    def finalize(self, rounds_simulated: int) -> StabilizationReport:
        """Charge unrecovered epochs and assemble the report."""
        reconverged = not self._pending
        for index in self._pending:
            self._recovery[index] = rounds_simulated - self._epochs[index] + 1
        self._pending.clear()
        return StabilizationReport(
            epochs=tuple(self._epochs),
            recovery_rounds=tuple(r for r in self._recovery if r is not None),
            reconverged=reconverged,
        )
