"""Declarative fault plans.

A :class:`FaultPlan` names every fault the engine will inject into one
execution, in the same declarative/JSON-round-trippable style as campaign
specs and search genomes: schema-versioned, strictly validated, and
content-hashed so fault-injected sweep points get stable store keys.

Three fault families are supported:

* **churn** — scheduled node departures and (optional) rejoins.  A node that
  leaves simply vanishes from the round loop; a node that rejoins comes back
  with a *fresh* protocol instance and a fresh uid, exactly like a newly
  activated device (the paper's protocols already handle late arrivals, so a
  rejoin is modelled as one).
* **Byzantine nodes** — a configurable number of participants that, from a
  scheduled round on, stop running their protocol and instead broadcast
  forged :class:`~repro.radio.messages.LeaderMessage` sync values on random
  frequencies.  Which nodes turn Byzantine is drawn deterministically from
  the per-trial ``("fault", "byzantine")`` stream.
* **transient corruption** — at scheduled rounds, selected nodes' runtime
  state is discarded and rebuilt from a per-``(trial, node, round)``
  ``derive_seed`` stream, modelling recovery from arbitrary state as in the
  snap-stabilization literature.

Every fault source is a deterministic function of the plan and the trial's
master seed, so serial, pooled, and resumed executions of a fault-injected
configuration stay byte-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.exceptions import ConfigurationError

#: Version of the fault-plan JSON schema (bump on incompatible change).
FAULT_SCHEMA_VERSION = 1

#: The ``kind`` discriminator in serialized plans.
FAULT_PLAN_KIND = "fault-plan"


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One scheduled departure (and optional rejoin) of a node.

    Attributes
    ----------
    node_id:
        The engine node id the event targets.
    leave_round:
        The global round at whose start the node departs.
    rejoin_round:
        The global round at whose start the node comes back (with a fresh
        protocol instance and uid), or ``None`` if it never rejoins.
    """

    node_id: int
    leave_round: int
    rejoin_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError(f"churn node id must be >= 0, got {self.node_id}")
        if self.leave_round < 1:
            raise ConfigurationError(f"churn leave round must be >= 1, got {self.leave_round}")
        if self.rejoin_round is not None and self.rejoin_round <= self.leave_round:
            raise ConfigurationError(
                f"churn rejoin round must come after the leave round, got "
                f"leave={self.leave_round} rejoin={self.rejoin_round}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"node": self.node_id, "leave": self.leave_round, "rejoin": self.rejoin_round}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ChurnEvent":
        unknown = set(doc) - {"node", "leave", "rejoin"}
        if unknown:
            raise ConfigurationError(f"unknown churn event keys: {sorted(unknown)}")
        try:
            return cls(
                node_id=int(doc["node"]),
                leave_round=int(doc["leave"]),
                rejoin_round=int(doc["rejoin"]) if doc.get("rejoin") is not None else None,
            )
        except KeyError as error:
            raise ConfigurationError(f"churn event missing key: {error}") from error


@dataclass(frozen=True, slots=True)
class CorruptionEvent:
    """One scheduled transient-corruption injection.

    At the start of ``round_index``, every targeted node that is present (and
    not Byzantine) has its runtime state overwritten: the protocol instance is
    rebuilt from a fresh per-``(trial, node, round)`` random stream, modelling
    an adversary that set the node to an arbitrary state the protocol must
    recover from.
    """

    round_index: int
    node_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "node_ids", tuple(self.node_ids))
        if self.round_index < 1:
            raise ConfigurationError(
                f"corruption round must be >= 1, got {self.round_index}"
            )
        if not self.node_ids:
            raise ConfigurationError("a corruption event needs at least one target node")
        if any(node_id < 0 for node_id in self.node_ids):
            raise ConfigurationError(
                f"corruption node ids must be >= 0, got {self.node_ids}"
            )
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ConfigurationError(f"duplicate corruption targets: {self.node_ids}")

    def to_dict(self) -> dict[str, Any]:
        return {"round": self.round_index, "nodes": list(self.node_ids)}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CorruptionEvent":
        unknown = set(doc) - {"round", "nodes"}
        if unknown:
            raise ConfigurationError(f"unknown corruption event keys: {sorted(unknown)}")
        try:
            return cls(
                round_index=int(doc["round"]),
                node_ids=tuple(int(n) for n in doc["nodes"]),
            )
        except KeyError as error:
            raise ConfigurationError(f"corruption event missing key: {error}") from error


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, content-hashed schedule of faults for one execution.

    Attributes
    ----------
    churn:
        Scheduled departures/rejoins, any order (normalized on construction).
    byzantine_count:
        How many nodes turn Byzantine (0 = none).  The concrete set is drawn
        deterministically per trial; a count larger than the node population
        is clipped to "all nodes".
    byzantine_start_round:
        The global round from which Byzantine nodes forge messages.
    corruption:
        Scheduled transient-corruption injections.
    """

    churn: tuple[ChurnEvent, ...] = ()
    byzantine_count: int = 0
    byzantine_start_round: int = 1
    corruption: tuple[CorruptionEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "churn", tuple(sorted(self.churn, key=lambda e: (e.leave_round, e.node_id)))
        )
        object.__setattr__(
            self, "corruption", tuple(sorted(self.corruption, key=lambda e: e.round_index))
        )
        if self.byzantine_count < 0:
            raise ConfigurationError(
                f"byzantine count must be >= 0, got {self.byzantine_count}"
            )
        if self.byzantine_start_round < 1:
            raise ConfigurationError(
                f"byzantine start round must be >= 1, got {self.byzantine_start_round}"
            )
        windows: dict[int, ChurnEvent] = {}
        for event in self.churn:
            previous = windows.get(event.node_id)
            if previous is not None:
                if previous.rejoin_round is None or event.leave_round <= previous.rejoin_round:
                    raise ConfigurationError(
                        f"overlapping churn windows for node {event.node_id}: "
                        f"{previous} then {event}"
                    )
            windows[event.node_id] = event

    # -- structure -------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not self.churn and not self.corruption and self.byzantine_count == 0

    def last_fault_round(self) -> int:
        """The last global round at which this plan injects anything (0 if empty)."""
        rounds = [0]
        for event in self.churn:
            rounds.append(event.leave_round)
            if event.rejoin_round is not None:
                rounds.append(event.rejoin_round)
        rounds.extend(event.round_index for event in self.corruption)
        if self.byzantine_count:
            rounds.append(self.byzantine_start_round)
        return max(rounds)

    def max_target_node_id(self) -> int:
        """The largest node id named by churn/corruption events (-1 if none)."""
        ids = [-1]
        ids.extend(event.node_id for event in self.churn)
        for event in self.corruption:
            ids.extend(event.node_ids)
        return max(ids)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical JSON-compatible form (stable across processes)."""
        return {
            "schema": FAULT_SCHEMA_VERSION,
            "kind": FAULT_PLAN_KIND,
            "churn": [event.to_dict() for event in self.churn],
            "byzantine": {
                "count": self.byzantine_count,
                "start_round": self.byzantine_start_round,
            },
            "corruption": [event.to_dict() for event in self.corruption],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "FaultPlan":
        unknown = set(doc) - {"schema", "kind", "churn", "byzantine", "corruption"}
        if unknown:
            raise ConfigurationError(f"unknown fault plan keys: {sorted(unknown)}")
        schema = doc.get("schema", FAULT_SCHEMA_VERSION)
        if schema != FAULT_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported fault plan schema {schema!r} "
                f"(this build reads version {FAULT_SCHEMA_VERSION})"
            )
        kind = doc.get("kind", FAULT_PLAN_KIND)
        if kind != FAULT_PLAN_KIND:
            raise ConfigurationError(f"not a fault plan document: kind={kind!r}")
        byzantine = doc.get("byzantine", {})
        unknown_byz = set(byzantine) - {"count", "start_round"}
        if unknown_byz:
            raise ConfigurationError(f"unknown byzantine keys: {sorted(unknown_byz)}")
        return cls(
            churn=tuple(ChurnEvent.from_dict(entry) for entry in doc.get("churn", ())),
            byzantine_count=int(byzantine.get("count", 0)),
            byzantine_start_round=int(byzantine.get("start_round", 1)),
            corruption=tuple(
                CorruptionEvent.from_dict(entry) for entry in doc.get("corruption", ())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # -- identity --------------------------------------------------------

    def key(self) -> str:
        """A short stable content hash (like campaign cell keys / genome keys)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def describe(self) -> str:
        """Short human-readable label used in banners and tables."""
        parts = []
        if self.churn:
            parts.append(f"churn={len(self.churn)}")
        if self.byzantine_count:
            parts.append(f"byz={self.byzantine_count}@r{self.byzantine_start_round}")
        if self.corruption:
            parts.append(f"corrupt={len(self.corruption)}")
        return f"faults({', '.join(parts)})" if parts else "faults(none)"


def load_fault_plan(path: str | Path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file (the CLI ``--faults`` loader)."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read fault plan {path}: {error}") from error
    try:
        return FaultPlan.from_json(text)
    except (json.JSONDecodeError, TypeError) as error:
        raise ConfigurationError(f"invalid fault plan JSON in {path}: {error}") from error
