"""The experiment registry: every paper artefact and the bench that regenerates it.

The registry is the machine-readable version of DESIGN.md §5.  Each entry maps
a paper artefact (figure, theorem, or design-choice ablation) to the benchmark
module that reproduces it and to the library modules doing the work.  The
``examples/quickstart.py`` script prints it, and the tests assert that every
registered benchmark module actually exists.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible experiment.

    Attributes
    ----------
    identifier:
        Short id used in tables and file names (``fig1``, ``thm10``, ...).
    paper_artefact:
        The figure/theorem/section of the paper being reproduced.
    claim:
        What the paper asserts, in one sentence.
    benchmark_module:
        The file under ``benchmarks/`` that regenerates the artefact.
    modules:
        The library modules implementing the pieces.
    """

    identifier: str
    paper_artefact: str
    claim: str
    benchmark_module: str
    modules: tuple[str, ...]


EXPERIMENTS: tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        identifier="fig1",
        paper_artefact="Figure 1",
        claim="Trapdoor epoch lengths and contender broadcast probabilities",
        benchmark_module="benchmarks/test_fig1_trapdoor_schedule.py",
        modules=("repro.protocols.trapdoor.epochs",),
    ),
    ExperimentSpec(
        identifier="fig2",
        paper_artefact="Figure 2",
        claim="Good Samaritan super-epoch structure, probabilities, and frequency distributions",
        benchmark_module="benchmarks/test_fig2_gs_schedule.py",
        modules=("repro.protocols.good_samaritan.schedule",),
    ),
    ExperimentSpec(
        identifier="thm1",
        paper_artefact="Theorem 1",
        claim="Regular protocols need Ω(log²N/((F−t)·loglogN)) rounds",
        benchmark_module="benchmarks/test_thm1_lower_bound.py",
        modules=(
            "repro.analysis.bounds",
            "repro.analysis.balls_in_bins",
            "repro.analysis.good_probability",
        ),
    ),
    ExperimentSpec(
        identifier="thm4",
        paper_artefact="Theorem 4",
        claim="Any protocol needs Ω(F·t/(F−t)·log(1/ε)) rounds (two-node game)",
        benchmark_module="benchmarks/test_thm4_two_node.py",
        modules=("repro.analysis.two_node_game", "repro.adversary.jammers"),
    ),
    ExperimentSpec(
        identifier="thm10",
        paper_artefact="Theorem 10",
        claim="Trapdoor synchronizes in O(F/(F−t)·log²N + F·t/(F−t)·logN) rounds",
        benchmark_module="benchmarks/test_thm10_trapdoor_scaling.py",
        modules=("repro.protocols.trapdoor", "repro.analysis.fitting"),
    ),
    ExperimentSpec(
        identifier="thm18",
        paper_artefact="Theorem 18",
        claim="Good Samaritan finishes in O(t'·log³N) in good executions, O(F·log³N) always",
        benchmark_module="benchmarks/test_thm18_gs_adaptive.py",
        modules=("repro.protocols.good_samaritan", "repro.analysis.fitting"),
    ),
    ExperimentSpec(
        identifier="gs_vs_trapdoor",
        paper_artefact="Section 7 (motivation)",
        claim="The adaptive protocol beats the worst-case protocol when t' ≪ t",
        benchmark_module="benchmarks/test_gs_vs_trapdoor.py",
        modules=("repro.protocols.trapdoor", "repro.protocols.good_samaritan"),
    ),
    ExperimentSpec(
        identifier="baselines",
        paper_artefact="Section 4 (related work)",
        claim="Naive wake-up style strategies lose liveness or agreement under disruption",
        benchmark_module="benchmarks/test_baseline_comparison.py",
        modules=("repro.protocols.baselines",),
    ),
    ExperimentSpec(
        identifier="agreement",
        paper_artefact="Theorems 10 and 15",
        claim="At most one leader is elected and all outputs agree, w.h.p.",
        benchmark_module="benchmarks/test_agreement_properties.py",
        modules=("repro.engine.checker",),
    ),
    ExperimentSpec(
        identifier="fault_tolerance",
        paper_artefact="Section 8 (fault tolerance)",
        claim="Restart-on-silence plus delayed commitment tolerates leader crashes",
        benchmark_module="benchmarks/test_fault_tolerance.py",
        modules=("repro.protocols.fault_tolerant",),
    ),
    ExperimentSpec(
        identifier="ablation_fprime",
        paper_artefact="Section 6 design choice",
        claim="Restricting contention to F' = min(F, 2t) channels beats using all F",
        benchmark_module="benchmarks/test_ablation_fprime.py",
        modules=("repro.protocols.trapdoor.config",),
    ),
    ExperimentSpec(
        identifier="ablation_final_epoch",
        paper_artefact="Section 6 design choice",
        claim="The extended final epoch is what keeps the leader unique",
        benchmark_module="benchmarks/test_ablation_final_epoch.py",
        modules=("repro.protocols.trapdoor.config",),
    ),
    ExperimentSpec(
        identifier="searched_adversary",
        paper_artefact="Worst-case adversary quantifier (Theorems 1, 10, 18)",
        claim="Machine-searched disruption strategies are at least as strong as every hand-written jammer",
        benchmark_module="benchmarks/test_searched_adversary.py",
        modules=("repro.search.space", "repro.search.optimizers", "repro.search.runner"),
    ),
)


def experiment_ids() -> tuple[str, ...]:
    """All registered experiment identifiers, in registry order."""
    return tuple(spec.identifier for spec in EXPERIMENTS)


def get_experiment(identifier: str) -> ExperimentSpec:
    """Look up one experiment by id (raises ``KeyError`` if unknown)."""
    for spec in EXPERIMENTS:
        if spec.identifier == identifier:
            return spec
    raise KeyError(f"unknown experiment {identifier!r}; known: {', '.join(experiment_ids())}")
