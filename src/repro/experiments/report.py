"""Markdown report generation for experiment sweeps.

EXPERIMENTS.md in this repository was written by hand around the benchmark
output; this module automates the same shape for *new* sweeps a user runs:
given a set of :class:`~repro.experiments.harness.SweepResult`s it produces a
self-contained Markdown section with the configuration, the results table, the
headline statistics, and (optionally) a comparison against a bound formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.fitting import ConstantFit, fit_constant
from repro.exceptions import ExperimentError
from repro.experiments.harness import SweepResult


@dataclass(frozen=True)
class ReportSection:
    """One experiment's worth of Markdown.

    Attributes
    ----------
    title:
        The section heading.
    claim:
        What the experiment is supposed to show (one or two sentences).
    results:
        The sweep results the section reports.
    bound:
        Optional callable mapping a sweep result to the bound value its
        measurement should be compared against; when provided the section
        includes a fitted-constant shape check.
    """

    title: str
    claim: str
    results: Sequence[SweepResult]
    bound: Callable[[SweepResult], float] | None = None


def _markdown_table(rows: Sequence[dict[str, object]]) -> str:
    """Render a list of dicts as a GitHub-flavoured Markdown table."""
    if not rows:
        raise ExperimentError("cannot render an empty table")
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        if value is None:
            return "-"
        return str(value)

    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = ["| " + " | ".join(cell(row.get(column)) for column in columns) + " |" for row in rows]
    return "\n".join([header, separator, *body])


def fit_against_bound(section: ReportSection) -> ConstantFit | None:
    """Fit the section's measured latencies against its bound, if one is set."""
    if section.bound is None:
        return None
    measured = []
    predicted = []
    for result in section.results:
        mean = result.summary.mean_latency
        if mean is None:
            continue
        measured.append(mean)
        predicted.append(section.bound(result))
    if len(measured) < 2:
        return None
    return fit_constant(measured, predicted)


def render_section(section: ReportSection) -> str:
    """Render one experiment section as Markdown."""
    if not section.results:
        raise ExperimentError(f"section {section.title!r} has no results")
    lines: list[str] = [f"## {section.title}", "", section.claim, ""]
    lines.append(_markdown_table([result.row() for result in section.results]))
    lines.append("")

    liveness = min(result.summary.liveness_rate for result in section.results)
    agreement = min(result.summary.agreement_rate for result in section.results)
    lines.append(
        f"*Across {sum(r.summary.trials for r in section.results)} executions: "
        f"minimum liveness rate {liveness:.0%}, minimum agreement rate {agreement:.0%}.*"
    )

    fit = fit_against_bound(section)
    if fit is not None:
        verdict = "matches" if fit.is_shape_match() else "does NOT match"
        lines.append("")
        lines.append(
            f"*Shape check: the measured latencies {verdict} the bound shape "
            f"(fitted constant {fit.constant:.2f}, R² = {fit.r_squared:.3f}).*"
        )
    lines.append("")
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """A full Markdown report assembled from sections.

    Attributes
    ----------
    title:
        The document title.
    preamble:
        Optional introductory paragraph.
    sections:
        The report sections, in order.
    """

    title: str
    preamble: str = ""
    sections: list[ReportSection] = field(default_factory=list)

    def add(self, section: ReportSection) -> None:
        """Append a section to the report."""
        self.sections.append(section)

    def render(self) -> str:
        """Render the whole report as Markdown."""
        if not self.sections:
            raise ExperimentError("a report needs at least one section")
        parts = [f"# {self.title}", ""]
        if self.preamble:
            parts.extend([self.preamble, ""])
        parts.extend(render_section(section) for section in self.sections)
        return "\n".join(parts).rstrip() + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the rendered report to ``path`` and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.render(), encoding="utf-8")
        return target
