"""ASCII "figures": simple horizontal bar charts for measured series.

Where the paper's results would normally be plotted, the benchmark harness
prints a bar chart next to the raw numbers so a reader can see the shape
(growth, crossovers) directly in the terminal or in the captured benchmark
output file.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import ExperimentError


def render_bars(
    labels: Sequence[object],
    values: Sequence[float],
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """Render one series as a horizontal bar chart.

    Parameters
    ----------
    labels:
        One label per bar (printed on the left).
    values:
        The bar lengths (non-negative).
    title:
        Optional title line.
    width:
        The width (in characters) of the longest bar.
    unit:
        Optional unit appended to the numeric value.
    """
    if len(labels) != len(values):
        raise ExperimentError("labels and values must have the same length")
    if not values:
        raise ExperimentError("cannot render an empty figure")
    if any(value < 0 for value in values):
        raise ExperimentError("bar values must be non-negative")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def render_multi_series(
    labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """Render several series as grouped bars sharing one label axis."""
    if not series:
        raise ExperimentError("need at least one series")
    for name, values in series.items():
        if len(values) != len(labels):
            raise ExperimentError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    peak = max(max(values) for values in series.values()) or 1.0
    label_width = max(len(str(label)) for label in labels)
    name_width = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    for index, label in enumerate(labels):
        for name, values in series.items():
            value = values[index]
            bar = "#" * max(1, int(round(width * value / peak))) if value > 0 else ""
            lines.append(
                f"{str(label).rjust(label_width)} {name.ljust(name_width)} | {bar} {value:.1f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
