"""Experiment harness, workloads, and the paper-artefact registry."""

from repro.experiments.figures import render_bars, render_multi_series
from repro.experiments.harness import ExperimentHarness, SweepPoint, SweepResult
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec, experiment_ids, get_experiment
from repro.experiments.report import ExperimentReport, ReportSection, render_section
from repro.experiments.tables import render_comparison, render_table
from repro.experiments.workloads import (
    SIMPLE_WORKLOADS,
    Workload,
    adversarial_sweep,
    crowded_cafe,
    low_band_attack,
    lower_bound_worst_case,
    microwave_oven,
    quiet_start,
    reactive_attack,
    straggler,
    synchronized_start_low_jam,
)

__all__ = [
    "render_bars",
    "render_multi_series",
    "ExperimentHarness",
    "SweepPoint",
    "SweepResult",
    "EXPERIMENTS",
    "ExperimentSpec",
    "experiment_ids",
    "get_experiment",
    "ExperimentReport",
    "ReportSection",
    "render_section",
    "render_comparison",
    "render_table",
    "SIMPLE_WORKLOADS",
    "Workload",
    "adversarial_sweep",
    "crowded_cafe",
    "low_band_attack",
    "lower_bound_worst_case",
    "microwave_oven",
    "quiet_start",
    "reactive_attack",
    "straggler",
    "synchronized_start_low_jam",
]
