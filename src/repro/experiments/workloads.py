"""Named workloads: (activation pattern, adversary) pairs used across experiments.

A *workload* is everything about an execution except the protocol under test
and the model parameters: how the devices arrive and what the interference
looks like.  Naming them in one place keeps the benchmarks, the examples, and
the tests talking about the same scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.adversary.activation import (
    ActivationSchedule,
    RandomActivation,
    SimultaneousActivation,
    StaggeredActivation,
    TrickleActivation,
)
from repro.adversary.base import InterferenceAdversary
from repro.adversary.jammers import (
    BurstyJammer,
    FixedBandJammer,
    LowBandJammer,
    NoInterference,
    RandomJammer,
    ReactiveJammer,
    SweepJammer,
)
from repro.adversary.oblivious import ObliviousSchedule
from repro.exceptions import ExperimentError
from repro.params import ModelParameters


@dataclass(frozen=True)
class Workload:
    """A named (activation, adversary) scenario.

    Attributes
    ----------
    name:
        A short identifier used in tables.
    activation:
        The activation schedule.
    adversary:
        The interference adversary.
    description:
        A one-line human description.
    """

    name: str
    activation: ActivationSchedule
    adversary: InterferenceAdversary
    description: str


def quiet_start(node_count: int) -> Workload:
    """All nodes wake together, no interference — the easiest possible execution."""
    return Workload(
        name="quiet_start",
        activation=SimultaneousActivation(count=node_count),
        adversary=NoInterference(),
        description="simultaneous activation, no interference",
    )


def synchronized_start_low_jam(
    node_count: int,
    params: ModelParameters,
    actual_disruption: int,
    horizon: int = 50_000,
    seed: int = 0,
) -> Workload:
    """The Good Samaritan "good execution": simultaneous start, oblivious jammer with ``t' ≤ t``.

    The jammer is pre-drawn (oblivious) and only ever uses ``actual_disruption``
    of the allowed ``t`` channels per round.
    """
    if actual_disruption > params.disruption_budget:
        raise ExperimentError(
            f"actual disruption t'={actual_disruption} exceeds the budget t={params.disruption_budget}"
        )
    inner = RandomJammer(strength=actual_disruption) if actual_disruption > 0 else NoInterference()
    adversary = ObliviousSchedule.pre_drawn(
        inner, params.band, params.disruption_budget, rounds=horizon, seed=seed
    )
    return Workload(
        name=f"good_execution_tprime_{actual_disruption}",
        activation=SimultaneousActivation(count=node_count),
        adversary=adversary,
        description=f"simultaneous activation, oblivious jammer using t'={actual_disruption} channels",
    )


def crowded_cafe(node_count: int, spacing: int = 4) -> Workload:
    """Devices trickle in one by one while a random jammer uses its full budget."""
    return Workload(
        name="crowded_cafe",
        activation=StaggeredActivation(count=node_count, spacing=spacing),
        adversary=RandomJammer(),
        description=f"staggered arrivals every {spacing} rounds, full-budget random jammer",
    )


def adversarial_sweep(node_count: int, window: int = 32, seed: int = 0) -> Workload:
    """Random arrivals against a sweeping jammer (frequency-scanning interferer)."""
    return Workload(
        name="adversarial_sweep",
        activation=RandomActivation(count=node_count, window=window, seed=seed),
        adversary=SweepJammer(),
        description=f"random arrivals within {window} rounds, sweeping jammer",
    )


def reactive_attack(node_count: int, spacing: int = 2) -> Workload:
    """Staggered arrivals against an adaptive jammer targeting busy channels."""
    return Workload(
        name="reactive_attack",
        activation=StaggeredActivation(count=node_count, spacing=spacing),
        adversary=ReactiveJammer(),
        description="staggered arrivals, adaptive jammer on the busiest channels",
    )


def microwave_oven(node_count: int, on_rounds: int = 16, off_rounds: int = 16) -> Workload:
    """Simultaneous start with duty-cycled (bursty) interference."""
    return Workload(
        name="microwave_oven",
        activation=SimultaneousActivation(count=node_count),
        adversary=BurstyJammer(on_rounds=on_rounds, off_rounds=off_rounds),
        description=f"simultaneous start, bursty jammer ({on_rounds} on / {off_rounds} off)",
    )


def low_band_attack(node_count: int) -> Workload:
    """Simultaneous start with a jammer that concentrates on the low channels."""
    return Workload(
        name="low_band_attack",
        activation=SimultaneousActivation(count=node_count),
        adversary=LowBandJammer(),
        description="simultaneous start, jammer concentrated on the low-frequency prefix",
    )


def straggler(node_count: int, delay: int) -> Workload:
    """Most devices wake together; one arrives ``delay`` rounds later under a fixed-band jammer."""
    return Workload(
        name="straggler",
        activation=TrickleActivation(count=node_count, delay=delay),
        adversary=FixedBandJammer(),
        description=f"one straggler arriving {delay} rounds late, fixed-band jammer",
    )


def lower_bound_worst_case(node_count: int) -> Workload:
    """The Theorem 1 adversary: simultaneous activation, frequencies ``1..t`` always jammed."""
    return Workload(
        name="lower_bound_worst_case",
        activation=SimultaneousActivation(count=node_count),
        adversary=FixedBandJammer(),
        description="simultaneous activation, frequencies 1..t permanently disrupted",
    )


#: Registry of workload constructors that only need a node count, keyed by name.
SIMPLE_WORKLOADS: dict[str, Callable[[int], Workload]] = {
    "quiet_start": quiet_start,
    "crowded_cafe": crowded_cafe,
    "adversarial_sweep": adversarial_sweep,
    "reactive_attack": reactive_attack,
    "microwave_oven": microwave_oven,
    "low_band_attack": low_band_attack,
    "lower_bound_worst_case": lower_bound_worst_case,
}
