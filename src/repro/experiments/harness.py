"""The experiment harness: sweeps of (protocol × workload × parameters × seeds).

:class:`ExperimentHarness` is the layer every benchmark builds on.  It takes a
list of :class:`SweepPoint`s, runs each across a set of seeds through the
simulation engine, and returns :class:`SweepResult`s carrying both the raw
trial summaries and the derived statistics the tables print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.adversary.activation import ActivationSchedule
from repro.adversary.base import InterferenceAdversary
from repro.engine.observers import TraceLevel
from repro.engine.runner import TrialSummary, run_trials
from repro.engine.simulator import SimulationConfig
from repro.exceptions import ExperimentError
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.base import ProtocolFactory


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep.

    Attributes
    ----------
    label:
        A short name for the point ("N=256", "t'=2", ...).
    params:
        Model parameters for the point.
    protocol_factory:
        The protocol under test.
    activation:
        The activation schedule.
    adversary:
        The interference adversary.
    max_rounds:
        Per-execution round cap.
    metadata:
        Extra key/value pairs copied into the result row (swept parameter
        values, protocol names, ...).
    """

    label: str
    params: ModelParameters
    protocol_factory: ProtocolFactory
    activation: ActivationSchedule
    adversary: InterferenceAdversary
    max_rounds: int = 50_000
    metadata: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """The measured outcome of one sweep point.

    Attributes
    ----------
    point:
        The configuration that was run.
    summary:
        The multi-seed trial summary.
    """

    point: SweepPoint
    summary: TrialSummary

    def row(self) -> dict[str, object]:
        """The table row for this point (metadata plus headline statistics)."""
        summary = self.summary
        row: dict[str, object] = {"point": self.point.label}
        row.update(self.point.metadata)
        row.update(
            {
                "trials": summary.trials,
                "mean_latency": summary.mean_latency,
                "median_latency": summary.median_latency,
                "max_latency": summary.max_latency,
                "liveness": summary.liveness_rate,
                "agreement": summary.agreement_rate,
                "unique_leader": summary.unique_leader_rate,
            }
        )
        return row


class ExperimentHarness:
    """Runs sweeps and renders their results.

    Parameters
    ----------
    seeds:
        Either a seed count or an explicit seed list applied to every point.
    config_hook:
        Optional per-trial configuration hook forwarded to
        :func:`repro.engine.runner.run_trials` (used e.g. to pre-draw a fresh
        oblivious jammer per seed).
    workers:
        If greater than 1, run each point's trials on a process pool of this
        size (forwarded to :func:`repro.engine.runner.run_trials`; results
        are identical to a serial run, just faster).
    trace_level:
        Optional :class:`~repro.engine.observers.TraceLevel` applied to every
        trial.  Sweeps that only consume summary statistics should pass
        :attr:`TraceLevel.NONE` to keep memory flat.
    """

    def __init__(
        self,
        seeds: Sequence[int] | int = 5,
        config_hook: Callable[[SimulationConfig, int], SimulationConfig] | None = None,
        workers: int | None = None,
        trace_level: TraceLevel | None = None,
    ) -> None:
        self._seeds = seeds
        self._config_hook = config_hook
        self._workers = workers
        self._trace_level = trace_level

    def run_point(self, point: SweepPoint) -> SweepResult:
        """Run one sweep point across the harness seeds."""
        config = SimulationConfig(
            params=point.params,
            protocol_factory=point.protocol_factory,
            activation=point.activation,
            adversary=point.adversary,
            max_rounds=point.max_rounds,
        )
        summary = run_trials(
            config,
            seeds=self._seeds,
            config_for_seed=self._config_hook,
            workers=self._workers,
            trace_level=self._trace_level,
        )
        return SweepResult(point=point, summary=summary)

    def run_sweep(self, points: Sequence[SweepPoint]) -> list[SweepResult]:
        """Run every point of a sweep, in order."""
        if not points:
            raise ExperimentError("a sweep needs at least one point")
        return [self.run_point(point) for point in points]

    def render(self, results: Sequence[SweepResult], title: str | None = None) -> str:
        """Render sweep results as an ASCII table."""
        if not results:
            raise ExperimentError("cannot render an empty sweep")
        return render_table([result.row() for result in results], title=title, float_digits=1)

    def latencies(self, results: Sequence[SweepResult]) -> list[float]:
        """The mean latencies of a sweep, in point order (None → raises)."""
        latencies = []
        for result in results:
            mean = result.summary.mean_latency
            if mean is None:
                raise ExperimentError(
                    f"sweep point {result.point.label!r} never synchronized; no latency available"
                )
            latencies.append(mean)
        return latencies
