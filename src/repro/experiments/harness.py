"""The experiment harness: sweeps of (protocol × workload × parameters × seeds).

:class:`ExperimentHarness` is the layer every benchmark builds on.  It takes a
list of :class:`SweepPoint`s, runs each across a set of seeds through the
simulation engine, and returns :class:`SweepResult`s carrying both the raw
trial summaries and the derived statistics the tables print.

:meth:`ExperimentHarness.run_sweep` can optionally be backed by a campaign
:class:`~repro.campaigns.store.ResultStore`: points already recorded in the
store are *not* re-executed — their statistics are read back (bit-identical,
see :class:`~repro.campaigns.query.StoredSummary`), and newly executed points
are checkpointed, making large sweeps accumulable and interruptible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

from repro.adversary.activation import ActivationSchedule
from repro.adversary.base import InterferenceAdversary
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan, resolve_plan
from repro.engine.runner import TrialSummary, run_trials
from repro.engine.simulator import SimulationConfig
from repro.exceptions import ExperimentError
from repro.experiments.tables import render_table
from repro.params import ModelParameters
from repro.protocols.base import BoundProtocolFactory, ProtocolFactory

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.campaigns.store import ResultStore
    from repro.engine.pool import ExecutionPool


@dataclass(frozen=True)
class SweepPoint:
    """One configuration in a sweep.

    Attributes
    ----------
    label:
        A short name for the point ("N=256", "t'=2", ...).
    params:
        Model parameters for the point.
    protocol_factory:
        The protocol under test.
    activation:
        The activation schedule.
    adversary:
        The interference adversary.
    max_rounds:
        Per-execution round cap.
    metadata:
        Extra key/value pairs copied into the result row (swept parameter
        values, protocol names, ...).
    """

    label: str
    params: ModelParameters
    protocol_factory: ProtocolFactory
    activation: ActivationSchedule
    adversary: InterferenceAdversary
    max_rounds: int = 50_000
    metadata: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class SweepResult:
    """The measured outcome of one sweep point.

    Attributes
    ----------
    point:
        The configuration that was run.
    summary:
        The multi-seed trial summary: a live
        :class:`~repro.engine.runner.TrialSummary`, or a statistically
        identical :class:`~repro.campaigns.query.StoredSummary` when the
        point was read back from a result store.
    """

    point: SweepPoint
    summary: "TrialSummary | StoredSummary"

    def row(self) -> dict[str, object]:
        """The table row for this point (metadata plus headline statistics)."""
        summary = self.summary
        row: dict[str, object] = {"point": self.point.label}
        row.update(self.point.metadata)
        row.update(
            {
                "trials": summary.trials,
                "mean_latency": summary.mean_latency,
                "median_latency": summary.median_latency,
                "max_latency": summary.max_latency,
                "liveness": summary.liveness_rate,
                "agreement": summary.agreement_rate,
                "unique_leader": summary.unique_leader_rate,
            }
        )
        return row


class ExperimentHarness:
    """Runs sweeps and renders their results.

    Parameters
    ----------
    seeds:
        Either a seed count or an explicit seed list applied to every point.
    config_hook:
        Optional per-trial configuration hook forwarded to
        :func:`repro.engine.runner.run_trials` (used e.g. to pre-draw a fresh
        oblivious jammer per seed).
    workers:
        Deprecated — pass ``plan=ExecutionPlan(workers=...)``.
    trace_level:
        Optional :class:`~repro.engine.observers.TraceLevel` applied to every
        trial.  Sweeps that only consume summary statistics should pass
        :attr:`TraceLevel.NONE` to keep memory flat.
    pool:
        Optional persistent :class:`~repro.engine.pool.ExecutionPool` shared
        across every point of every sweep this harness runs (and with any
        other subsystem holding the same pool).  Overrides the plan's worker
        count for dispatch; never changes results.
    plan:
        The :class:`~repro.engine.plan.ExecutionPlan` applied to every
        point's trial batch (forwarded to
        :func:`repro.engine.runner.run_trials`; results are identical to a
        serial run under every plan).
    """

    def __init__(
        self,
        seeds: Sequence[int] | int = 5,
        config_hook: Callable[[SimulationConfig, int], SimulationConfig] | None = None,
        workers: int | None = None,
        trace_level: TraceLevel | None = None,
        pool: "ExecutionPool | None" = None,
        *,
        plan: ExecutionPlan | None = None,
    ) -> None:
        self._seeds = seeds
        self._config_hook = config_hook
        self._plan = resolve_plan(plan, api="ExperimentHarness", workers=workers)
        self._trace_level = trace_level
        self._pool = pool

    def run_point(self, point: SweepPoint) -> SweepResult:
        """Run one sweep point across the harness seeds."""
        config = SimulationConfig(
            params=point.params,
            protocol_factory=point.protocol_factory,
            activation=point.activation,
            adversary=point.adversary,
            max_rounds=point.max_rounds,
        )
        summary = run_trials(
            config,
            seeds=self._seeds,
            config_for_seed=self._config_hook,
            trace_level=self._trace_level,
            pool=self._pool,
            plan=self._plan,
        )
        return SweepResult(point=point, summary=summary)

    def run_sweep(
        self,
        points: Sequence[SweepPoint],
        store: "ResultStore | None" = None,
        campaign: str = "harness-sweep",
    ) -> list[SweepResult]:
        """Run every point of a sweep, in order.

        Parameters
        ----------
        points:
            The sweep points.
        store:
            Optional campaign :class:`~repro.campaigns.store.ResultStore`.
            Points whose content-hashed key the store already holds are read
            back instead of re-executed (their
            :class:`~repro.campaigns.query.StoredSummary` is statistically
            identical to the live summary); newly executed points are
            checkpointed one by one, so an interrupted sweep resumes where it
            stopped.
        campaign:
            The campaign name the points are recorded under in the store.
        """
        if not points:
            raise ExperimentError("a sweep needs at least one point")
        if store is None:
            return [self.run_point(point) for point in points]

        from repro.campaigns.query import summary_for_cell
        from repro.campaigns.store import TrialRecord

        store.register_campaign(campaign)
        results = []
        for point in points:
            key = self.point_key(point)
            if store.has_cell(key):
                store.add_cells_to_campaign(campaign, [key])
                results.append(SweepResult(point=point, summary=summary_for_cell(store, key)))
                continue
            result = self.run_point(point)
            records = [
                TrialRecord.from_result(seed, trial)
                for seed, trial in zip(result.summary.seeds, result.summary.results)
            ]
            store.record_cell(campaign, key, self._point_description(point), records)
            results.append(result)
        return results

    def point_key(self, point: SweepPoint) -> str:
        """The stable content-hashed store key of one sweep point.

        The key covers everything that determines the point's statistics:
        the configuration, the harness seeds, and the point's identity
        fields.  It deliberately excludes ``workers`` and ``trace_level``
        (they never change results).
        """
        from repro.campaigns.spec import cell_key

        return cell_key(self._point_description(point))

    def _point_description(self, point: SweepPoint) -> dict[str, object]:
        """A canonical JSON-serializable description of a sweep point.

        Live objects are reduced to stable text: the protocol factory must be
        a :class:`~repro.protocols.base.BoundProtocolFactory` (closures have
        no stable identity to hash), and activation schedules / adversaries
        contribute their class and ``describe()`` string.  A per-seed
        ``config_hook`` changes executions in ways no description can see, so
        it is incompatible with the store-backed path.
        """
        if self._config_hook is not None:
            raise ExperimentError(
                "a config_hook customizes trials per seed, which a store key cannot "
                "capture; run this sweep without a store (or fold the hook into the "
                "point's adversary/activation)"
            )
        factory = point.protocol_factory
        if not isinstance(factory, BoundProtocolFactory):
            raise ExperimentError(
                f"sweep point {point.label!r} uses a protocol factory of type "
                f"{type(factory).__name__}, which has no stable identity to hash; "
                "store-backed sweeps need a BoundProtocolFactory "
                "(use Protocol.factory(...))"
            )
        seeds = self._seeds
        seed_list = list(range(seeds)) if isinstance(seeds, int) else list(seeds)
        protocol_class = factory.protocol_class
        return {
            "kind": "harness-point",
            "label": point.label,
            "protocol": f"{protocol_class.__module__}.{protocol_class.__qualname__}",
            "protocol_args": repr(factory.args),
            "activation": point.activation.identity(),
            "adversary": point.adversary.identity(),
            "frequencies": point.params.frequencies,
            "budget": point.params.disruption_budget,
            "participants": point.params.participant_bound,
            "node_count": point.activation.node_count,
            "max_rounds": point.max_rounds,
            "seeds": seed_list,
            "metadata": {str(k): repr(v) for k, v in sorted(point.metadata.items())},
        }

    def render(self, results: Sequence[SweepResult], title: str | None = None) -> str:
        """Render sweep results as an ASCII table."""
        if not results:
            raise ExperimentError("cannot render an empty sweep")
        return render_table([result.row() for result in results], title=title, float_digits=1)

    def latencies(self, results: Sequence[SweepResult]) -> list[float]:
        """The mean latencies of a sweep, in point order (None → raises)."""
        latencies = []
        for result in results:
            mean = result.summary.mean_latency
            if mean is None:
                raise ExperimentError(
                    f"sweep point {result.point.label!r} never synchronized; no latency available"
                )
            latencies.append(mean)
        return latencies
