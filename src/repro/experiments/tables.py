"""ASCII table rendering for experiment output.

The benchmark harness prints its results as plain-text tables (the repository
has no plotting dependency), mirroring the row/column structure of the paper's
figures and of the per-theorem experiments.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.exceptions import ExperimentError


def format_value(value: object, float_digits: int = 3) -> str:
    """Render one cell: floats get fixed precision, everything else ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    if value is None:
        return "-"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
    float_digits: int = 3,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table.

    Parameters
    ----------
    rows:
        The table rows; each is a mapping from column name to value.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional title printed above the table.
    float_digits:
        Precision used for float cells.
    """
    if not rows:
        raise ExperimentError("cannot render an empty table")
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    rendered_rows = [
        [format_value(row.get(column), float_digits) for column in column_names] for row in rows
    ]
    widths = [
        max(len(column_names[i]), *(len(rendered[i]) for rendered in rendered_rows))
        for i in range(len(column_names))
    ]

    def line(cells: Iterable[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(column_names))
    parts.append(separator)
    parts.extend(line(rendered) for rendered in rendered_rows)
    return "\n".join(parts)


def render_comparison(
    label_column: str,
    series: Mapping[str, Sequence[float]],
    labels: Sequence[object],
    title: str | None = None,
    float_digits: int = 1,
) -> str:
    """Render several named series against a shared label axis.

    Used for "who wins" comparisons: one row per label (e.g. per ``t'``), one
    column per series (e.g. Trapdoor vs Good Samaritan).
    """
    for name, values in series.items():
        if len(values) != len(labels):
            raise ExperimentError(
                f"series {name!r} has {len(values)} values for {len(labels)} labels"
            )
    rows = []
    for index, label in enumerate(labels):
        row: dict[str, object] = {label_column: label}
        for name, values in series.items():
            row[name] = values[index]
        rows.append(row)
    return render_table(rows, title=title, float_digits=float_digits)
