"""Fitting measured running times to the paper's bound shapes.

The paper's results are asymptotic; the constants depend on the protocol
constants we chose.  To compare a measured latency curve against a bound we
fit a single multiplicative constant by least squares and report the fit
quality.  A good fit (high R², small relative residuals) means the measured
curve has the *shape* the theorem predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ConstantFit:
    """The result of fitting ``measured ≈ c · predicted``.

    Attributes
    ----------
    constant:
        The fitted multiplicative constant ``c``.
    r_squared:
        Coefficient of determination of the fit (1 = perfect shape match).
    max_relative_error:
        The largest ``|measured − c·predicted| / measured`` over the points.
    """

    constant: float
    r_squared: float
    max_relative_error: float

    def is_shape_match(self, r_squared_threshold: float = 0.8) -> bool:
        """True if the measured curve matches the predicted shape reasonably well."""
        return self.r_squared >= r_squared_threshold


def fit_constant(measured: Sequence[float], predicted: Sequence[float]) -> ConstantFit:
    """Least-squares fit of a single constant ``c`` in ``measured ≈ c · predicted``."""
    if len(measured) != len(predicted):
        raise ConfigurationError("measured and predicted series must have the same length")
    if len(measured) < 2:
        raise ConfigurationError("need at least two points to fit a constant")
    y = np.asarray(measured, dtype=float)
    x = np.asarray(predicted, dtype=float)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ConfigurationError("fitting requires strictly positive measurements and predictions")

    constant = float(np.dot(x, y) / np.dot(x, x))
    fitted = constant * x
    residual = y - fitted
    total = y - y.mean()
    ss_res = float(np.dot(residual, residual))
    ss_tot = float(np.dot(total, total))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    max_relative_error = float(np.max(np.abs(residual) / y))
    return ConstantFit(constant=constant, r_squared=r_squared, max_relative_error=max_relative_error)


def relative_shape_error(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """The max relative error after the best single-constant fit (shape mismatch measure)."""
    return fit_constant(measured, predicted).max_relative_error


def monotonically_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if a measured series is (approximately) non-decreasing.

    ``tolerance`` allows each step to dip by up to that *fraction* of the
    previous value, absorbing simulation noise.
    """
    if len(values) < 2:
        return True
    for previous, current in zip(values, values[1:]):
        if current < previous * (1.0 - tolerance):
            return False
    return True


def crossover_index(first: Sequence[float], second: Sequence[float]) -> int | None:
    """The first index at which ``first`` stops being below ``second``.

    Used by the Trapdoor-vs-Good-Samaritan crossover experiment: for small
    ``t'`` the adaptive protocol wins; the crossover is where it stops winning.
    Returns ``None`` if ``first`` stays below ``second`` everywhere.
    """
    if len(first) != len(second):
        raise ConfigurationError("series must have the same length")
    for index, (a, b) in enumerate(zip(first, second)):
        if a >= b:
            return index
    return None
