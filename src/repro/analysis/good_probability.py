"""Success probabilities and "good" rounds (Claim 3 machinery).

For a round in which every one of ``n`` (still-uninformed) nodes broadcasts on
frequency ``f`` with probability ``p``, the *success probability* is

    ``σ(n, p) = n · p · (1 − p)^{n−1}``

— the probability that exactly one node broadcasts on ``f``.  Following
Jurdziński & Stachowiak (and §5 of our paper), a probability is *good* for a
given bound ``N`` if ``σ ≥ 1 / log²N``.

Claim 3 says: with ``x = ⌈4 log log N⌉`` and ``m_i = ⌊x/2⌋ + (i−1)·x``, no
single broadcast probability ``p`` can be good for two different candidate
population sizes ``2^{m_i}`` and ``2^{m_j}``.  The lower-bound proof uses this
to show the adversary can always find a population size the protocol is badly
tuned for.  This module provides those definitions plus a verifier used by the
tests and the ``thm1`` benchmark.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.exceptions import ConfigurationError


def success_probability(node_count: int, broadcast_probability: float) -> float:
    """``σ(n, p) = n · p · (1 − p)^{n−1}`` — probability of a lone broadcaster."""
    if node_count < 0:
        raise ConfigurationError(f"node count must be non-negative, got {node_count}")
    if not 0.0 <= broadcast_probability <= 1.0:
        raise ConfigurationError(
            f"broadcast probability must be in [0, 1], got {broadcast_probability}"
        )
    if node_count == 0:
        return 0.0
    return node_count * broadcast_probability * (1.0 - broadcast_probability) ** (node_count - 1)


def goodness_threshold(participant_bound: int) -> float:
    """The goodness threshold ``1 / log²N``."""
    if participant_bound < 2:
        raise ConfigurationError(f"N must be >= 2, got {participant_bound}")
    return 1.0 / (max(1.0, math.log2(participant_bound)) ** 2)


def is_good(node_count: int, broadcast_probability: float, participant_bound: int) -> bool:
    """True if ``σ(n, p)`` meets the goodness threshold for bound ``N``."""
    return success_probability(node_count, broadcast_probability) >= goodness_threshold(
        participant_bound
    )


def optimal_broadcast_probability(node_count: int) -> float:
    """The ``p`` maximizing ``σ(n, p)`` — namely ``1/n``."""
    if node_count < 1:
        raise ConfigurationError(f"node count must be positive, got {node_count}")
    return 1.0 / node_count


def claim3_column_exponents(participant_bound: int, minimum_exponent: int = 0) -> list[int]:
    """The exponents ``m_i`` of Claim 3 that fit under ``lg N``.

    ``x = ⌈4 log log N⌉``; ``m_i = ⌊x/2⌋ + (i − 1)·x`` for
    ``i = 1 … ⌊lg N / x⌋ − 1``.  ``minimum_exponent`` lets the caller drop
    columns whose population ``2^{m_i}`` falls below the proof's ``n_min``.
    """
    if participant_bound < 4:
        raise ConfigurationError(f"N must be >= 4, got {participant_bound}")
    log_n = math.log2(participant_bound)
    x = max(1, math.ceil(4 * math.log2(max(2.0, math.log2(participant_bound)))))
    column_count = max(0, int(log_n // x) - 1)
    exponents = []
    for i in range(1, column_count + 1):
        exponent = x // 2 + (i - 1) * x
        if exponent >= minimum_exponent:
            exponents.append(exponent)
    return exponents


def good_population_exponents(
    broadcast_probability: float,
    exponents: Sequence[int],
    participant_bound: int,
) -> list[int]:
    """Which candidate population exponents ``m_i`` a probability ``p`` is good for.

    Claim 3 asserts the returned list never has more than one element when the
    exponents are spaced as in :func:`claim3_column_exponents`.
    """
    return [
        exponent
        for exponent in exponents
        if is_good(2**exponent, broadcast_probability, participant_bound)
    ]


def claim3_holds(participant_bound: int, probability_grid: int = 2_000) -> bool:
    """Spot-check Claim 3 over a grid of broadcast probabilities.

    Returns True if no probability on the grid is good for two or more of the
    Claim 3 population sizes.
    """
    exponents = claim3_column_exponents(participant_bound)
    if len(exponents) < 2:
        return True
    for step in range(1, probability_grid):
        probability = step / probability_grid
        if len(good_population_exponents(probability, exponents, participant_bound)) > 1:
            return False
    return True
