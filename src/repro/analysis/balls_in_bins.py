"""The balls-in-bins process of Lemma 2.

Lemma 2 states: if ``m`` balls are thrown independently into ``s + 1`` bins
according to a distribution ``p₁ ≤ p₂ ≤ … ≤ p_{s+1}`` with ``p_{s+1} ≥ 1/2``,
then the probability that **no bin receives exactly one ball** is at least
``2^{-s}``.

In the lower-bound proof the bins are the frequencies with *good* success
probability (plus one virtual bin for "not broadcasting on any of them"), the
balls are the ``n`` devices, and the lemma bounds the probability that the
adversary gets lucky and no frequency carries a lone broadcaster.

This module provides the analytic bound, an exact computation for small
instances, and a Monte-Carlo estimator used by the tests and the ``thm1``
benchmark to confirm the bound empirically.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Sequence

from repro.exceptions import ConfigurationError


def validate_distribution(probabilities: Sequence[float]) -> tuple[float, ...]:
    """Validate a bin distribution (non-negative, sums to 1 within tolerance)."""
    if not probabilities:
        raise ConfigurationError("a distribution needs at least one bin")
    if any(p < 0 for p in probabilities):
        raise ConfigurationError("probabilities must be non-negative")
    total = sum(probabilities)
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-9):
        raise ConfigurationError(f"probabilities must sum to 1, got {total}")
    return tuple(probabilities)


def lemma2_lower_bound(bins_below_half: int) -> float:
    """The Lemma 2 bound ``2^{-s}`` where ``s`` is the number of non-dominant bins."""
    if bins_below_half < 0:
        raise ConfigurationError(f"s must be non-negative, got {bins_below_half}")
    return 2.0 ** (-bins_below_half)


def no_singleton_probability_exact(ball_count: int, probabilities: Sequence[float]) -> float:
    """Exact probability that no bin receives exactly one ball.

    Uses inclusion–exclusion over the set of bins forced to hold exactly one
    ball, which is exponential in the number of bins — fine for the small
    instances used in tests (``s ≤ 8`` or so).
    """
    probs = validate_distribution(probabilities)
    if ball_count < 0:
        raise ConfigurationError(f"ball count must be non-negative, got {ball_count}")
    bins = len(probs)
    total = 0.0
    for subset_size in range(0, min(bins, ball_count) + 1):
        for subset in itertools.combinations(range(bins), subset_size):
            # Probability that each bin in `subset` holds exactly one *designated*
            # ball and the remaining balls avoid... inclusion-exclusion over
            # "bin i has exactly one ball" events requires the permanent-style
            # sum below.
            p_subset = 1.0
            remaining_mass = 1.0
            for bin_index in subset:
                remaining_mass -= probs[bin_index]
            # Number of ways to assign distinct balls to the designated bins.
            ways = 1.0
            for i in range(subset_size):
                ways *= ball_count - i
            for bin_index in subset:
                p_subset *= probs[bin_index]
            if remaining_mass < 0:
                remaining_mass = 0.0
            term = ways * p_subset * remaining_mass ** (ball_count - subset_size)
            total += (-1) ** subset_size * term
    return max(0.0, min(1.0, total))


def no_singleton_probability_monte_carlo(
    ball_count: int,
    probabilities: Sequence[float],
    trials: int = 10_000,
    rng: random.Random | None = None,
) -> float:
    """Monte-Carlo estimate of the probability that no bin gets exactly one ball."""
    probs = validate_distribution(probabilities)
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = rng or random.Random(0)
    cumulative = []
    running = 0.0
    for p in probs:
        running += p
        cumulative.append(running)
    successes = 0
    for _ in range(trials):
        counts = [0] * len(probs)
        for _ in range(ball_count):
            draw = rng.random()
            for bin_index, threshold in enumerate(cumulative):
                if draw <= threshold:
                    counts[bin_index] += 1
                    break
            else:
                counts[-1] += 1
        if all(count != 1 for count in counts):
            successes += 1
    return successes / trials


def lemma2_holds(ball_count: int, probabilities: Sequence[float], exact: bool = True,
                 trials: int = 20_000, rng: random.Random | None = None) -> bool:
    """Check Lemma 2 on one instance: P[no singleton] ≥ 2^{-s}.

    ``s`` is the number of bins other than the heaviest one; the instance must
    satisfy the lemma's hypothesis ``max pᵢ ≥ 1/2``.
    """
    probs = validate_distribution(probabilities)
    if max(probs) < 0.5:
        raise ConfigurationError("Lemma 2 requires the heaviest bin to have probability >= 1/2")
    s = len(probs) - 1
    bound = lemma2_lower_bound(s)
    if exact:
        probability = no_singleton_probability_exact(ball_count, probs)
    else:
        probability = no_singleton_probability_monte_carlo(ball_count, probs, trials, rng)
        # Leave slack for Monte-Carlo noise.
        bound *= 0.8
    return probability >= bound
