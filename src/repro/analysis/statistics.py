"""Small statistics helpers for multi-seed measurements.

Everything here is a thin, dependency-light wrapper over numpy; it exists so
that benchmarks and experiments share one definition of "mean ± confidence
interval" and one percentile convention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of one measured sample.

    Attributes
    ----------
    count:
        Number of observations.
    mean, median, std:
        The usual moments (std is the sample standard deviation, ``ddof=1``).
    minimum, maximum:
        Range of the sample.
    ci_halfwidth:
        Half-width of the normal-approximation 95% confidence interval on the
        mean (0 for samples of size 1).
    """

    count: int
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    ci_halfwidth: float

    @property
    def ci_low(self) -> float:
        """Lower end of the 95% confidence interval on the mean."""
        return self.mean - self.ci_halfwidth

    @property
    def ci_high(self) -> float:
        """Upper end of the 95% confidence interval on the mean."""
        return self.mean + self.ci_halfwidth

    def format(self, digits: int = 1) -> str:
        """``mean ± ci`` formatted for tables."""
        return f"{self.mean:.{digits}f} ± {self.ci_halfwidth:.{digits}f}"


def summarize(values: Sequence[float]) -> SampleSummary:
    """Compute a :class:`SampleSummary` for a non-empty sample."""
    if not values:
        raise ConfigurationError("cannot summarize an empty sample")
    data = np.asarray(values, dtype=float)
    count = int(data.size)
    std = float(data.std(ddof=1)) if count > 1 else 0.0
    ci = 1.96 * std / math.sqrt(count) if count > 1 else 0.0
    return SampleSummary(
        count=count,
        mean=float(data.mean()),
        median=float(np.median(data)),
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
        ci_halfwidth=ci,
    )


def percentile(values: Sequence[float], fraction: float) -> float:
    """The empirical percentile at ``fraction`` (in ``[0, 1]``)."""
    if not values:
        raise ConfigurationError("cannot take a percentile of an empty sample")
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    return float(np.quantile(np.asarray(values, dtype=float), fraction))


def geometric_mean(values: Sequence[float]) -> float:
    """The geometric mean of a positive sample (used for speedup aggregation)."""
    if not values:
        raise ConfigurationError("cannot take a geometric mean of an empty sample")
    data = np.asarray(values, dtype=float)
    if np.any(data <= 0):
        raise ConfigurationError("geometric mean requires strictly positive values")
    return float(np.exp(np.log(data).mean()))
