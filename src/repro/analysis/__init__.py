"""Analytical machinery: the paper's bounds, proof gadgets, and curve fitting."""

from repro.analysis.balls_in_bins import (
    lemma2_holds,
    lemma2_lower_bound,
    no_singleton_probability_exact,
    no_singleton_probability_monte_carlo,
)
from repro.analysis.bounds import (
    good_samaritan_adaptive_bound,
    good_samaritan_worst_case_bound,
    theorem1_lower_bound,
    theorem4_lower_bound,
    theorem5_lower_bound,
    trapdoor_upper_bound,
    upper_to_lower_gap,
)
from repro.analysis.fitting import ConstantFit, crossover_index, fit_constant, monotonically_increasing
from repro.analysis.good_probability import (
    claim3_column_exponents,
    claim3_holds,
    good_population_exponents,
    goodness_threshold,
    is_good,
    optimal_broadcast_probability,
    success_probability,
)
from repro.analysis.scaling import PowerLawFit, doubling_ratios, fit_power_law, growth_factor
from repro.analysis.statistics import SampleSummary, geometric_mean, percentile, summarize
from repro.analysis.two_node_game import (
    DisruptionChoice,
    best_protocol_meeting_probability,
    best_protocol_meeting_probability_bruteforce,
    expected_rounds_to_meet,
    optimal_disruption,
    per_round_escape_probability,
    rounds_lower_bound,
)

__all__ = [
    "lemma2_holds",
    "lemma2_lower_bound",
    "no_singleton_probability_exact",
    "no_singleton_probability_monte_carlo",
    "good_samaritan_adaptive_bound",
    "good_samaritan_worst_case_bound",
    "theorem1_lower_bound",
    "theorem4_lower_bound",
    "theorem5_lower_bound",
    "trapdoor_upper_bound",
    "upper_to_lower_gap",
    "ConstantFit",
    "crossover_index",
    "fit_constant",
    "monotonically_increasing",
    "claim3_column_exponents",
    "claim3_holds",
    "good_population_exponents",
    "goodness_threshold",
    "is_good",
    "optimal_broadcast_probability",
    "success_probability",
    "PowerLawFit",
    "doubling_ratios",
    "fit_power_law",
    "growth_factor",
    "SampleSummary",
    "geometric_mean",
    "percentile",
    "summarize",
    "DisruptionChoice",
    "best_protocol_meeting_probability",
    "best_protocol_meeting_probability_bruteforce",
    "expected_rounds_to_meet",
    "optimal_disruption",
    "per_round_escape_probability",
    "rounds_lower_bound",
]
