"""The two-node rendezvous game of Theorem 4.

Theorem 4's lower bound considers just two nodes, ``u`` and ``v``, woken at
different times.  Before they can agree on anything, there must be a round in
which one broadcasts, the other listens, and they picked the *same
undisrupted* frequency.  The adversary, knowing the per-frequency selection
probabilities ``p_j`` (for ``u``) and ``q_j`` (for ``v``), disrupts the ``t``
frequencies with the largest products ``p_j · q_j``.  The paper shows the
remaining "meeting probability" is at most ``(k − t)/k²`` with
``k = min(F, 2t)``, giving the ``Ω(F·t/(F − t) · log(1/ε))`` bound.

This module computes the adversary's optimal choice and value for arbitrary
distributions, the worst-case (protocol-optimal) value, and the induced
round-count lower bound; the ``thm4`` benchmark compares them against
simulated two-node executions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DisruptionChoice:
    """The adversary's best response to one round's selection distributions.

    Attributes
    ----------
    disrupted:
        The ``t`` frequencies (1-based) with the largest ``p_j·q_j`` products.
    meeting_probability:
        The probability that the two nodes meet on an undisrupted frequency,
        given this disruption.
    """

    disrupted: tuple[int, ...]
    meeting_probability: float


def _validate_distribution(probabilities: Sequence[float], label: str) -> tuple[float, ...]:
    if not probabilities:
        raise ConfigurationError(f"{label} must have at least one frequency")
    if any(p < 0 for p in probabilities):
        raise ConfigurationError(f"{label} must be non-negative")
    total = sum(probabilities)
    if total > 1.0 + 1e-9:
        raise ConfigurationError(f"{label} must sum to at most 1, got {total}")
    return tuple(probabilities)


def optimal_disruption(
    p: Sequence[float], q: Sequence[float], budget: int
) -> DisruptionChoice:
    """The adversary's optimal disruption against selection distributions ``p`` and ``q``.

    Parameters
    ----------
    p, q:
        Per-frequency selection probabilities of the two nodes (index 0 is
        frequency 1).  They may sum to less than 1 (a node may also be silent
        or out of band).
    budget:
        The number of frequencies the adversary may disrupt.
    """
    p_probs = _validate_distribution(p, "p")
    q_probs = _validate_distribution(q, "q")
    if len(p_probs) != len(q_probs):
        raise ConfigurationError("p and q must cover the same number of frequencies")
    if budget < 0 or budget >= len(p_probs):
        raise ConfigurationError(
            f"budget must satisfy 0 <= t < F, got t={budget}, F={len(p_probs)}"
        )
    products = [(p_probs[j] * q_probs[j], j + 1) for j in range(len(p_probs))]
    products.sort(key=lambda item: (-item[0], item[1]))
    disrupted = tuple(sorted(frequency for _, frequency in products[:budget]))
    meeting = sum(value for value, _ in products[budget:])
    return DisruptionChoice(disrupted=disrupted, meeting_probability=meeting)


def best_protocol_meeting_probability(frequencies: int, budget: int) -> float:
    """The best per-round meeting probability any protocol can force: ``(k − t)/k²``.

    ``k = min(F, 2t)`` maximizes ``(k − t)/k²`` (for ``t ≥ 1``); with ``t = 0``
    the nodes can simply meet on frequency 1, so the value is 1.
    """
    if frequencies < 1:
        raise ConfigurationError(f"F must be >= 1, got {frequencies}")
    if not 0 <= budget < frequencies:
        raise ConfigurationError(f"t must satisfy 0 <= t < F, got t={budget}, F={frequencies}")
    if budget == 0:
        return 1.0
    k = min(frequencies, 2 * budget)
    return (k - budget) / (k * k)


def best_protocol_meeting_probability_bruteforce(frequencies: int, budget: int) -> float:
    """Brute-force check of the ``k = min(F, 2t)`` maximization over uniform supports."""
    if budget == 0:
        return 1.0
    best = 0.0
    for k in range(budget + 1, frequencies + 1):
        best = max(best, (k - budget) / (k * k))
    return best


def per_round_escape_probability(frequencies: int, budget: int) -> float:
    """The paper's ``P = max{1 − 1/(4t), 1 − (F − t)/F²}`` no-meeting probability."""
    if frequencies < 1:
        raise ConfigurationError(f"F must be >= 1, got {frequencies}")
    if not 0 <= budget < frequencies:
        raise ConfigurationError(f"t must satisfy 0 <= t < F, got t={budget}, F={frequencies}")
    if budget == 0:
        return 0.0
    return max(1.0 - 1.0 / (4.0 * budget), 1.0 - (frequencies - budget) / (frequencies**2))


def rounds_lower_bound(frequencies: int, budget: int, error_probability: float) -> float:
    """The Theorem 4 round-count bound ``ln(1/ε) / ln(1/P)``."""
    if not 0.0 < error_probability < 1.0:
        raise ConfigurationError(
            f"error probability must be in (0, 1), got {error_probability}"
        )
    escape = per_round_escape_probability(frequencies, budget)
    if escape <= 0.0:
        return 0.0
    return math.log(1.0 / error_probability) / math.log(1.0 / escape)


def expected_rounds_to_meet(frequencies: int, budget: int) -> float:
    """Expected rounds until the two nodes meet when the adversary plays optimally.

    With per-round meeting probability at most ``(k − t)/k²`` the expectation
    is at least its reciprocal — ``Θ(F·t/(F − t))`` as in the theorem.
    """
    probability = best_protocol_meeting_probability(frequencies, budget)
    if probability <= 0.0:
        return math.inf
    return 1.0 / probability
