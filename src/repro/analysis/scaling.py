"""Scaling-law extraction from measured curves.

For sweeps over a single parameter (``N``, ``t``, ``t'`` …) the benchmarks
estimate the growth exponent of the measured latency by ordinary least squares
on the log-log points.  A measured exponent close to the theoretical one is
the quantitative form of "the shape holds".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``y ≈ a · x^b``.

    Attributes
    ----------
    exponent:
        The fitted exponent ``b``.
    prefactor:
        The fitted prefactor ``a``.
    r_squared:
        Fit quality on the log-log points.
    """

    exponent: float
    prefactor: float
    r_squared: float


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Fit ``y ≈ a · x^b`` by linear regression in log-log space."""
    if len(x) != len(y):
        raise ConfigurationError("x and y must have the same length")
    if len(x) < 2:
        raise ConfigurationError("need at least two points to fit a power law")
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ConfigurationError("power-law fitting requires strictly positive values")
    log_x = np.log(xs)
    log_y = np.log(ys)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = log_y - predicted
    total = log_y - log_y.mean()
    ss_res = float(np.dot(residual, residual))
    ss_tot = float(np.dot(total, total))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(slope), prefactor=float(np.exp(intercept)), r_squared=r_squared)


def growth_factor(values: Sequence[float]) -> float:
    """The overall growth ``last / first`` of a measured series."""
    if len(values) < 2:
        raise ConfigurationError("need at least two points")
    if values[0] <= 0:
        raise ConfigurationError("first value must be positive")
    return values[-1] / values[0]


def doubling_ratios(values: Sequence[float]) -> list[float]:
    """Consecutive ratios ``values[i+1] / values[i]`` (useful when x doubles each step)."""
    if len(values) < 2:
        raise ConfigurationError("need at least two points")
    ratios = []
    for previous, current in zip(values, values[1:]):
        if previous <= 0:
            raise ConfigurationError("values must be positive")
        ratios.append(current / previous)
    return ratios
