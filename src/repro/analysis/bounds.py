"""Closed-form bound formulas from the paper.

These functions evaluate the asymptotic expressions of Theorems 1, 4, 5, 10,
and 18 *without* their hidden constants.  The scaling experiments fit the
constants from measurements (:mod:`repro.analysis.fitting`) and then compare
the measured growth against these shapes.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError


def _check(frequencies: int, budget: int, participant_bound: int | None = None) -> None:
    if frequencies < 1:
        raise ConfigurationError(f"F must be >= 1, got {frequencies}")
    if not 0 <= budget < frequencies:
        raise ConfigurationError(f"t must satisfy 0 <= t < F, got t={budget}, F={frequencies}")
    if participant_bound is not None and participant_bound < 2:
        raise ConfigurationError(f"N must be >= 2, got {participant_bound}")


def log2(value: float) -> float:
    """``log₂`` with a floor at 1 to keep the formulas well-defined for tiny inputs."""
    return max(1.0, math.log2(value))


def theorem1_lower_bound(participant_bound: int, frequencies: int, budget: int) -> float:
    """Theorem 1: ``log²N / ((F − t) · log log N)`` (regular protocols)."""
    _check(frequencies, budget, participant_bound)
    log_n = log2(participant_bound)
    return (log_n**2) / ((frequencies - budget) * max(1.0, math.log2(log_n)))


def theorem4_lower_bound(frequencies: int, budget: int, error_probability: float) -> float:
    """Theorem 4: ``F·t/(F − t) · log(1/ε)`` (any protocol, two-node argument)."""
    _check(frequencies, budget)
    if not 0.0 < error_probability < 1.0:
        raise ConfigurationError(
            f"error probability must be in (0, 1), got {error_probability}"
        )
    return (frequencies * budget / (frequencies - budget)) * math.log(1.0 / error_probability)


def theorem5_lower_bound(participant_bound: int, frequencies: int, budget: int) -> float:
    """Theorem 5: the combined lower bound with ``ε = 1/N``.

    ``log²N / ((F − t)·log log N)  +  F·t/(F − t) · log N``
    """
    _check(frequencies, budget, participant_bound)
    log_n = log2(participant_bound)
    first = theorem1_lower_bound(participant_bound, frequencies, budget)
    second = (frequencies * budget / (frequencies - budget)) * log_n
    return first + second


def trapdoor_upper_bound(participant_bound: int, frequencies: int, budget: int) -> float:
    """Theorem 10: ``F/(F − t)·log²N + F·t/(F − t)·log N``."""
    _check(frequencies, budget, participant_bound)
    log_n = log2(participant_bound)
    ratio = frequencies / (frequencies - budget)
    return ratio * log_n**2 + ratio * budget * log_n


def good_samaritan_adaptive_bound(participant_bound: int, actual_disruption: int) -> float:
    """Theorem 18 (good executions): ``t′ · log³N``."""
    if participant_bound < 2:
        raise ConfigurationError(f"N must be >= 2, got {participant_bound}")
    if actual_disruption < 0:
        raise ConfigurationError(f"t' must be non-negative, got {actual_disruption}")
    return max(1, actual_disruption) * log2(participant_bound) ** 3


def good_samaritan_worst_case_bound(participant_bound: int, frequencies: int) -> float:
    """Theorem 18 (all executions): ``F · log³N``."""
    if participant_bound < 2:
        raise ConfigurationError(f"N must be >= 2, got {participant_bound}")
    if frequencies < 1:
        raise ConfigurationError(f"F must be >= 1, got {frequencies}")
    return frequencies * log2(participant_bound) ** 3


def upper_to_lower_gap(participant_bound: int, frequencies: int, budget: int) -> float:
    """The ratio between the Trapdoor upper bound and the Theorem 5 lower bound.

    The paper notes the protocol is almost tight; the gap is
    ``O(log log N)`` in the first term.
    """
    upper = trapdoor_upper_bound(participant_bound, frequencies, budget)
    lower = theorem5_lower_bound(participant_bound, frequencies, budget)
    return upper / lower
