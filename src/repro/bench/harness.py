"""The timing harness: warmup, repeats, medians, and machine calibration.

Wall-clock timings from shared machines (CI runners especially) are noisy.
The harness does three things about it:

* every scenario runs ``warmup`` throwaway iterations first (imports, caches,
  and allocator pools settle), then ``repeats`` timed iterations of which the
  **median** is the headline number;
* a pure-Python *calibration loop* is timed alongside the scenarios, and each
  throughput is also reported normalized by the calibration rate — the
  normalized number is a machine-independent "simulator speed relative to
  this interpreter+host" ratio, which is what baselines are compared on;
* each repeat's :class:`~repro.bench.scenarios.ScenarioWork` digest must be
  identical — a scenario whose answers vary across repeats is rejected
  outright rather than timed.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.bench.scenarios import BenchScenario, ScenarioWork
from repro.exceptions import ExperimentError
from repro.telemetry import Telemetry, as_telemetry

#: Iterations of the calibration loop (a fixed pure-Python workload).
_CALIBRATION_LOOPS = 200_000


def _calibration_workload(loops: int) -> int:
    total = 0
    for index in range(loops):
        total += index * index % 7
    return total


def calibration_rate(samples: int = 3, loops: int = _CALIBRATION_LOOPS) -> float:
    """Loop iterations per second of a fixed pure-Python workload (best of ``samples``).

    Scenario throughputs divided by this rate are comparable across machines
    to first order: both numerator and denominator are interpreter-bound
    Python, so a faster host scales them together.
    """
    best = 0.0
    for _ in range(samples):
        start = time.perf_counter()
        _calibration_workload(loops)
        elapsed = time.perf_counter() - start
        best = max(best, loops / elapsed)
    return best


@dataclass(frozen=True)
class BenchMeasurement:
    """One scenario's timed result.

    Attributes
    ----------
    scenario:
        The scenario definition that was run.
    work:
        The (repeat-invariant) work record.
    seconds:
        Per-repeat wall-clock seconds, in execution order.
    """

    scenario: BenchScenario
    work: ScenarioWork
    seconds: tuple[float, ...]

    @property
    def median_seconds(self) -> float:
        """The median repeat time (the headline cost)."""
        return float(statistics.median(self.seconds))

    @property
    def throughput(self) -> float:
        """Work units per second at the median repeat time."""
        return self.work.units / self.median_seconds

    def normalized_throughput(self, calibration: float) -> float:
        """Work units per *million calibration-loop iterations* of this host.

        Dividing by the host's calibration rate cancels interpreter/machine
        speed to first order; the ×1e6 scaling just keeps the numbers in a
        readable range.  Only ratios of this metric are meaningful.
        """
        return self.throughput * 1e6 / calibration


@dataclass(frozen=True)
class BenchRun:
    """A full bench invocation: calibration plus one measurement per scenario.

    ``telemetry_snapshot`` carries the harness's own metrics-registry state
    (scenario timings as ``bench.scenario.seconds`` observations) when the
    bench ran with a live telemetry handle; it is ``None`` — and absent from
    the serialized JSON — otherwise, so default payloads are unchanged.
    """

    rev: str
    repeats: int
    warmup: int
    calibration: float
    measurements: tuple[BenchMeasurement, ...]
    telemetry_snapshot: Optional[dict[str, Any]] = field(default=None)


def run_scenario(scenario: BenchScenario, repeats: int, warmup: int) -> BenchMeasurement:
    """Time one scenario: ``warmup`` throwaway runs, then ``repeats`` timed ones.

    Raises
    ------
    ExperimentError
        If the scenario's work digest (or unit count) differs between
        repeats — nondeterministic work cannot be meaningfully timed.
    """
    if repeats < 1:
        raise ExperimentError(f"bench needs at least one repeat, got {repeats}")
    if warmup < 0:
        raise ExperimentError(f"warmup must be non-negative, got {warmup}")
    for _ in range(warmup):
        scenario.run()
    work: ScenarioWork | None = None
    seconds: list[float] = []
    for repeat in range(repeats):
        start = time.perf_counter()
        current = scenario.run()
        seconds.append(time.perf_counter() - start)
        if work is None:
            work = current
        elif (current.digest, current.units) != (work.digest, work.units):
            raise ExperimentError(
                f"bench scenario {scenario.name!r} is nondeterministic: repeat "
                f"{repeat} produced work ({current.units} {scenario.unit}, digest "
                f"{current.digest}) != first repeat ({work.units} {scenario.unit}, "
                f"digest {work.digest})"
            )
    assert work is not None
    return BenchMeasurement(scenario=scenario, work=work, seconds=tuple(seconds))


def run_bench(
    scenarios: Sequence[BenchScenario],
    rev: str,
    repeats: int = 3,
    warmup: int = 1,
    telemetry: Optional[Telemetry] = None,
) -> BenchRun:
    """Run every scenario through the harness and return the full bench run.

    With a live ``telemetry`` handle, each scenario's timed phase runs inside
    a ``bench.scenario`` span (the scenario's *own* instrumentation — pools,
    campaign runners — stays off so the timed code matches production), and
    the resulting registry snapshot is embedded in the returned
    :class:`BenchRun`.
    """
    handle = as_telemetry(telemetry)
    with handle.span("bench.calibration"):
        calibration = calibration_rate()
    measurements = []
    for scenario in scenarios:
        with handle.span("bench.scenario", scenario=scenario.name) as span:
            measurement = run_scenario(scenario, repeats=repeats, warmup=warmup)
            span.annotate(median_seconds=measurement.median_seconds)
        if handle.enabled:
            handle.histogram(
                "bench.median_seconds", help="median scenario repeat time"
            ).observe(measurement.median_seconds)
        measurements.append(measurement)
    return BenchRun(
        rev=rev,
        repeats=repeats,
        warmup=warmup,
        calibration=calibration,
        measurements=tuple(measurements),
        telemetry_snapshot=handle.snapshot() if handle.enabled else None,
    )
