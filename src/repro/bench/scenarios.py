"""The registry of pinned benchmark scenarios.

A *scenario* is a fixed, named workload whose wall-clock cost is worth
tracking across revisions.  Each scenario does a deterministic amount of
*work* (a known number of simulated rounds, executed trials, or search
evaluations) and returns a :class:`ScenarioWork` describing that work plus a
content digest of the results it produced — so the harness can verify that a
faster engine still computes the same thing, and that two runs of the bench
produce identical payloads modulo timing.

Scenarios marked ``ci=True`` form the pinned subset the CI ``perf-gate`` job
times on every pull request; the heavier scenarios (process pools, search)
are for local profiling and for refreshing ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.adversary.activation import SimultaneousActivation, StaggeredActivation
from repro.adversary.jammers import RandomJammer
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import ResultStore
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan
from repro.engine.serialization import execution_digest
from repro.engine.simulator import SimulationConfig, simulate
from repro.exceptions import ConfigurationError
from repro.params import ModelParameters
from repro.protocols.registry import protocol_factory
from repro.search.checkpoint import SearchSpec
from repro.search.objective import SearchObjective
from repro.search.runner import StrategySearch


@dataclass(frozen=True)
class ScenarioWork:
    """What one scenario execution did (everything except how long it took).

    Attributes
    ----------
    units:
        The amount of work performed, in the scenario's unit (rounds, trials,
        evaluations).  Pinned: the same revision must always report the same
        number, or throughput comparisons are meaningless.
    digest:
        A stable content hash of the results the scenario produced.  The
        harness asserts it is identical across repeats — a bench run that
        computes different answers on different repeats is reporting garbage.
    detail:
        Small JSON-serializable facts worth keeping next to the measurement
        (e.g. the trace level, the grid shape).
    """

    units: int
    digest: str
    detail: Mapping[str, Any]


@dataclass(frozen=True)
class BenchScenario:
    """One registered benchmark workload.

    Attributes
    ----------
    name:
        Registry key (also the key in the emitted JSON).
    description:
        One line of human context.
    unit:
        What ``ScenarioWork.units`` counts (``"rounds"``, ``"trials"``,
        ``"evaluations"``).
    ci:
        Whether the scenario belongs to the pinned CI ``perf-gate`` subset.
    run:
        Executes the scenario once, end to end, and returns its work record.
    """

    name: str
    description: str
    unit: str
    ci: bool
    run: Callable[[], ScenarioWork]


def _digest_of(payload: Any) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# -- scenario implementations -------------------------------------------------


def _trapdoor_n64_trace_free() -> ScenarioWork:
    """Trace-free trapdoor N-scaling point: the engine hot-path yardstick.

    A fixed-length (4000-round) execution at the Theorem-10 parameter point
    ``F=8, t=3, N=64`` with staggered arrivals and a full-budget random
    jammer, streamed with :attr:`TraceLevel.NONE` — pure round-loop
    throughput, nothing buffered.
    """
    config = SimulationConfig(
        params=ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64),
        protocol_factory=protocol_factory("trapdoor"),
        activation=StaggeredActivation(count=8, spacing=3),
        adversary=RandomJammer(),
        max_rounds=4_000,
        seed=0,
        stop_when_synchronized=False,
        trace_level=TraceLevel.NONE,
    )
    result = simulate(config)
    return ScenarioWork(
        units=result.rounds_simulated,
        digest=execution_digest(result),
        detail={"trace_level": "none", "protocol": "trapdoor", "nodes": 8},
    )


def _trapdoor_n64_batch() -> ScenarioWork:
    """The lockstep batch kernel on the trace-free trapdoor yardstick.

    The same pinned configuration as :func:`_trapdoor_n64_trace_free`, but
    128 seeds executed in lockstep by :func:`repro.engine.batch.run_reduced_batch`
    — the vectorized counterpart of the scalar hot-path scenario, directly
    comparable per round.  The digest covers every trial's reduced scalars,
    so a determinism break in the kernel shows up as a digest change, not
    just a throughput change.
    """
    from repro.engine.batch import batchable, run_reduced_batch

    config = SimulationConfig(
        params=ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64),
        protocol_factory=protocol_factory("trapdoor"),
        activation=StaggeredActivation(count=8, spacing=3),
        adversary=RandomJammer(),
        max_rounds=4_000,
        seed=0,
        stop_when_synchronized=False,
        trace_level=TraceLevel.NONE,
    )
    assert batchable(config), "the pinned batch scenario must stay batchable"
    seeds = tuple(range(128))
    reduced = run_reduced_batch(config, seeds)
    rows = [
        [
            trial.seed,
            trial.synchronized,
            trial.agreement,
            trial.safety,
            trial.leader_count,
            trial.max_sync_latency,
            trial.rounds_simulated,
        ]
        for trial in reduced
    ]
    return ScenarioWork(
        units=sum(trial.rounds_simulated for trial in reduced),
        digest=_digest_of(rows),
        detail={
            "trace_level": "none",
            "protocol": "trapdoor",
            "nodes": 8,
            "trials": len(seeds),
            "kernel": "batch-lockstep",
        },
    )


def _gs_full_trace() -> ScenarioWork:
    """Full-trace Good Samaritan execution: recorder and trace buffering cost.

    Fixed length (1500 rounds) at ``F=8, t=3, N=64`` with simultaneous
    activation, recorded at :attr:`TraceLevel.FULL` — what every post-hoc
    trace consumer pays.
    """
    config = SimulationConfig(
        params=ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64),
        protocol_factory=protocol_factory("good-samaritan"),
        activation=SimultaneousActivation(count=8),
        adversary=RandomJammer(),
        max_rounds=1_500,
        seed=0,
        stop_when_synchronized=False,
        trace_level=TraceLevel.FULL,
    )
    result = simulate(config)
    return ScenarioWork(
        units=result.rounds_simulated,
        digest=execution_digest(result),
        detail={"trace_level": "full", "protocol": "good-samaritan", "nodes": 8},
    )


def _campaign_parallel_slice() -> ScenarioWork:
    """A small campaign executed on a 4-worker pool into a fresh store.

    Measures the end-to-end sweep path — grid expansion, process-pool
    dispatch, store transactions — on a 2-cell × 4-seed slice.  Each
    execution runs in a temporary store, and a bench-provenance row is
    recorded so the store itself names the bench run that produced it.
    """
    spec = CampaignSpec(
        name="bench-slice",
        protocols=("trapdoor", "good-samaritan"),
        workloads=("quiet_start",),
        frequencies=(4,),
        budgets=(1,),
        participants=(8,),
        node_counts=(2,),
        seeds=4,
        max_rounds=5_000,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with ResultStore(Path(tmp) / "bench-slice.db") as store:
            runner = CampaignRunner(spec, store, plan=ExecutionPlan(workers=4))
            progress = runner.run()
            rows = [
                {"key": key, "cell": description, "trials": [record.seed for record in records]}
                for key, description, records in store.iter_cells(spec.name)
            ]
            store.record_bench_provenance(
                rev="in-run", scenario="campaign_parallel_slice", payload={"cells": len(rows)}
            )
            provenance_rows = len(store.bench_provenance())
    trials = len(spec.seeds) * progress.total
    return ScenarioWork(
        units=trials,
        digest=_digest_of(rows),
        detail={
            "cells": progress.total,
            "seeds_per_cell": len(spec.seeds),
            "workers": 4,
            "provenance_rows": provenance_rows,
        },
    )


def _campaign_many_small_cells() -> ScenarioWork:
    """Many tiny cells on one persistent pool: the orchestration yardstick.

    A 16-cell trapdoor grid whose individual cells simulate for only a couple
    of milliseconds each — the regime where the pre-pool per-cell executor
    spin-up dominated end to end (the per-cell fresh-pool path measures ~3.7x
    slower on this grid; ``benchmarks/test_orchestration_throughput.py`` pins
    that ratio).  Exercises the full batched path: one
    :class:`~repro.engine.pool.ExecutionPool` for the whole campaign,
    template-and-delta chunk dispatch, in-worker reduction, WAL store, and
    grid-order atomic commits.  Unit: cells/second.
    """
    spec = CampaignSpec(
        name="bench-many-small-cells",
        protocols=("trapdoor",),
        workloads=("quiet_start",),
        frequencies=(4, 8),
        budgets=(0, 1),
        participants=(8, 16),
        node_counts=(2, 3),
        seeds=2,
        max_rounds=1_500,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        with ResultStore(Path(tmp) / "many-small-cells.db") as store:
            with CampaignRunner(spec, store, plan=ExecutionPlan(workers=2, pool_chunk=2)) as runner:
                progress = runner.run()
            rows = [
                {
                    "key": key,
                    "trials": [
                        [record.seed, record.max_sync_latency, record.rounds_simulated]
                        for record in records
                    ],
                }
                for key, _description, records in store.iter_cells(spec.name)
            ]
    return ScenarioWork(
        units=progress.executed,
        digest=_digest_of(rows),
        detail={
            "cells": progress.total,
            "seeds_per_cell": len(spec.seeds),
            "workers": 2,
            "pool_chunk": 2,
            "reduced": True,
        },
    )


def _search_generation() -> ScenarioWork:
    """Warm start plus one optimizer generation on one persistent pool.

    The per-candidate orchestration yardstick: every evaluation is a tiny
    2-seed batch, so the pre-pool path (a fresh executor per candidate) paid
    pool spin-up 14 times where this pays it once (measured ~3x end to end;
    ``benchmarks/test_orchestration_throughput.py`` pins the ratio).  Workers
    reduce each trial in-process, so only record-shaped scalars cross the
    process boundary.  Unit: evaluations/second.
    """
    objective = SearchObjective(
        protocol="trapdoor",
        workload="quiet_start",
        frequencies=4,
        budget=1,
        participants=8,
        node_count=2,
        seeds=2,
        max_rounds=1_500,
        metric="median_latency",
    )
    spec = SearchSpec(
        name="bench-search-generation",
        objective=objective,
        optimizer="random",
        population=8,
        generations=1,
        master_seed=5,
        warm_start=True,
    )
    with ResultStore(":memory:") as store:
        with StrategySearch(spec, store, plan=ExecutionPlan(workers=2, pool_chunk=2)) as search:
            result = search.run()
        best = result.best
    assert best is not None  # the warm start always evaluates something
    return ScenarioWork(
        units=result.executed,
        digest=_digest_of(
            {
                "best_key": best.key,
                "best_score": best.score,
                "evaluations": result.evaluations_total,
            }
        ),
        detail={
            "optimizer": spec.optimizer,
            "workers": 2,
            "pool_chunk": 2,
            "seeds_per_candidate": len(objective.seeds),
            "complete": result.complete,
        },
    )


def _search_warm_start() -> ScenarioWork:
    """The adversarial search's warm-start generation on an in-memory store.

    Evaluates every registered hand-written jammer (generation 0) for a small
    pinned objective — the fixed cost every `repro search run` pays before
    the optimizer proper starts.
    """
    objective = SearchObjective(
        protocol="trapdoor",
        workload="quiet_start",
        frequencies=4,
        budget=1,
        participants=8,
        node_count=2,
        seeds=2,
        max_rounds=3_000,
        metric="median_latency",
    )
    spec = SearchSpec(
        name="bench-warm-start",
        objective=objective,
        optimizer="hill-climb",
        population=2,
        generations=0,
        master_seed=0,
        warm_start=True,
    )
    with ResultStore(":memory:") as store:
        search = StrategySearch(spec, store)
        result = search.run()
        best = result.best
    return ScenarioWork(
        units=result.executed,
        digest=_digest_of(
            {
                "best_key": best.key if best is not None else None,
                "best_score": best.score if best is not None else None,
                "evaluations": result.evaluations_total,
            }
        ),
        detail={"optimizer": spec.optimizer, "complete": result.complete},
    )


#: The scenario registry, keyed by name (deterministic insertion order).
BENCH_SCENARIOS: dict[str, BenchScenario] = {
    scenario.name: scenario
    for scenario in (
        BenchScenario(
            name="trapdoor_n64_trace_free",
            description="trace-free trapdoor round loop at F=8, t=3, N=64 (4000 rounds)",
            unit="rounds",
            ci=True,
            run=_trapdoor_n64_trace_free,
        ),
        BenchScenario(
            name="trapdoor_n64_batch",
            description=(
                "vectorized lockstep batch kernel: 128 trace-free trapdoor seeds "
                "at F=8, t=3, N=64 (4000 rounds each) as numpy array ops"
            ),
            unit="rounds",
            ci=True,
            run=_trapdoor_n64_batch,
        ),
        BenchScenario(
            name="gs_full_trace",
            description="full-trace Good Samaritan round loop at F=8, t=3, N=64 (1500 rounds)",
            unit="rounds",
            ci=True,
            run=_gs_full_trace,
        ),
        BenchScenario(
            name="campaign_many_small_cells",
            description=(
                "16 tiny trapdoor cells x 2 seeds batched onto one persistent "
                "2-worker pool (chunked, in-worker reduction, WAL store)"
            ),
            unit="cells",
            ci=True,
            run=_campaign_many_small_cells,
        ),
        BenchScenario(
            name="search_generation",
            description=(
                "adversarial-search warm start + 1 random generation on one "
                "persistent 2-worker pool (2-seed candidates, in-worker reduction)"
            ),
            unit="evaluations",
            ci=True,
            run=_search_generation,
        ),
        BenchScenario(
            name="campaign_parallel_slice",
            description="2-cell x 4-seed campaign slice on a 4-worker pool with store checkpointing",
            unit="trials",
            ci=False,
            run=_campaign_parallel_slice,
        ),
        BenchScenario(
            name="search_warm_start",
            description="adversarial-search warm start (every registered jammer) on a tiny objective",
            unit="evaluations",
            ci=False,
            run=_search_warm_start,
        ),
    )
}


def ci_scenario_names() -> tuple[str, ...]:
    """The pinned subset the CI perf gate times."""
    return tuple(name for name, scenario in BENCH_SCENARIOS.items() if scenario.ci)


def resolve_scenarios(selection: str) -> tuple[BenchScenario, ...]:
    """Resolve a CLI selection string into scenarios.

    ``"all"`` means every registered scenario, ``"ci"`` the pinned CI subset,
    and anything else a comma-separated list of registry names.
    """
    if selection == "all":
        names: tuple[str, ...] = tuple(BENCH_SCENARIOS)
    elif selection == "ci":
        names = ci_scenario_names()
    else:
        names = tuple(part.strip() for part in selection.split(",") if part.strip())
        if not names:
            raise ConfigurationError(f"no scenario names in selection {selection!r}")
    unknown = [name for name in names if name not in BENCH_SCENARIOS]
    if unknown:
        known = ", ".join(BENCH_SCENARIOS)
        raise ConfigurationError(f"unknown bench scenarios {unknown}; known: {known}")
    return tuple(BENCH_SCENARIOS[name] for name in names)
