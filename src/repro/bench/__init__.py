"""The performance-benchmark subsystem.

``repro.bench`` makes the simulator's speed a measured, regression-gated
artefact instead of folklore:

* :mod:`repro.bench.scenarios` — a registry of pinned benchmark workloads
  (trace-free trapdoor throughput, full-trace Good Samaritan, a parallel
  campaign slice, a search warm start), each returning a deterministic work
  digest alongside its work count;
* :mod:`repro.bench.harness` — a warmup/repeat/median timing harness plus a
  machine-speed calibration loop, so throughputs can be normalized and
  compared across hosts;
* :mod:`repro.bench.report` — schema-versioned JSON emission
  (``BENCH_<rev>.json``) and baseline comparison with a regression tolerance
  (what the CI ``perf-gate`` job runs).
"""

from repro.bench.harness import BenchMeasurement, BenchRun, calibration_rate, run_bench
from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    bench_run_to_dict,
    compare_bench,
    load_bench_json,
    write_bench_json,
)
from repro.bench.scenarios import BENCH_SCENARIOS, BenchScenario, ScenarioWork, ci_scenario_names

__all__ = [
    "BENCH_SCENARIOS",
    "BENCH_SCHEMA_VERSION",
    "BenchMeasurement",
    "BenchRun",
    "BenchScenario",
    "ScenarioWork",
    "bench_run_to_dict",
    "calibration_rate",
    "ci_scenario_names",
    "compare_bench",
    "load_bench_json",
    "run_bench",
    "write_bench_json",
]
