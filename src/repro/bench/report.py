"""Schema-versioned bench JSON and baseline comparison.

``repro bench run`` writes one ``BENCH_<rev>.json`` per invocation; the
committed ``benchmarks/baseline.json`` is simply a blessed copy of one such
file.  ``repro bench compare`` loads both, lines the scenarios up, and fails
(exit code 1) when any scenario's throughput regressed beyond the tolerance.

Comparisons default to the **normalized** throughput (scenario throughput ÷
the run's own machine-calibration rate, see :mod:`repro.bench.harness`), so a
baseline recorded on one machine remains meaningful on another: both runs are
measured relative to their own host's Python speed.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional

from repro.bench.harness import BenchRun
from repro.exceptions import ConfigurationError

#: Version of the emitted JSON layout.  Bump on any incompatible change;
#: `load_bench_json` refuses files written by a different version.
BENCH_SCHEMA_VERSION = 1

#: The comparison metrics `compare_bench` understands.
COMPARISON_METRICS = ("normalized_throughput", "throughput")


def bench_run_to_dict(run: BenchRun) -> dict[str, Any]:
    """The JSON-serializable form of a bench run.

    Everything under a scenario's ``work``/``units``/``digest`` keys is
    deterministic for a given revision; the timing keys (``samples_seconds``,
    ``median_seconds``, ``throughput``, ``normalized_throughput``) and the
    top-level ``created_utc``/``calibration_rate`` vary run to run.

    A run recorded with a live telemetry handle additionally carries the
    harness's metrics snapshot under a top-level ``telemetry`` key; runs
    without one omit the key entirely, so pre-telemetry payloads and
    comparisons (which only read ``scenarios``) are unaffected.
    """
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "rev": run.rev,
        "python": platform.python_version(),
        "created_utc": datetime.now(timezone.utc).isoformat(),
        "calibration_rate": run.calibration,
        "repeats": run.repeats,
        "warmup": run.warmup,
        "scenarios": {
            measurement.scenario.name: {
                "description": measurement.scenario.description,
                "unit": measurement.scenario.unit,
                "ci": measurement.scenario.ci,
                "units": measurement.work.units,
                "digest": measurement.work.digest,
                "detail": dict(measurement.work.detail),
                "samples_seconds": list(measurement.seconds),
                "median_seconds": measurement.median_seconds,
                "throughput": measurement.throughput,
                "normalized_throughput": measurement.normalized_throughput(run.calibration),
            }
            for measurement in run.measurements
        },
    }
    if run.telemetry_snapshot is not None:
        payload["telemetry"] = run.telemetry_snapshot
    return payload


def write_bench_json(run: BenchRun, path: str | Path) -> Path:
    """Write a bench run as schema-versioned JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(bench_run_to_dict(run), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_bench_json(path: str | Path) -> dict[str, Any]:
    """Load a bench JSON file, refusing incompatible schema versions."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema")
    if schema != BENCH_SCHEMA_VERSION:
        raise ConfigurationError(
            f"bench file {source} has schema {schema!r}, but this build reads "
            f"schema {BENCH_SCHEMA_VERSION}; re-run `repro bench run` to refresh it"
        )
    return data


@dataclass(frozen=True)
class ScenarioComparison:
    """One scenario's baseline-vs-current verdict.

    Attributes
    ----------
    scenario:
        Scenario name.
    baseline, current:
        The compared metric values (``None`` when the scenario is missing on
        that side).
    ratio:
        ``current / baseline`` when both sides are present.
    regressed:
        True when the current value fell below ``baseline * (1 - tolerance)``,
        or when the scenario's result digest changed at unchanged work units
        (a determinism break gates regardless of speed).
    note:
        ``"ok"``, ``"regressed"``, ``"missing-current"``, ``"new"``,
        ``"work-changed"`` (work units differ — the ratio is not
        apples-to-apples and is reported but never gates), or
        ``"digest-changed"`` (same work units, different result digest —
        the scenario computed a *different answer*, which always gates so a
        determinism break cannot masquerade as a benign work change).
    """

    scenario: str
    baseline: Optional[float]
    current: Optional[float]
    ratio: Optional[float]
    regressed: bool
    note: str


@dataclass(frozen=True)
class BenchComparison:
    """The outcome of comparing a bench run against a baseline."""

    metric: str
    tolerance: float
    entries: tuple[ScenarioComparison, ...]

    @property
    def regressions(self) -> tuple[ScenarioComparison, ...]:
        """The entries that regressed beyond the tolerance."""
        return tuple(entry for entry in self.entries if entry.regressed)

    @property
    def ok(self) -> bool:
        """True when nothing regressed (the CI gate passes)."""
        return not self.regressions


def comparison_to_dict(comparison: "BenchComparison") -> dict[str, Any]:
    """The JSON-serializable form of a comparison (``bench compare --json``).

    What CI uploads as the machine-readable gate artifact: the metric and
    tolerance the gate ran with, the overall verdict, and one entry per
    scenario mirroring :class:`ScenarioComparison`.
    """
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "bench-comparison",
        "metric": comparison.metric,
        "tolerance": comparison.tolerance,
        "ok": comparison.ok,
        "regressions": [entry.scenario for entry in comparison.regressions],
        "scenarios": {
            entry.scenario: {
                "baseline": entry.baseline,
                "current": entry.current,
                "ratio": entry.ratio,
                "regressed": entry.regressed,
                "note": entry.note,
            }
            for entry in comparison.entries
        },
    }


def compare_bench(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.25,
    metric: str = "normalized_throughput",
) -> BenchComparison:
    """Compare two loaded bench payloads scenario by scenario.

    Parameters
    ----------
    current, baseline:
        Payloads from :func:`load_bench_json` (or :func:`bench_run_to_dict`).
    tolerance:
        Allowed fractional slowdown: a scenario regresses when its current
        metric is below ``baseline * (1 - tolerance)``.
    metric:
        ``"normalized_throughput"`` (default, machine-independent) or
        ``"throughput"`` (raw units/second — same-machine comparisons only).

    Scenarios present only in the baseline are reported as
    ``missing-current`` but do not gate (CI times a pinned subset); scenarios
    present only in the current run are ``new``.
    """
    if not 0.0 < tolerance < 1.0:
        raise ConfigurationError(f"tolerance must be in (0, 1), got {tolerance}")
    if metric not in COMPARISON_METRICS:
        raise ConfigurationError(
            f"unknown comparison metric {metric!r}; known: {', '.join(COMPARISON_METRICS)}"
        )
    current_scenarios = current.get("scenarios", {})
    baseline_scenarios = baseline.get("scenarios", {})
    entries: list[ScenarioComparison] = []
    for name in sorted(baseline_scenarios.keys() | current_scenarios.keys()):
        baseline_entry = baseline_scenarios.get(name)
        current_entry = current_scenarios.get(name)
        if current_entry is None:
            entries.append(
                ScenarioComparison(
                    scenario=name,
                    baseline=baseline_entry[metric],
                    current=None,
                    ratio=None,
                    regressed=False,
                    note="missing-current",
                )
            )
            continue
        if baseline_entry is None:
            entries.append(
                ScenarioComparison(
                    scenario=name,
                    baseline=None,
                    current=current_entry[metric],
                    ratio=None,
                    regressed=False,
                    note="new",
                )
            )
            continue
        baseline_value = float(baseline_entry[metric])
        current_value = float(current_entry[metric])
        ratio = current_value / baseline_value if baseline_value else None
        baseline_digest = baseline_entry.get("digest")
        current_digest = current_entry.get("digest")
        if current_entry.get("units") != baseline_entry.get("units"):
            # Deliberate workload change (e.g. a scenario now does more work):
            # the ratio is not comparable, so throughput never gates here.
            note = "work-changed"
            regressed = False
        elif (
            baseline_digest is not None
            and current_digest is not None
            and current_digest != baseline_digest
        ):
            # Same amount of work, different answer: a determinism break, not
            # a perf delta.  Always gates — speed cannot buy it back.
            note = "digest-changed"
            regressed = True
        else:
            regressed = current_value < baseline_value * (1.0 - tolerance)
            note = "regressed" if regressed else "ok"
        entries.append(
            ScenarioComparison(
                scenario=name,
                baseline=baseline_value,
                current=current_value,
                ratio=ratio,
                regressed=regressed,
                note=note,
            )
        )
    return BenchComparison(metric=metric, tolerance=tolerance, entries=tuple(entries))
