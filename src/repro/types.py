"""Shared primitive types used across the library.

The simulator, adversaries, and protocols all speak in terms of a few simple
identifiers and enumerations.  Keeping them in one module avoids circular
imports between the packages.
"""

from __future__ import annotations

import enum
from typing import Optional

#: Identifier of a simulated node.  Node ids are small consecutive integers
#: assigned by the simulator; they are *not* visible to protocols (protocols
#: see only their randomly drawn unique identifier).
NodeId = int

#: A frequency index.  Frequencies are 1-based, matching the paper's notation
#: ``[1 .. F]``.
Frequency = int

#: A global round index (1-based).  Only the simulator knows global rounds;
#: protocols see their local activation age.
GlobalRound = int

#: A local round index (1-based): the number of rounds a node has been active.
LocalRound = int

#: The value a node outputs each round: a round number, or ``None`` for the
#: paper's ``⊥``.
SyncOutput = Optional[int]


class Intent(enum.Enum):
    """What a node does with its chosen frequency in a round."""

    BROADCAST = "broadcast"
    LISTEN = "listen"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Role(enum.Enum):
    """Coarse protocol roles, used for reporting and metrics.

    Not every protocol uses every role; baselines typically only use
    ``CONTENDER``, ``LEADER`` and ``SYNCHRONIZED``.
    """

    CONTENDER = "contender"
    SAMARITAN = "samaritan"
    KNOCKED_OUT = "knocked_out"
    LEADER = "leader"
    SYNCHRONIZED = "synchronized"
    PASSIVE = "passive"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
