"""Exception hierarchy for the ``repro`` library.

Every exception raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A model, protocol, or experiment was configured with invalid parameters.

    Examples include a disruption budget ``t >= F``, a frequency index outside
    the band, or a non-power-of-two participant bound where one is required.
    """


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state.

    This indicates a bug in a protocol or adversary implementation (for
    example, a protocol returning an action for a node that is not active),
    not a misuse of the public API.
    """


class ProtocolViolationError(ReproError):
    """A protocol produced output that violates the problem specification.

    Raised by the strict mode of :class:`repro.engine.checker.PropertyChecker`
    when a trace breaks validity, synch-commit, correctness, or agreement.
    """


class ExperimentError(ReproError):
    """An experiment definition or harness invocation was invalid."""
