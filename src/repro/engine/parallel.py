"""Parallel execution of independent simulation configurations.

Every configuration carries its own master seed and all randomness in an
execution derives from it, so executions are embarrassingly parallel and a
parallel run is bit-for-bit the same batch as a serial one, just faster.

There are three execution paths, chosen by the caller:

* **one-shot** (``pool=None``, the default) — :func:`run_configs` creates a
  fresh :class:`concurrent.futures.ProcessPoolExecutor`, farms the batch out,
  and tears the pool down before returning.  Right for a single ``trials``
  invocation or an isolated benchmark: nothing persists, nothing leaks.
* **pooled** (``pool=`` an :class:`~repro.engine.pool.ExecutionPool`) — the
  batch is dispatched in chunks onto a *persistent* worker pool that the
  caller reuses across many batches.  Campaign runners and adversarial search
  hold one pool for their whole session, which removes the per-batch pool
  spin-up/teardown and most of the pickling that otherwise dominate sweeps of
  small cells.
* **batched** (``batch=True`` on the runner / pool seed-chunk entry points) —
  same-template multi-seed work units execute on the vectorized lockstep
  kernel (:mod:`repro.engine.batch`): the whole chunk advances through the
  round loop as numpy array ops, amortizing the per-round interpreter cost
  across seeds.  Only trace-free batchable configurations qualify
  (:func:`repro.engine.batch.batchable`); anything else transparently falls
  back to the scalar loop.  Composes with both paths above — a pooled batched
  run vectorizes inside each worker.

Results are bit-identical on every path (the golden-equivalence suite pins
this).

Telemetry sits at the orchestration boundaries of these paths, never inside
them: a live :class:`~repro.telemetry.Telemetry` handle on an
:class:`~repro.engine.pool.ExecutionPool` counts each chunk at dispatch
(``chunk-dispatched`` events, the in-flight queue-depth gauge, scalar/batch
path counters), campaign runners open timing spans around the phases that
*surround* execution (``campaign.run`` > ``campaign.dispatch`` /
``campaign.cell`` > ``campaign.execute`` / ``campaign.commit``), the search
wraps each live candidate in a ``search.evaluate`` span, and the bench
harness wraps each timed scenario in ``bench.scenario``.  Nothing
telemetry-shaped crosses the process boundary and no span or instrument call
is ever made per simulated round — worker code and the round loops in
:mod:`repro.engine.simulator` / :mod:`repro.engine.batch` are untouched
(``benchmarks/test_telemetry_overhead.py`` pins that boundary statically).

Configurations must be picklable to cross the process boundary (every
built-in protocol factory, activation schedule, and adversary is).  When a
caller hands us something unpicklable — typically a hand-rolled closure
factory in a test — we fall back to serial execution with a warning rather
than failing the sweep.  The batch is probed *before* anything is submitted,
so the fallback decision is made on the full batch exactly once and a genuine
worker exception can never be misread as a pickling problem (nor vice versa).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.engine.pool import warn_serial_fallback
from repro.engine.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.pool import ExecutionPool
    from repro.engine.simulator import SimulationConfig


def _execute(config: "SimulationConfig") -> SimulationResult:
    """Worker entry point: run one configuration to completion."""
    from repro.engine.simulator import simulate

    return simulate(config)


def run_configs(
    configs: Sequence["SimulationConfig"],
    workers: int,
    pool: "ExecutionPool | None" = None,
) -> list[SimulationResult]:
    """Run every configuration, using up to ``workers`` processes.

    Parameters
    ----------
    configs:
        Fully prepared configurations (per-seed substitution already applied).
    workers:
        Maximum number of worker processes.  ``workers <= 1`` or a single
        configuration short-circuits to serial execution in-process.  Ignored
        when ``pool`` is given.
    pool:
        Optional persistent :class:`~repro.engine.pool.ExecutionPool` to
        dispatch on instead of a fresh one-shot executor.

    Returns
    -------
    list[SimulationResult]
        One result per configuration, in input order.
    """
    config_list = list(configs)
    if pool is not None:
        return pool.run_configs(config_list)
    if workers <= 1 or len(config_list) <= 1:
        return [_execute(config) for config in config_list]

    # Probe the whole batch up front: submission would pickle every config
    # anyway, and deciding serial-vs-parallel *before* any work is dispatched
    # means a pickling problem can never surface mid-batch (where it used to
    # race the executor's own consumption of the input and could re-raise
    # spuriously) and a genuine worker exception always propagates unchanged.
    try:
        pickle.dumps(config_list)
    except Exception as error:  # noqa: BLE001 - any pickling failure means no IPC
        warn_serial_fallback(str(error), stacklevel=2)
        return [_execute(config) for config in config_list]

    max_workers = min(workers, len(config_list))
    with ProcessPoolExecutor(max_workers=max_workers) as executor:
        # Executor.map preserves input order, which keeps result ordering
        # (and therefore every TrialSummary statistic) identical to a serial run.
        return list(executor.map(_execute, config_list))
