"""Parallel execution of independent simulation configurations.

Every configuration carries its own master seed and all randomness in an
execution derives from it, so executions are embarrassingly parallel:
:func:`run_configs` farms them out to a :class:`concurrent.futures.ProcessPoolExecutor`
and returns the results in the *same order* as the input configurations —
a parallel run is bit-for-bit the same batch as a serial one, just faster.

Configurations must be picklable to cross the process boundary (every
built-in protocol factory, activation schedule, and adversary is).  When a
caller hands us something unpicklable — typically a hand-rolled closure
factory in a test — we fall back to serial execution with a warning rather
than failing the sweep.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

from repro.engine.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.simulator import SimulationConfig


def _execute(config: "SimulationConfig") -> SimulationResult:
    """Worker entry point: run one configuration to completion."""
    from repro.engine.simulator import simulate

    return simulate(config)


def run_configs(
    configs: Sequence["SimulationConfig"],
    workers: int,
) -> list[SimulationResult]:
    """Run every configuration, using up to ``workers`` processes.

    Parameters
    ----------
    configs:
        Fully prepared configurations (per-seed substitution already applied).
    workers:
        Maximum number of worker processes.  ``workers <= 1`` or a single
        configuration short-circuits to serial execution in-process.

    Returns
    -------
    list[SimulationResult]
        One result per configuration, in input order.
    """
    if workers <= 1 or len(configs) <= 1:
        return [_execute(config) for config in configs]

    max_workers = min(workers, len(configs))
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            # Executor.map preserves input order, which keeps result ordering
            # (and therefore every TrialSummary statistic) identical to a serial run.
            return list(pool.map(_execute, configs))
    except (pickle.PicklingError, AttributeError, TypeError) as error:
        # These exception types can mean an unpicklable config (e.g. a
        # closure-built factory, possibly installed by a per-seed hook for
        # only some seeds) — or a genuine bug inside a worker.  Probe the
        # configs to tell the two apart; only a confirmed pickling problem
        # triggers the serial fallback.  Executions are deterministic per
        # seed, so redoing any partially completed work yields the same
        # results.
        try:
            pickle.dumps(list(configs))
        except Exception:  # noqa: BLE001 - any pickling failure means no IPC
            warnings.warn(
                f"simulation config is not picklable ({error}); "
                "running trials serially instead of with worker processes",
                RuntimeWarning,
                stacklevel=2,
            )
            return [_execute(config) for config in configs]
        raise
