"""The round-driven simulator.

The simulator realizes the model of §2 as a synchronous loop.  In every
global round it:

1. activates the nodes the activation schedule designates for the round;
2. asks every active node's protocol for its radio action;
3. asks the interference adversary for its disruption set (the adversary sees
   the execution only through the *previous* round);
4. resolves the round on the :class:`~repro.radio.network.SingleHopRadioNetwork`
   (collision rule + disruption);
5. delivers each node's reception outcome and streams the resolved round to
   the observer pipeline (trace recorder, property checker, metrics
   collector, spectrum log, plus any caller-supplied observers).

Properties and metrics are computed *incrementally* as the execution streams
by, so a run with :attr:`~repro.engine.observers.TraceLevel.NONE` buffers no
per-round history at all and still produces the same report and metrics as a
full-trace run.

The loop ends when every node that will ever be activated has synchronized
(plus an optional grace period), or when ``max_rounds`` is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.adversary.activation import ActivationSchedule
from repro.adversary.base import AdversaryContext, InterferenceAdversary
from repro.adversary.jammers import NoInterference
from repro.engine.checker import StreamingPropertyChecker
from repro.engine.metrics import MetricsObserver
from repro.engine.node import NodeRuntime
from repro.engine.observers import RoundObserver, TraceLevel, TraceRecorder
from repro.engine.results import SimulationResult
from repro.engine.rng import RandomStreams
from repro.engine.trace import RoundRecord
from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.stabilization import StabilizationTracker
from repro.params import ModelParameters
from repro.protocols.base import ProtocolContext, ProtocolFactory, SynchronizationProtocol
from repro.radio.actions import RadioAction
from repro.radio.network import SingleHopRadioNetwork
from repro.radio.spectrum_log import SpectrumLog
from repro.types import NodeId, Role, SyncOutput


@dataclass
class SimulationConfig:
    """Everything needed to run one execution.

    Attributes
    ----------
    params:
        The model parameters ``(F, t, N)``.
    protocol_factory:
        Builds one protocol instance per activated node.
    activation:
        When each node wakes up.
    adversary:
        The interference adversary (default: no interference).
    max_rounds:
        Hard cap on the number of simulated rounds.
    seed:
        Master seed; all randomness in the execution derives from it.
    stop_when_synchronized:
        Stop as soon as every activated node has synchronized and no further
        activations are pending (default) — otherwise run to ``max_rounds``.
    extra_rounds_after_sync:
        Grace period simulated after global synchronization, useful when a
        test wants to observe post-synchronization behaviour (e.g. that the
        round numbers keep incrementing).
    enforce_budget:
        Check every round that the adversary respects its budget ``t``.
    trace_level:
        How much per-round history to retain (default:
        :attr:`~repro.engine.observers.TraceLevel.FULL`, the seed behaviour).
        With ``NONE``, :attr:`SimulationResult.trace` is ``None``; the
        property report and the metrics are unaffected.
    trace_sample_interval:
        With :attr:`~repro.engine.observers.TraceLevel.SAMPLED`, keep one
        round record in every ``trace_sample_interval``.
    spectrum_window:
        Optional bound on the spectrum log's retained history (the aggregate
        occupancy counters adversaries use still cover the full execution).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into the
        round loop (churn, Byzantine nodes, transient corruption).  An empty
        plan is normalized to ``None``, so fault-free executions — and their
        golden digests — are bit-identical whether the field was omitted or
        set to an empty plan.
    """

    params: ModelParameters
    protocol_factory: ProtocolFactory
    activation: ActivationSchedule
    adversary: InterferenceAdversary = field(default_factory=NoInterference)
    max_rounds: int = 20_000
    seed: int = 0
    stop_when_synchronized: bool = True
    extra_rounds_after_sync: int = 0
    enforce_budget: bool = True
    trace_level: TraceLevel = TraceLevel.FULL
    trace_sample_interval: int = 100
    spectrum_window: Optional[int] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.faults is not None and self.faults.empty:
            self.faults = None
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be positive, got {self.max_rounds}")
        if self.extra_rounds_after_sync < 0:
            raise ConfigurationError(
                f"extra_rounds_after_sync must be non-negative, got {self.extra_rounds_after_sync}"
            )
        if self.trace_sample_interval < 1:
            raise ConfigurationError(
                f"trace_sample_interval must be positive, got {self.trace_sample_interval}"
            )
        if self.spectrum_window is not None and self.spectrum_window < 1:
            raise ConfigurationError(
                f"spectrum_window must be positive, got {self.spectrum_window}"
            )
        if self.activation.node_count > self.params.participant_bound:
            raise ConfigurationError(
                f"activation schedule wakes up {self.activation.node_count} nodes, "
                f"but the participant bound is N={self.params.participant_bound}"
            )


class Simulator:
    """Drives one execution of a protocol against an adversary.

    Parameters
    ----------
    config:
        The simulation configuration.
    observers:
        Additional streaming :class:`~repro.engine.observers.RoundObserver`
        instances notified after the built-in pipeline (spectrum log, trace
        recorder, checker, metrics).
    """

    def __init__(
        self,
        config: SimulationConfig,
        observers: Sequence[RoundObserver] = (),
    ) -> None:
        self._config = config
        self._streams = RandomStreams(config.seed)
        self._network = SingleHopRadioNetwork(config.params.band)
        # Factories with per-execution state (e.g. crash injection counting
        # activations) expose fresh(); take a reset copy so reusing one config
        # across seeds — serially or in workers — cannot leak state between runs.
        factory = config.protocol_factory
        fresh = getattr(factory, "fresh", None)
        self._protocol_factory: ProtocolFactory = fresh() if callable(fresh) else factory
        self._spectrum = SpectrumLog(window=config.spectrum_window)
        self._extra_observers = tuple(observers)
        # Nodes never deactivate, so this insertion-ordered mapping *is* the
        # active set: `_activate` appends and the round loop iterates it
        # directly instead of rebuilding a filtered copy every round.
        self._nodes: dict[NodeId, NodeRuntime] = {}
        # Per-node hot-path dispatch: (node_id, runtime, protocol, context)
        # rows appended at activation, so the round loop drives each protocol
        # directly instead of going through the runtime's guarded wrappers.
        self._active_rows: list[
            tuple[NodeId, NodeRuntime, SynchronizationProtocol, ProtocolContext]
        ] = []
        self._synced_nodes: set[NodeId] = set()
        self._leader_uids: set[int] = set()
        self._pending_activations = config.activation.node_count

    @property
    def config(self) -> SimulationConfig:
        """The configuration this simulator was built with."""
        return self._config

    def run(self) -> SimulationResult:
        """Run the execution to completion and return its result."""
        config = self._config
        activation_rng = self._streams.activation_stream()
        adversary_rng = self._streams.adversary_stream()

        recorder: TraceRecorder | None = None
        if config.trace_level is not TraceLevel.NONE:
            recorder = TraceRecorder(
                level=config.trace_level, sample_interval=config.trace_sample_interval
            )
        injector: FaultInjector | None = None
        if config.faults is not None:
            injector = FaultInjector(
                config.faults, self._streams, config.activation.node_count, config.params
            )
        checker = StreamingPropertyChecker(
            exclude=injector.byzantine_nodes if injector is not None else frozenset()
        )
        metrics = MetricsObserver()
        observers: tuple[RoundObserver, ...] = tuple(
            observer
            for observer in (self._spectrum, recorder, checker, metrics)
            if observer is not None
        ) + self._extra_observers

        for observer in observers:
            observer.on_simulation_start(config.params, config.seed)

        # Hot-path dispatch: the observer pipeline is fixed for the whole
        # execution, so bind every `on_round` once and notify through the
        # resulting tuple — one fast batched call site per round instead of a
        # per-observer attribute lookup.  With TraceLevel.NONE the tuple holds
        # no recorder at all: streaming observers only, nothing buffered.
        notify_round = tuple(observer.on_round for observer in observers)
        if injector is not None:
            # Fault-injected executions run a separate loop so the fault-free
            # hot path below stays exactly as the perf baseline pinned it (no
            # per-node membership checks added to every round).
            return self._run_with_faults(
                injector,
                checker,
                metrics,
                recorder,
                observers,
                notify_round,
                activation_rng,
                adversary_rng,
            )
        rows = self._active_rows
        activations_for_round = config.activation.activations_for_round
        resolve_round = self._network.resolve_round
        choose_disruption = self._choose_disruption
        synced_nodes = self._synced_nodes
        leader_uids = self._leader_uids
        leader_role = Role.LEADER

        rounds_simulated = 0
        grace_remaining: int | None = None
        for global_round in range(1, config.max_rounds + 1):
            activations = activations_for_round(global_round, activation_rng)
            if activations:
                self._activate(activations, global_round, observers)

            # The two per-node passes below inline NodeRuntime.begin_round /
            # choose_action / deliver / record_output: same state transitions,
            # one call per protocol hook instead of one per guarded wrapper.
            actions: dict[NodeId, RadioAction] = {}
            for node_id, node, protocol, context in rows:
                if node.outputs_recorded:
                    context.local_round += 1
                actions[node_id] = protocol.choose_action()

            disrupted = choose_disruption(global_round, adversary_rng, len(rows))
            resolution = resolve_round(global_round, actions, disrupted, activations)

            outputs: dict[NodeId, SyncOutput] = {}
            roles: dict[NodeId, Role] = {}
            outcomes = resolution.outcomes
            for node_id, node, protocol, context in rows:
                outcome = outcomes.get(node_id)
                if outcome is None:
                    raise SimulationError(
                        f"node {node_id} acted in round {global_round} but got no outcome"
                    )
                protocol.on_reception(outcome)
                output = protocol.current_output()
                if output is not None and node.first_sync_local_round is None:
                    node.first_sync_local_round = context.local_round
                    synced_nodes.add(node_id)
                node.outputs_recorded += 1
                outputs[node_id] = output
                role = protocol.role
                roles[node_id] = role
                if role is leader_role:
                    leader_uids.add(context.uid)

            record = RoundRecord(
                global_round=global_round,
                outputs=outputs,
                roles=roles,
                activity=resolution.activity,
            )
            for notify in notify_round:
                notify(record)
            rounds_simulated = global_round

            if self._should_stop(global_round):
                if grace_remaining is None:
                    grace_remaining = config.extra_rounds_after_sync
                if grace_remaining <= 0:
                    break
                grace_remaining -= 1
            else:
                grace_remaining = None

        for observer in observers:
            observer.on_simulation_end(rounds_simulated)

        return SimulationResult(
            trace=recorder.trace if recorder is not None else None,
            report=checker.report(),
            metrics=metrics.result(leader_uids=frozenset(self._leader_uids)),
        )

    def _run_with_faults(
        self,
        injector: FaultInjector,
        checker: StreamingPropertyChecker,
        metrics: MetricsObserver,
        recorder: TraceRecorder | None,
        observers: tuple[RoundObserver, ...],
        notify_round: tuple,
        activation_rng,
        adversary_rng,
    ) -> SimulationResult:
        """The fault-injected twin of the :meth:`run` round loop.

        Same per-node state transitions, plus: scheduled faults applied at
        each round start, Byzantine nodes' actions replaced by forged
        broadcasts (their protocol instances are bypassed entirely once they
        turn — no reception, ⊥ output, CONTENDER role), and a per-round
        convergence observation fed to the stabilization tracker.  The run
        stops once every activation *and* every scheduled fault has happened
        and the present honest nodes have reconverged.
        """
        config = self._config
        rows = self._active_rows
        activations_for_round = config.activation.activations_for_round
        resolve_round = self._network.resolve_round
        choose_disruption = self._choose_disruption
        synced_nodes = self._synced_nodes
        leader_uids = self._leader_uids
        leader_role = Role.LEADER
        contender_role = Role.CONTENDER
        byzantine = injector.byzantine_nodes
        tracker = StabilizationTracker()
        departed: dict[NodeId, NodeRuntime] = {}

        rounds_simulated = 0
        grace_remaining: int | None = None
        for global_round in range(1, config.max_rounds + 1):
            activations = activations_for_round(global_round, activation_rng)
            if activations:
                self._activate(activations, global_round, observers)

            injected = self._apply_faults(global_round, injector, checker, departed)
            if injector.byzantine_starts_at(global_round):
                injected = True
            if injected:
                tracker.record_epoch(global_round)

            forging = injector.byzantine_active(global_round)
            actions: dict[NodeId, RadioAction] = {}
            for node_id, node, protocol, context in rows:
                if forging and node_id in byzantine:
                    actions[node_id] = injector.byzantine_action(node_id)
                    continue
                if node.outputs_recorded:
                    context.local_round += 1
                actions[node_id] = protocol.choose_action()

            disrupted = choose_disruption(global_round, adversary_rng, len(rows))
            resolution = resolve_round(global_round, actions, disrupted, activations)

            outputs: dict[NodeId, SyncOutput] = {}
            roles: dict[NodeId, Role] = {}
            outcomes = resolution.outcomes
            distinct: set[int] = set()
            honest_present = 0
            unsynchronized = 0
            for node_id, node, protocol, context in rows:
                if forging and node_id in byzantine:
                    outputs[node_id] = None
                    roles[node_id] = contender_role
                    continue
                outcome = outcomes.get(node_id)
                if outcome is None:
                    raise SimulationError(
                        f"node {node_id} acted in round {global_round} but got no outcome"
                    )
                protocol.on_reception(outcome)
                output = protocol.current_output()
                if output is not None and node.first_sync_local_round is None:
                    node.first_sync_local_round = context.local_round
                    synced_nodes.add(node_id)
                node.outputs_recorded += 1
                outputs[node_id] = output
                role = protocol.role
                roles[node_id] = role
                if role is leader_role:
                    leader_uids.add(context.uid)
                honest_present += 1
                if output is None:
                    unsynchronized += 1
                else:
                    distinct.add(output)
            converged = honest_present > 0 and unsynchronized == 0 and len(distinct) <= 1
            tracker.observe_round(global_round, converged)

            record = RoundRecord(
                global_round=global_round,
                outputs=outputs,
                roles=roles,
                activity=resolution.activity,
            )
            for notify in notify_round:
                notify(record)
            rounds_simulated = global_round

            if self._should_stop_with_faults(global_round, injector, converged):
                if grace_remaining is None:
                    grace_remaining = config.extra_rounds_after_sync
                if grace_remaining <= 0:
                    break
                grace_remaining -= 1
            else:
                grace_remaining = None

        for observer in observers:
            observer.on_simulation_end(rounds_simulated)

        return SimulationResult(
            trace=recorder.trace if recorder is not None else None,
            report=checker.report(),
            metrics=metrics.result(leader_uids=frozenset(self._leader_uids)),
            stabilization=tracker.finalize(rounds_simulated),
        )

    # -- internals --------------------------------------------------------

    def _apply_faults(
        self,
        global_round: int,
        injector: FaultInjector,
        checker: StreamingPropertyChecker,
        departed: dict[NodeId, NodeRuntime],
    ) -> bool:
        """Apply the round's scheduled churn/corruption; True if anything fired.

        Events naming nodes that are not currently present (not yet
        activated, already departed, or — for corruption — Byzantine) are
        skipped, so one plan sweeps cleanly across node-count axes.
        """
        injected = False
        rows = self._active_rows
        for node_id in injector.leaves_at(global_round):
            for index, row in enumerate(rows):
                if row[0] == node_id:
                    departed[node_id] = row[1]
                    del rows[index]
                    injected = True
                    break
        for node_id in injector.rejoins_at(global_round):
            runtime = departed.pop(node_id, None)
            if runtime is None:
                continue
            runtime.reincarnate(
                injector.rejoin_stream(node_id, global_round), self._protocol_factory
            )
            rows.append((node_id, runtime, runtime.protocol, runtime.context))
            checker.reset_node(node_id)
            injected = True
        byzantine = injector.byzantine_nodes
        for node_id in injector.corruptions_at(global_round):
            if node_id in byzantine:
                continue
            for index, row in enumerate(rows):
                if row[0] == node_id:
                    runtime = row[1]
                    runtime.reincarnate(
                        injector.corruption_stream(node_id, global_round),
                        self._protocol_factory,
                    )
                    rows[index] = (node_id, runtime, runtime.protocol, runtime.context)
                    checker.reset_node(node_id)
                    injected = True
                    break
        return injected

    def _should_stop_with_faults(
        self, global_round: int, injector: FaultInjector, converged: bool
    ) -> bool:
        """Stop once activations and scheduled faults are exhausted and the
        present honest nodes have reconverged."""
        if not self._config.stop_when_synchronized:
            return False
        if self._pending_activations > 0:
            return False
        if global_round < self._config.activation.last_activation_round():
            return False
        if global_round < injector.last_fault_round:
            return False
        return converged

    def _activate(
        self,
        activations: tuple[NodeId, ...],
        global_round: int,
        observers: tuple[RoundObserver, ...],
    ) -> None:
        for node_id in activations:
            if node_id in self._nodes:
                raise SimulationError(f"activation schedule activated node {node_id} twice")
            runtime = NodeRuntime(
                node_id=node_id,
                params=self._config.params,
                rng=self._streams.node_stream(node_id),
            )
            runtime.activate(global_round, self._protocol_factory)
            self._nodes[node_id] = runtime
            self._active_rows.append((node_id, runtime, runtime.protocol, runtime.context))
            for observer in observers:
                observer.on_activation(node_id, global_round)
            self._pending_activations -= 1

    def _choose_disruption(self, global_round: int, adversary_rng, active_count: int):
        context = AdversaryContext(
            global_round=global_round,
            band=self._config.params.band,
            budget=self._config.params.disruption_budget,
            history=self._spectrum,
            rng=adversary_rng,
            active_node_count=active_count,
        )
        disrupted = self._config.adversary.choose_disruption(context)
        if self._config.enforce_budget:
            disrupted = self._network.validate_disruption_budget(
                disrupted, self._config.params.disruption_budget
            )
        return disrupted

    def _should_stop(self, global_round: int) -> bool:
        if not self._config.stop_when_synchronized:
            return False
        if self._pending_activations > 0:
            return False
        if global_round < self._config.activation.last_activation_round():
            return False
        if not self._nodes:
            return False
        # The synced-node set only grows (outputs latch), so this membership
        # count replaces the per-round scan over every node runtime.
        return len(self._synced_nodes) == len(self._nodes)


def simulate(config: SimulationConfig) -> SimulationResult:
    """Run one execution for ``config`` and return its result."""
    return Simulator(config).run()
