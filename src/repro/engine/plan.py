"""The unified public execution surface: :class:`ExecutionPlan`.

Execution knobs accreted across five call sites as the orchestration stack
grew — ``workers=`` (PR 1), ``pool=``/``pool_chunk=`` (PR 5), ``batch=``
(PR 6), and the telemetry output options (PR 7).  Before a network surface
freezes them (the campaign service ships jobs as JSON), they collapse into
one frozen, JSON-round-trippable plan object:

* :func:`~repro.engine.runner.run_trials`,
  :func:`~repro.engine.runner.run_reduced_trials`,
  :class:`~repro.campaigns.runner.CampaignRunner`,
  :class:`~repro.search.runner.StrategySearch`, and
  :class:`~repro.experiments.harness.ExperimentHarness` all accept ``plan=``;
* the legacy ``workers=`` / ``pool_chunk=`` / ``batch=`` keywords keep
  working (identical behavior) but raise :class:`DeprecationWarning` — they
  are one release away from removal;
* a service :class:`~repro.service.protocol.JobRequest` embeds the plan's
  JSON form verbatim, so the wire schema and the Python API are one surface.

A plan never changes results: it only chooses *where* work executes (serial,
worker pool, vectorized lockstep kernel) and what observability rides along.
The golden-equivalence suite pins ``plan=`` dispatch bit-identical to the
serial engine.  A live :class:`~repro.engine.pool.ExecutionPool` is
deliberately **not** part of the plan — pools are process-local handles that
cannot cross a serialization boundary; callers that share one pool across
subsystems keep passing ``pool=`` alongside the plan (the pool wins for
dispatch; the plan still contributes ``batch``).
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.pool import ExecutionPool
    from repro.telemetry import Telemetry

#: Schema tag embedded in every serialized plan.  Bump on any breaking field
#: change — the service refuses job requests whose plan schema it cannot read.
PLAN_SCHEMA = "repro.execution-plan/v1"


@dataclass(frozen=True, slots=True)
class ExecutionPlan:
    """How a batch of simulations should execute — one serializable object.

    Attributes
    ----------
    workers:
        Worker processes (``1`` = serial in-process execution).
    pool_chunk:
        Seeds per dispatched pool chunk (``None`` = automatic sizing).
    batch:
        Run same-template seed batches on the vectorized lockstep kernel
        (:mod:`repro.engine.batch`) where the configuration is batchable,
        with transparent scalar fallback otherwise.
    telemetry_events:
        Optional JSONL path for structured telemetry events.
    telemetry_rotate_bytes:
        Optional size cap for the events JSONL (one ``.1`` predecessor kept).
    metrics_out:
        Optional final metrics-snapshot path (JSON, or Prometheus text when
        the suffix is ``.prom``).

    None of these fields ever changes results — stores, checkpoints, and
    digests are bit-identical under every plan (the golden suite pins it).
    """

    workers: int = 1
    pool_chunk: Optional[int] = None
    batch: bool = False
    telemetry_events: Optional[str] = None
    telemetry_rotate_bytes: Optional[int] = None
    metrics_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"an execution plan needs >= 1 worker, got {self.workers}")
        if self.pool_chunk is not None and self.pool_chunk < 1:
            raise ConfigurationError(f"pool_chunk must be positive, got {self.pool_chunk}")
        if self.telemetry_rotate_bytes is not None and self.telemetry_rotate_bytes < 1:
            raise ConfigurationError(
                f"telemetry_rotate_bytes must be positive, got {self.telemetry_rotate_bytes}"
            )

    # -- derived views ------------------------------------------------------

    @property
    def parallel(self) -> bool:
        """True when the plan asks for worker processes."""
        return self.workers > 1

    def serial(self) -> "ExecutionPlan":
        """This plan forced onto one in-process worker (degrade paths)."""
        return replace(self, workers=1, pool_chunk=None)

    def pool(self, telemetry: "Optional[Telemetry]" = None) -> "Optional[ExecutionPool]":
        """A fresh :class:`~repro.engine.pool.ExecutionPool` per the plan.

        Returns ``None`` for a serial plan — callers treat that exactly like
        an absent pool.  The pool is *not* started here (it forks lazily on
        first dispatch); the caller owns its lifecycle.
        """
        if not self.parallel:
            return None
        from repro.engine.pool import ExecutionPool

        return ExecutionPool(self.workers, chunk_size=self.pool_chunk, telemetry=telemetry)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The plan as a JSON-shaped dict (schema-tagged, every field present)."""
        return {
            "schema": PLAN_SCHEMA,
            "workers": self.workers,
            "pool_chunk": self.pool_chunk,
            "batch": self.batch,
            "telemetry_events": self.telemetry_events,
            "telemetry_rotate_bytes": self.telemetry_rotate_bytes,
            "metrics_out": self.metrics_out,
        }

    def to_json(self) -> str:
        """The plan as canonical JSON text."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_dict` output (schema-checked, strict).

        Unknown keys are refused rather than silently dropped — a job request
        with a misspelled knob must fail admission, not run with defaults.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"an execution plan must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"unsupported execution-plan schema {schema!r} "
                f"(this build reads {PLAN_SCHEMA!r})"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known - {"schema"})
        if unknown:
            raise ConfigurationError(
                f"execution plan has unknown fields: {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
        return cls(**{name: data[name] for name in known if name in data})

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"execution plan is not valid JSON: {error}") from error
        return cls.from_dict(data)

    def describe(self) -> str:
        """One-line summary for logs and CLI banners."""
        parts = [f"{self.workers} worker(s)"]
        if self.pool_chunk is not None:
            parts.append(f"chunk {self.pool_chunk}")
        parts.append("batch kernel" if self.batch else "scalar loop")
        return ", ".join(parts)


def _warn_legacy(api: str, kwarg: str, stacklevel: int) -> None:
    warnings.warn(
        f"{api}({kwarg}=...) is deprecated; pass plan=ExecutionPlan({kwarg}=...) "
        "instead (see repro.engine.plan — the execution knobs are one "
        "serializable surface now)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_plan(
    plan: Optional[ExecutionPlan],
    *,
    api: str,
    stacklevel: int = 4,
    workers: Optional[int] = None,
    pool_chunk: Optional[int] = None,
    batch: bool = False,
) -> ExecutionPlan:
    """Fold legacy execution kwargs into a plan, deprecation-warning each.

    The one shared shim behind every ``plan=``-accepting entry point: with no
    legacy kwarg it returns ``plan`` (or the serial default) untouched; each
    legacy kwarg that *was* passed raises a :class:`DeprecationWarning` naming
    its replacement; mixing ``plan=`` with legacy kwargs is refused outright
    (two sources of truth for the same knob is exactly the accretion the plan
    replaces).
    """
    legacy: dict[str, Any] = {}
    if workers is not None:
        legacy["workers"] = workers
    if pool_chunk is not None:
        legacy["pool_chunk"] = pool_chunk
    if batch:
        legacy["batch"] = batch
    if not legacy:
        return plan if plan is not None else ExecutionPlan()
    if plan is not None:
        raise ConfigurationError(
            f"{api} got both plan= and legacy execution kwargs "
            f"({', '.join(sorted(legacy))}); fold everything into the plan"
        )
    for kwarg in legacy:
        _warn_legacy(api, kwarg, stacklevel)
    return ExecutionPlan(**legacy)
