"""Checking the five wireless-synchronization properties over a trace.

The problem definition (§3) lists validity, synch commit, correctness,
agreement, and liveness.  :class:`PropertyChecker` evaluates all of them over
an :class:`~repro.engine.trace.ExecutionTrace` and reports violations with
enough detail to debug a protocol.  Agreement and liveness are probabilistic
in the paper ("with high probability" / "with probability 1"), so the checker
reports them as booleans per execution; multi-seed statistics live in
:mod:`repro.engine.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.trace import ExecutionTrace
from repro.exceptions import ProtocolViolationError


@dataclass(frozen=True)
class PropertyViolation:
    """One observed violation of a problem property.

    Attributes
    ----------
    property_name:
        Which property was violated (``validity``, ``synch_commit``,
        ``correctness``, ``agreement``, ``liveness``).
    global_round:
        The round the violation was observed in (0 for liveness, which is a
        whole-execution property).
    node_id:
        The offending node, if the violation is attributable to one.
    detail:
        Human-readable description.
    """

    property_name: str
    global_round: int
    node_id: int | None
    detail: str


@dataclass
class PropertyReport:
    """The outcome of checking all five properties over one trace."""

    violations: list[PropertyViolation] = field(default_factory=list)
    liveness_achieved: bool = False
    synchronization_round: int | None = None

    @property
    def validity_holds(self) -> bool:
        """No validity violations were observed."""
        return not self._has("validity")

    @property
    def synch_commit_holds(self) -> bool:
        """No synch-commit violations were observed."""
        return not self._has("synch_commit")

    @property
    def correctness_holds(self) -> bool:
        """No correctness violations were observed."""
        return not self._has("correctness")

    @property
    def agreement_holds(self) -> bool:
        """No agreement violations were observed."""
        return not self._has("agreement")

    @property
    def all_safety_holds(self) -> bool:
        """Validity, synch commit, correctness, and agreement all hold."""
        return (
            self.validity_holds
            and self.synch_commit_holds
            and self.correctness_holds
            and self.agreement_holds
        )

    @property
    def all_hold(self) -> bool:
        """All five properties hold (safety plus liveness)."""
        return self.all_safety_holds and self.liveness_achieved

    def _has(self, property_name: str) -> bool:
        return any(v.property_name == property_name for v in self.violations)

    def raise_on_safety_violation(self) -> None:
        """Raise :class:`ProtocolViolationError` if any safety property failed."""
        if not self.all_safety_holds:
            first = next(v for v in self.violations if v.property_name != "liveness")
            raise ProtocolViolationError(
                f"{first.property_name} violated in round {first.global_round}: {first.detail}"
            )


class PropertyChecker:
    """Checks the five wireless-synchronization properties over a trace."""

    def check(self, trace: ExecutionTrace) -> PropertyReport:
        """Evaluate every property and return a :class:`PropertyReport`."""
        report = PropertyReport()
        self._check_per_round(trace, report)
        self._check_per_node(trace, report)
        self._check_liveness(trace, report)
        return report

    # -- individual properties -------------------------------------------

    def _check_per_round(self, trace: ExecutionTrace, report: PropertyReport) -> None:
        """Validity and agreement are per-round properties."""
        for record in trace:
            for node_id, output in record.outputs.items():
                if output is not None and (not isinstance(output, int) or output < 0):
                    report.violations.append(
                        PropertyViolation(
                            property_name="validity",
                            global_round=record.global_round,
                            node_id=node_id,
                            detail=f"output {output!r} is neither ⊥ nor a natural number",
                        )
                    )
            distinct = record.distinct_outputs()
            if len(distinct) > 1:
                report.violations.append(
                    PropertyViolation(
                        property_name="agreement",
                        global_round=record.global_round,
                        node_id=None,
                        detail=f"distinct non-⊥ outputs {sorted(distinct)} in the same round",
                    )
                )

    def _check_per_node(self, trace: ExecutionTrace, report: PropertyReport) -> None:
        """Synch commit and correctness are per-node sequence properties."""
        for node_id in trace.node_ids:
            outputs = trace.outputs_of(node_id)
            previous: int | None = None
            committed = False
            for offset, output in enumerate(outputs):
                global_round = trace.activation_rounds[node_id] + offset
                if committed and output is None:
                    report.violations.append(
                        PropertyViolation(
                            property_name="synch_commit",
                            global_round=global_round,
                            node_id=node_id,
                            detail="output returned to ⊥ after committing to a round number",
                        )
                    )
                if previous is not None and output is not None and output != previous + 1:
                    report.violations.append(
                        PropertyViolation(
                            property_name="correctness",
                            global_round=global_round,
                            node_id=node_id,
                            detail=f"output jumped from {previous} to {output} (expected {previous + 1})",
                        )
                    )
                if output is not None:
                    committed = True
                previous = output

    def _check_liveness(self, trace: ExecutionTrace, report: PropertyReport) -> None:
        """Liveness: every activated node eventually outputs a non-⊥ value."""
        report.liveness_achieved = trace.all_synchronized() and bool(trace.node_ids)
        if report.liveness_achieved:
            report.synchronization_round = trace.last_sync_round()
        else:
            unsynced = [
                node_id for node_id in trace.node_ids if trace.sync_round_of(node_id) is None
            ]
            report.violations.append(
                PropertyViolation(
                    property_name="liveness",
                    global_round=0,
                    node_id=unsynced[0] if unsynced else None,
                    detail=(
                        f"{len(unsynced)} node(s) never synchronized within "
                        f"{trace.rounds_simulated} rounds"
                    ),
                )
            )
