"""Checking the five wireless-synchronization properties.

The problem definition (§3) lists validity, synch commit, correctness,
agreement, and liveness.  :class:`StreamingPropertyChecker` evaluates all of
them *incrementally*, one resolved round at a time, as a
:class:`~repro.engine.observers.RoundObserver` — the simulator feeds it
directly, so no buffered trace is needed.  :class:`PropertyChecker` keeps the
historical post-hoc API (`check(trace)`) by replaying a buffered trace
through the streaming checker; both paths produce identical reports.
Agreement and liveness are probabilistic in the paper ("with high
probability" / "with probability 1"), so the checker reports them as booleans
per execution; multi-seed statistics live in :mod:`repro.engine.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.observers import BaseRoundObserver, replay_trace
from repro.engine.trace import ExecutionTrace, RoundRecord
from repro.exceptions import ProtocolViolationError
from repro.types import GlobalRound, NodeId


@dataclass(frozen=True)
class PropertyViolation:
    """One observed violation of a problem property.

    Attributes
    ----------
    property_name:
        Which property was violated (``validity``, ``synch_commit``,
        ``correctness``, ``agreement``, ``liveness``).
    global_round:
        The round the violation was observed in (0 for liveness, which is a
        whole-execution property).
    node_id:
        The offending node, if the violation is attributable to one.
    detail:
        Human-readable description.
    """

    property_name: str
    global_round: int
    node_id: int | None
    detail: str


@dataclass
class PropertyReport:
    """The outcome of checking all five properties over one trace."""

    violations: list[PropertyViolation] = field(default_factory=list)
    liveness_achieved: bool = False
    synchronization_round: int | None = None

    @property
    def validity_holds(self) -> bool:
        """No validity violations were observed."""
        return not self._has("validity")

    @property
    def synch_commit_holds(self) -> bool:
        """No synch-commit violations were observed."""
        return not self._has("synch_commit")

    @property
    def correctness_holds(self) -> bool:
        """No correctness violations were observed."""
        return not self._has("correctness")

    @property
    def agreement_holds(self) -> bool:
        """No agreement violations were observed."""
        return not self._has("agreement")

    @property
    def all_safety_holds(self) -> bool:
        """Validity, synch commit, correctness, and agreement all hold."""
        return (
            self.validity_holds
            and self.synch_commit_holds
            and self.correctness_holds
            and self.agreement_holds
        )

    @property
    def all_hold(self) -> bool:
        """All five properties hold (safety plus liveness)."""
        return self.all_safety_holds and self.liveness_achieved

    def _has(self, property_name: str) -> bool:
        return any(v.property_name == property_name for v in self.violations)

    def raise_on_safety_violation(self) -> None:
        """Raise :class:`ProtocolViolationError` if any safety property failed."""
        if not self.all_safety_holds:
            first = next(v for v in self.violations if v.property_name != "liveness")
            raise ProtocolViolationError(
                f"{first.property_name} violated in round {first.global_round}: {first.detail}"
            )


@dataclass
class _NodeCheckState:
    """Incremental per-node state for the sequence properties."""

    previous: int | None = None
    committed: bool = False
    first_sync_round: GlobalRound | None = None
    violations: list[PropertyViolation] = field(default_factory=list)


class StreamingPropertyChecker(BaseRoundObserver):
    """Evaluates the five properties incrementally, one round at a time.

    Feed it ``on_activation`` / ``on_round`` events (the simulator does this
    automatically) and call :meth:`report` at the end.  The report — including
    the order of recorded violations — is identical to what the historical
    post-hoc checker produced from a full trace.

    Parameters
    ----------
    exclude:
        Node ids exempt from every property (the fault subsystem passes the
        Byzantine set here — forging nodes are adversarial hardware, not
        protocol instances, so their behaviour proves nothing about the
        protocol).  Excluded nodes get no per-node state and do not count
        toward liveness.
    """

    def __init__(self, exclude: frozenset[NodeId] = frozenset()) -> None:
        self._nodes: dict[NodeId, _NodeCheckState] = {}
        self._round_violations: list[PropertyViolation] = []
        self._rounds_seen = 0
        self._exclude = exclude

    def on_activation(self, node_id: NodeId, global_round: GlobalRound) -> None:
        if node_id in self._exclude:
            return
        self._nodes[node_id] = _NodeCheckState()

    def reset_node(self, node_id: NodeId) -> None:
        """Forget a node's sequence state (fault injection only).

        Called when churn rejoin or transient corruption rebuilds a node's
        protocol from scratch: the fresh instance legitimately restarts at ⊥,
        so the synch-commit and correctness chains must restart with it.  The
        first-synchronization latch is kept — liveness asks whether the node
        *ever* synchronized.
        """
        state = self._nodes.get(node_id)
        if state is not None:
            state.previous = None
            state.committed = False

    def on_round(self, record: RoundRecord) -> None:
        """Fold one round into the incremental property state.

        This is hot-path code (one call per simulated round at every trace
        level): the per-property passes are fused into a single walk over the
        round's outputs.  The recorded violations — and their order — are
        identical to the historical multi-pass implementation: validity
        violations land in round order, the round's agreement violation (if
        any) right after them, and the per-node sequence violations accumulate
        on their node's own state.
        """
        self._rounds_seen += 1
        nodes = self._nodes
        round_violations = self._round_violations
        global_round = record.global_round
        distinct: set[int] = set()
        for node_id, output in record.outputs.items():
            if output is not None:
                if not isinstance(output, int) or output < 0:
                    round_violations.append(
                        PropertyViolation(
                            property_name="validity",
                            global_round=global_round,
                            node_id=node_id,
                            detail=f"output {output!r} is neither ⊥ nor a natural number",
                        )
                    )
                distinct.add(output)
            state = nodes.get(node_id)
            if state is None:
                continue
            previous = state.previous
            if output is None:
                if state.committed:
                    state.violations.append(
                        PropertyViolation(
                            property_name="synch_commit",
                            global_round=global_round,
                            node_id=node_id,
                            detail="output returned to ⊥ after committing to a round number",
                        )
                    )
            else:
                if previous is not None and output != previous + 1:
                    state.violations.append(
                        PropertyViolation(
                            property_name="correctness",
                            global_round=global_round,
                            node_id=node_id,
                            detail=(
                                f"output jumped from {previous} to {output} "
                                f"(expected {previous + 1})"
                            ),
                        )
                    )
                state.committed = True
                if state.first_sync_round is None:
                    state.first_sync_round = global_round
            state.previous = output
        if len(distinct) > 1:
            round_violations.append(
                PropertyViolation(
                    property_name="agreement",
                    global_round=global_round,
                    node_id=None,
                    detail=f"distinct non-⊥ outputs {sorted(distinct)} in the same round",
                )
            )

    def report(self) -> PropertyReport:
        """Assemble the final :class:`PropertyReport`."""
        report = PropertyReport()
        report.violations.extend(self._round_violations)
        for node_id in sorted(self._nodes):
            report.violations.extend(self._nodes[node_id].violations)
        sync_rounds = [state.first_sync_round for state in self._nodes.values()]
        report.liveness_achieved = bool(self._nodes) and all(
            r is not None for r in sync_rounds
        )
        if report.liveness_achieved:
            report.synchronization_round = max(sync_rounds)  # type: ignore[type-var]
        else:
            unsynced = sorted(
                node_id
                for node_id, state in self._nodes.items()
                if state.first_sync_round is None
            )
            report.violations.append(
                PropertyViolation(
                    property_name="liveness",
                    global_round=0,
                    node_id=unsynced[0] if unsynced else None,
                    detail=(
                        f"{len(unsynced)} node(s) never synchronized within "
                        f"{self._rounds_seen} rounds"
                    ),
                )
            )
        return report


class PropertyChecker:
    """Post-hoc property checking over a buffered trace.

    This is the historical API: it replays the trace through a
    :class:`StreamingPropertyChecker`, so the two produce identical reports.
    It requires a :data:`~repro.engine.observers.TraceLevel.FULL` trace.
    """

    def check(self, trace: ExecutionTrace) -> PropertyReport:
        """Evaluate every property and return a :class:`PropertyReport`."""
        trace.require_complete("PropertyChecker.check")
        checker = StreamingPropertyChecker()
        replay_trace(trace, checker)
        return checker.report()
