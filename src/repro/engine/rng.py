"""Deterministic random stream management.

Every stochastic component of a simulation (each node, the interference
adversary, the activation schedule) gets its own :class:`random.Random`
stream derived from a single master seed.  Deriving streams by hashing
``(master_seed, component label)`` keeps executions reproducible while
ensuring that adding a node or swapping an adversary does not perturb the
randomness of unrelated components.
"""

from __future__ import annotations

import hashlib
import random

#: Memoized label encodings.  Stream labels come from a small recurring
#: vocabulary ("node", node ids, "adversary", …) but the batch kernel derives
#: one stream per ``(trial, component)`` pair, so pre-drawing thousands of
#: trials would otherwise re-encode the same labels thousands of times.  Keys
#: include the label's type: ``1`` and ``True`` compare (and hash) equal but
#: encode differently.
_LABEL_CACHE: dict[tuple[type, object], bytes] = {}


def _encoded_label(label: object) -> bytes:
    try:
        key = (type(label), label)
        cached = _LABEL_CACHE.get(key)
    except TypeError:  # unhashable label: encode without caching
        return b"/" + str(label).encode("utf-8")
    if cached is None:
        cached = _LABEL_CACHE[key] = b"/" + str(label).encode("utf-8")
    return cached


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a 64-bit child seed from a master seed and a label path.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for label in labels:
        digest.update(_encoded_label(label))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomStreams:
    """A factory of named, reproducible random streams.

    Parameters
    ----------
    master_seed:
        The experiment-level seed.  Two :class:`RandomStreams` built from the
        same master seed hand out identical streams for identical labels.
    """

    def __init__(self, master_seed: int) -> None:
        self._master_seed = master_seed

    @property
    def master_seed(self) -> int:
        """The master seed this factory derives from."""
        return self._master_seed

    def stream(self, *labels: object) -> random.Random:
        """A fresh :class:`random.Random` for the given label path."""
        return random.Random(derive_seed(self._master_seed, *labels))

    def node_stream(self, node_id: int) -> random.Random:
        """The stream owned by node ``node_id``."""
        return self.stream("node", node_id)

    def adversary_stream(self) -> random.Random:
        """The stream owned by the interference adversary."""
        return self.stream("adversary")

    def activation_stream(self) -> random.Random:
        """The stream owned by the activation schedule."""
        return self.stream("activation")
