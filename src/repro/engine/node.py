"""Per-node runtime wrapper.

:class:`NodeRuntime` is the engine-side view of one simulated device: it owns
the node's :class:`~repro.protocols.base.ProtocolContext`, instantiates the
protocol at activation time, keeps the activation age up to date, and reports
the per-round outputs that the simulator streams to its observers (the
property checker among them).

The class is deliberately lean (``__slots__``, direct protocol references in
the per-round methods).  Note the hot-path split: the per-round methods here
(:meth:`begin_round`, :meth:`choose_action`, :meth:`deliver`,
:meth:`record_output`) are the *reference* implementation of the per-round
state transitions — used by tests and any driver that steps nodes manually —
but :meth:`repro.engine.simulator.Simulator.run` inlines the same transitions
into its round loop for speed.  **A behavioural change to any per-round
method below must be mirrored in the simulator's loop** (the engine
equivalence suite pins both against recorded goldens).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.exceptions import SimulationError
from repro.params import ModelParameters
from repro.protocols.base import ProtocolContext, ProtocolFactory, SynchronizationProtocol
from repro.timestamps import draw_uid
from repro.radio.actions import RadioAction
from repro.radio.events import ReceptionOutcome
from repro.types import GlobalRound, NodeId, Role, SyncOutput


class NodeRuntime:
    """The engine's wrapper around a single simulated node.

    Parameters
    ----------
    node_id:
        The engine-internal identifier (not visible to the protocol).
    params:
        Model parameters shared by the whole simulation.
    rng:
        The node's private random stream.
    """

    __slots__ = (
        "node_id",
        "_params",
        "_rng",
        "_protocol",
        "_context",
        "_activation_round",
        "outputs_recorded",
        "first_sync_local_round",
    )

    def __init__(self, node_id: NodeId, params: ModelParameters, rng: random.Random) -> None:
        self.node_id = node_id
        self._params = params
        self._rng = rng
        self._protocol: Optional[SynchronizationProtocol] = None
        self._context: Optional[ProtocolContext] = None
        self._activation_round: Optional[GlobalRound] = None
        self.outputs_recorded: int = 0
        self.first_sync_local_round: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def active(self) -> bool:
        """True once the node has been activated."""
        return self._protocol is not None

    @property
    def activation_round(self) -> Optional[GlobalRound]:
        """The global round in which the node was activated (or ``None``)."""
        return self._activation_round

    @property
    def protocol(self) -> SynchronizationProtocol:
        """The protocol instance (raises if the node is not active)."""
        if self._protocol is None:
            raise SimulationError(f"node {self.node_id} is not active")
        return self._protocol

    @property
    def context(self) -> ProtocolContext:
        """The protocol context (raises if the node is not active)."""
        if self._context is None:
            raise SimulationError(f"node {self.node_id} is not active")
        return self._context

    @property
    def uid(self) -> int:
        """The node's protocol-visible unique identifier."""
        return self.context.uid

    @property
    def local_round(self) -> int:
        """The node's activation age (0 before activation)."""
        return self._context.local_round if self._context is not None else 0

    @property
    def role(self) -> Role:
        """The node's current protocol role (``PASSIVE`` before activation)."""
        return self._protocol.role if self._protocol is not None else Role.PASSIVE

    def activate(self, global_round: GlobalRound, factory: ProtocolFactory) -> None:
        """Activate the node: draw its uid, build its protocol, call ``on_activate``."""
        if self._protocol is not None:
            raise SimulationError(f"node {self.node_id} activated twice")
        uid = draw_uid(self._rng, self._params.participant_bound)
        self._context = ProtocolContext(params=self._params, rng=self._rng, uid=uid, local_round=1)
        self._protocol = factory(self._context)
        self._activation_round = global_round
        self._protocol.on_activate()

    def reincarnate(self, rng: random.Random, factory: ProtocolFactory) -> None:
        """Rebuild the node as if freshly activated (fault injection only).

        Used by churn rejoins and transient-corruption recovery: the old
        protocol instance, context, and uid are discarded and the node
        restarts at local round 1 on the provided random stream — the same
        state transitions as :meth:`activate`, minus the double-activation
        guard.  ``first_sync_local_round`` stays latched (liveness and the
        sync-latency metric measure the *first* synchronization; recovery
        time is the stabilization tracker's job).
        """
        if self._protocol is None:
            raise SimulationError(f"node {self.node_id} reincarnated before activation")
        uid = draw_uid(rng, self._params.participant_bound)
        self._rng = rng
        self._context = ProtocolContext(params=self._params, rng=rng, uid=uid, local_round=1)
        self._protocol = factory(self._context)
        self.outputs_recorded = 0
        self._protocol.on_activate()

    # -- per-round driving ----------------------------------------------

    def begin_round(self) -> None:
        """Advance the activation age at the start of every round after the first."""
        if self._context is None:
            raise SimulationError(f"node {self.node_id} is not active")
        if self.outputs_recorded:
            self._context.local_round += 1

    def choose_action(self) -> RadioAction:
        """Ask the protocol for this round's radio action."""
        protocol = self._protocol
        if protocol is None:
            raise SimulationError(f"node {self.node_id} is not active")
        return protocol.choose_action()

    def deliver(self, outcome: ReceptionOutcome) -> None:
        """Deliver the end-of-round reception outcome to the protocol."""
        protocol = self._protocol
        if protocol is None:
            raise SimulationError(f"node {self.node_id} is not active")
        protocol.on_reception(outcome)

    def record_output(self) -> SyncOutput:
        """Record (and return) the protocol's output for this round.

        Only a counter is kept — the per-round output history lives in the
        trace recorder (when one is attached), so trace-free executions hold
        no per-node round history at all.
        """
        protocol = self._protocol
        if protocol is None:
            raise SimulationError(f"node {self.node_id} is not active")
        output = protocol.current_output()
        if output is not None and self.first_sync_local_round is None:
            self.first_sync_local_round = self._context.local_round  # type: ignore[union-attr]
        self.outputs_recorded += 1
        return output

    # -- reporting -------------------------------------------------------

    @property
    def synchronized(self) -> bool:
        """True once the node has produced a non-⊥ output."""
        return self.first_sync_local_round is not None

    @property
    def sync_latency(self) -> Optional[int]:
        """Rounds from activation to first non-⊥ output (1 = synced immediately)."""
        return self.first_sync_local_round
