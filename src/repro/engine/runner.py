"""Multi-seed execution runners.

The paper's guarantees are probabilistic ("with high probability"), so
meaningful measurements run the same configuration across many seeds and
report distributional statistics.  :func:`run_trials` does exactly that and
returns a :class:`TrialSummary` with the latency distribution, the liveness /
agreement success rates, and the leader-count distribution.
"""

from __future__ import annotations

import functools
import math
import statistics
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.engine.observers import TraceLevel
from repro.engine.parallel import run_configs
from repro.engine.results import SimulationResult
from repro.engine.simulator import SimulationConfig


def interpolated_percentile(
    values: Sequence[float], fraction: float, *, assume_sorted: bool = False
) -> float | None:
    """The empirical percentile of ``values`` at ``fraction`` (in ``[0, 1]``).

    Linearly interpolates between the order statistics (the convention of
    ``numpy.percentile``'s default mode); returns ``None`` for an empty
    sample.  Shared by the live :class:`TrialSummary` and the campaign
    store's aggregation layer so both report identical percentiles.

    Parameters
    ----------
    values:
        The sample.
    fraction:
        The percentile, as a fraction in ``[0, 1]``.
    assume_sorted:
        When True, ``values`` must already be in ascending order and is used
        as-is — callers that compute several percentiles over one sample sort
        once and reuse the ordering instead of re-sorting per call.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = values if assume_sorted else sorted(values)
    if not ordered:
        return None
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics over a batch of same-configuration executions.

    Attributes
    ----------
    results:
        The individual :class:`SimulationResult` objects, in seed order.
    seeds:
        The seeds that were run.
    """

    results: tuple[SimulationResult, ...]
    seeds: tuple[int, ...]

    @property
    def trials(self) -> int:
        """Number of executions in the batch."""
        return len(self.results)

    @property
    def liveness_rate(self) -> float:
        """Fraction of executions in which every node synchronized."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.synchronized) / len(self.results)

    @property
    def agreement_rate(self) -> float:
        """Fraction of executions with no agreement violation."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.agreement_holds) / len(self.results)

    @property
    def safety_rate(self) -> float:
        """Fraction of executions with no safety violation of any kind."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.report.all_safety_holds) / len(self.results)

    @property
    def unique_leader_rate(self) -> float:
        """Fraction of executions that elected at most one leader."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.leader_count <= 1) / len(self.results)

    def latencies(self) -> list[int]:
        """Max activation-to-sync latencies of the executions that synchronized.

        In seed order (callers compare parallel vs. serial batches with it).
        """
        return [r.max_sync_latency for r in self.results if r.max_sync_latency is not None]

    @functools.cached_property
    def sorted_latencies(self) -> tuple[int, ...]:
        """The latency sample in ascending order, computed once per summary.

        Every latency statistic below reads this cache, so reporting a whole
        percentile table sorts the sample exactly once.
        """
        return tuple(sorted(self.latencies()))

    @property
    def mean_latency(self) -> float | None:
        """Mean of the per-execution worst-case latencies (synchronized runs only)."""
        latencies = self.sorted_latencies
        return statistics.fmean(latencies) if latencies else None

    @property
    def median_latency(self) -> float | None:
        """Median of the per-execution worst-case latencies."""
        latencies = self.sorted_latencies
        return float(statistics.median(latencies)) if latencies else None

    @property
    def max_latency(self) -> int | None:
        """Worst latency observed across the whole batch."""
        latencies = self.sorted_latencies
        return latencies[-1] if latencies else None

    def percentile_latency(self, fraction: float) -> float | None:
        """An empirical latency percentile (``fraction`` in ``[0, 1]``).

        Uses linear interpolation between the order statistics (the same
        convention as ``numpy.percentile``'s default), so e.g. the median of
        ``[1, 2, 3, 4]`` is ``2.5`` rather than a nearest-rank rounding.
        """
        return interpolated_percentile(self.sorted_latencies, fraction, assume_sorted=True)

    def describe(self) -> str:
        """One-line summary used by experiment tables."""
        mean = f"{self.mean_latency:.1f}" if self.mean_latency is not None else "-"
        worst = self.max_latency if self.max_latency is not None else "-"
        return (
            f"{self.trials} trials: liveness {self.liveness_rate:.0%}, "
            f"agreement {self.agreement_rate:.0%}, mean latency {mean}, worst {worst}"
        )


def run_trials(
    config: SimulationConfig,
    seeds: Sequence[int] | int = 10,
    config_for_seed: Callable[[SimulationConfig, int], SimulationConfig] | None = None,
    workers: Optional[int] = None,
    trace_level: Optional[TraceLevel] = None,
) -> TrialSummary:
    """Run the same configuration across many seeds.

    Parameters
    ----------
    config:
        The base configuration (its ``seed`` field is replaced per trial).
    seeds:
        Either an explicit sequence of seeds or a count ``k`` meaning
        ``0 .. k−1``.
    config_for_seed:
        Optional hook to customize the configuration per seed (used by
        experiments that need, e.g., a freshly pre-drawn oblivious adversary
        per trial).  The hook runs in the parent process, so it does not need
        to be picklable even with ``workers > 1``.
    workers:
        If greater than 1, run the trials on a process pool of this size.
        Every execution derives all randomness from its own seed and results
        are returned in seed order, so a parallel batch is identical to a
        serial one.
    trace_level:
        Optional override of the configuration's
        :class:`~repro.engine.observers.TraceLevel` for the whole batch
        (heavy sweeps typically want :attr:`TraceLevel.NONE`).
    """
    seed_list: tuple[int, ...]
    if isinstance(seeds, int):
        seed_list = tuple(range(seeds))
    else:
        seed_list = tuple(seeds)

    configs = []
    for seed in seed_list:
        trial_config = replace(config, seed=seed)
        if trace_level is not None:
            trial_config = replace(trial_config, trace_level=trace_level)
        if config_for_seed is not None:
            trial_config = config_for_seed(trial_config, seed)
        configs.append(trial_config)

    results = run_configs(configs, workers=workers or 1)
    return TrialSummary(results=tuple(results), seeds=seed_list)
