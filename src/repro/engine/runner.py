"""Multi-seed execution runners.

The paper's guarantees are probabilistic ("with high probability"), so
meaningful measurements run the same configuration across many seeds and
report distributional statistics.  :func:`run_trials` does exactly that and
returns a :class:`TrialSummary` with the latency distribution, the liveness /
agreement success rates, and the leader-count distribution.
"""

from __future__ import annotations

import functools
import math
import statistics
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.engine.observers import TraceLevel
from repro.engine.parallel import run_configs
from repro.engine.plan import ExecutionPlan, resolve_plan
from repro.engine.pool import ExecutionPool, ReducedTrial, simulate_one
from repro.engine.results import SimulationResult
from repro.engine.simulator import SimulationConfig
from repro.faults.plan import FaultPlan


def interpolated_percentile(
    values: Sequence[float], fraction: float, *, assume_sorted: bool = False
) -> float | None:
    """The empirical percentile of ``values`` at ``fraction`` (in ``[0, 1]``).

    Linearly interpolates between the order statistics (the convention of
    ``numpy.percentile``'s default mode); returns ``None`` for an empty
    sample.  Shared by the live :class:`TrialSummary` and the campaign
    store's aggregation layer so both report identical percentiles.

    Parameters
    ----------
    values:
        The sample.
    fraction:
        The percentile, as a fraction in ``[0, 1]``.
    assume_sorted:
        When True, ``values`` must already be in ascending order and is used
        as-is — callers that compute several percentiles over one sample sort
        once and reuse the ordering instead of re-sorting per call.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = values if assume_sorted else sorted(values)
    if not ordered:
        return None
    position = fraction * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics over a batch of same-configuration executions.

    Attributes
    ----------
    results:
        The individual :class:`SimulationResult` objects, in seed order.
    seeds:
        The seeds that were run.
    """

    results: tuple[SimulationResult, ...]
    seeds: tuple[int, ...]

    @property
    def trials(self) -> int:
        """Number of executions in the batch."""
        return len(self.results)

    @property
    def liveness_rate(self) -> float:
        """Fraction of executions in which every node synchronized."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.synchronized) / len(self.results)

    @property
    def agreement_rate(self) -> float:
        """Fraction of executions with no agreement violation."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.agreement_holds) / len(self.results)

    @property
    def safety_rate(self) -> float:
        """Fraction of executions with no safety violation of any kind."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.report.all_safety_holds) / len(self.results)

    @property
    def unique_leader_rate(self) -> float:
        """Fraction of executions that elected at most one leader."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.leader_count <= 1) / len(self.results)

    def latencies(self) -> list[int]:
        """Max activation-to-sync latencies of the executions that synchronized.

        In seed order (callers compare parallel vs. serial batches with it).
        """
        return [r.max_sync_latency for r in self.results if r.max_sync_latency is not None]

    @functools.cached_property
    def sorted_latencies(self) -> tuple[int, ...]:
        """The latency sample in ascending order, computed once per summary.

        Every latency statistic below reads this cache, so reporting a whole
        percentile table sorts the sample exactly once.
        """
        return tuple(sorted(self.latencies()))

    @property
    def mean_latency(self) -> float | None:
        """Mean of the per-execution worst-case latencies (synchronized runs only)."""
        latencies = self.sorted_latencies
        return statistics.fmean(latencies) if latencies else None

    @property
    def median_latency(self) -> float | None:
        """Median of the per-execution worst-case latencies."""
        latencies = self.sorted_latencies
        return float(statistics.median(latencies)) if latencies else None

    @property
    def max_latency(self) -> int | None:
        """Worst latency observed across the whole batch."""
        latencies = self.sorted_latencies
        return latencies[-1] if latencies else None

    def percentile_latency(self, fraction: float) -> float | None:
        """An empirical latency percentile (``fraction`` in ``[0, 1]``).

        Uses linear interpolation between the order statistics (the same
        convention as ``numpy.percentile``'s default), so e.g. the median of
        ``[1, 2, 3, 4]`` is ``2.5`` rather than a nearest-rank rounding.
        """
        return interpolated_percentile(self.sorted_latencies, fraction, assume_sorted=True)

    def stabilization_rounds(self) -> list[int]:
        """Per-trial worst rounds-to-reconverge, fault-injected trials only.

        In seed order; empty for fault-free batches (every result's
        ``stabilization`` is ``None`` there).
        """
        return [
            r.stabilization_rounds for r in self.results if r.stabilization_rounds is not None
        ]

    @property
    def max_stabilization_rounds(self) -> int | None:
        """Worst rounds-to-reconverge across the batch (``None`` fault-free)."""
        rounds = self.stabilization_rounds()
        return max(rounds) if rounds else None

    @property
    def mean_stabilization_rounds(self) -> float | None:
        """Mean per-trial worst rounds-to-reconverge (``None`` fault-free)."""
        rounds = self.stabilization_rounds()
        return statistics.fmean(rounds) if rounds else None

    def describe(self) -> str:
        """One-line summary used by experiment tables."""
        mean = f"{self.mean_latency:.1f}" if self.mean_latency is not None else "-"
        worst = self.max_latency if self.max_latency is not None else "-"
        line = (
            f"{self.trials} trials: liveness {self.liveness_rate:.0%}, "
            f"agreement {self.agreement_rate:.0%}, mean latency {mean}, worst {worst}"
        )
        stabilization = self.max_stabilization_rounds
        if stabilization is not None:
            line += f", stabilization {stabilization}"
        return line


def _normalize_seeds(seeds: Sequence[int] | int) -> tuple[int, ...]:
    return tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)


def _template_for(config: SimulationConfig, trace_level: Optional[TraceLevel]) -> SimulationConfig:
    return config if trace_level is None else replace(config, trace_level=trace_level)


def run_trials(
    config: SimulationConfig,
    seeds: Sequence[int] | int = 10,
    config_for_seed: Callable[[SimulationConfig, int], SimulationConfig] | None = None,
    workers: Optional[int] = None,
    trace_level: Optional[TraceLevel] = None,
    pool: Optional[ExecutionPool] = None,
    batch: bool = False,
    *,
    plan: Optional[ExecutionPlan] = None,
    faults: Optional[FaultPlan] = None,
) -> TrialSummary:
    """Run the same configuration across many seeds.

    Parameters
    ----------
    config:
        The base configuration (its ``seed`` field is replaced per trial).
    seeds:
        Either an explicit sequence of seeds or a count ``k`` meaning
        ``0 .. k−1``.
    config_for_seed:
        Optional hook to customize the configuration per seed (used by
        experiments that need, e.g., a freshly pre-drawn oblivious adversary
        per trial).  The hook runs in the parent process, so it does not need
        to be picklable even under a parallel plan.
    workers:
        Deprecated — pass ``plan=ExecutionPlan(workers=...)``.
    trace_level:
        Optional override of the configuration's
        :class:`~repro.engine.observers.TraceLevel` for the whole batch
        (heavy sweeps typically want :attr:`TraceLevel.NONE`).
    pool:
        Optional persistent :class:`~repro.engine.pool.ExecutionPool`.  The
        batch is dispatched in chunks onto the pool's long-lived workers
        (shipping the shared template once per chunk), which callers with
        many batches — campaigns, search — reuse across calls.  A live pool
        is not serializable, so it stays a separate argument from the plan
        and wins dispatch when both are given.  Neither ``pool`` nor the
        plan ever changes results.
    batch:
        Deprecated — pass ``plan=ExecutionPlan(batch=True)``.
    plan:
        The :class:`~repro.engine.plan.ExecutionPlan` for the batch: worker
        count (``1`` = serial, ``>1`` = a one-shot process pool created and
        torn down inside this call), optional pool chunk size, and whether
        same-template batches route through the vectorized lockstep kernel
        (:mod:`repro.engine.batch`, transparent scalar fallback; ignored when
        ``config_for_seed`` makes the batch heterogeneous).  Every execution
        derives all randomness from its own seed and results come back in
        seed order, so no plan ever changes results.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` applied to every trial
        (sugar for ``replace(config, faults=...)``); fault randomness derives
        from each trial's own seed, so the plan never breaks determinism.
    """
    if faults is not None:
        config = replace(config, faults=faults)
    resolved = resolve_plan(plan, api="run_trials", workers=workers, batch=batch)
    seed_list = _normalize_seeds(seeds)
    if pool is not None and config_for_seed is None:
        # Template-and-delta: the configs differ only by seed, so ship the
        # template once per chunk instead of len(seeds) full configs.
        results = pool.run_seeds(
            _template_for(config, trace_level), seed_list, batch=resolved.batch
        )
        return TrialSummary(results=tuple(results), seeds=seed_list)
    if resolved.batch and config_for_seed is None:
        template = _template_for(config, trace_level)
        if resolved.parallel:
            with ExecutionPool(resolved.workers, chunk_size=resolved.pool_chunk) as one_shot:
                results = one_shot.run_seeds(template, seed_list, batch=True)
            return TrialSummary(results=tuple(results), seeds=seed_list)
        from repro.engine.batch import run_batch

        return TrialSummary(results=tuple(run_batch(template, seed_list)), seeds=seed_list)
    if pool is None and config_for_seed is None and resolved.parallel and resolved.pool_chunk:
        # An explicitly chunked parallel plan: honor the chunk size via a
        # one-shot pool (run_configs has no chunking knob).  Same results
        # either way — chunking only shapes dispatch.
        template = _template_for(config, trace_level)
        with ExecutionPool(resolved.workers, chunk_size=resolved.pool_chunk) as one_shot:
            results = one_shot.run_seeds(template, seed_list)
        return TrialSummary(results=tuple(results), seeds=seed_list)

    configs = []
    for seed in seed_list:
        trial_config = replace(config, seed=seed)
        if trace_level is not None:
            trial_config = replace(trial_config, trace_level=trace_level)
        if config_for_seed is not None:
            trial_config = config_for_seed(trial_config, seed)
        configs.append(trial_config)

    results = run_configs(configs, workers=resolved.workers, pool=pool)
    return TrialSummary(results=tuple(results), seeds=seed_list)


def run_reduced_trials(
    config: SimulationConfig,
    seeds: Sequence[int] | int = 10,
    trace_level: Optional[TraceLevel] = TraceLevel.NONE,
    pool: Optional[ExecutionPool] = None,
    batch: bool = False,
    *,
    plan: Optional[ExecutionPlan] = None,
    faults: Optional[FaultPlan] = None,
) -> tuple[ReducedTrial, ...]:
    """Run a multi-seed batch, keeping only the persisted summary scalars.

    The summary-only sibling of :func:`run_trials` for callers that never
    touch full results — campaign cells persist
    :class:`~repro.campaigns.store.TrialRecord` scalars and search scores are
    computed from them, so shipping whole
    :class:`~repro.engine.results.SimulationResult` objects (metrics maps,
    property reports, traces) back from workers is pure overhead.  With a
    ``pool``, the reduction happens *inside the workers* and only
    :class:`~repro.engine.pool.ReducedTrial` rows cross the process boundary;
    serially, the same reduction runs in-process per trial, so memory stays
    flat either way and both paths produce identical rows.

    ``trace_level`` defaults to :attr:`TraceLevel.NONE` (summary consumers
    never read traces); pass ``None`` to keep the config's own level.
    Execution routing comes from ``plan`` — a parallel plan without a live
    ``pool`` runs on a one-shot pool; ``plan.batch`` routes batchable
    templates through the vectorized lockstep kernel (scalar fallback
    otherwise) — identical rows on every path.  ``batch=`` is the deprecated
    spelling of ``plan=ExecutionPlan(batch=True)``.  ``faults=`` applies a
    :class:`~repro.faults.plan.FaultPlan` to every trial, exactly as in
    :func:`run_trials`; the rows then carry ``stabilization_rounds``.
    """
    if faults is not None:
        config = replace(config, faults=faults)
    resolved = resolve_plan(plan, api="run_reduced_trials", batch=batch)
    seed_list = _normalize_seeds(seeds)
    template = _template_for(config, trace_level)
    if pool is not None:
        return tuple(pool.run_seeds(template, seed_list, reduce=True, batch=resolved.batch))
    if resolved.parallel:
        with ExecutionPool(resolved.workers, chunk_size=resolved.pool_chunk) as one_shot:
            return tuple(
                one_shot.run_seeds(template, seed_list, reduce=True, batch=resolved.batch)
            )
    if resolved.batch:
        from repro.engine.batch import run_reduced_batch

        return tuple(run_reduced_batch(template, seed_list))
    return tuple(
        ReducedTrial.from_result(seed, simulate_one(template, seed)) for seed in seed_list
    )
