"""Multi-seed execution runners.

The paper's guarantees are probabilistic ("with high probability"), so
meaningful measurements run the same configuration across many seeds and
report distributional statistics.  :func:`run_trials` does exactly that and
returns a :class:`TrialSummary` with the latency distribution, the liveness /
agreement success rates, and the leader-count distribution.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.engine.results import SimulationResult
from repro.engine.simulator import SimulationConfig, simulate


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics over a batch of same-configuration executions.

    Attributes
    ----------
    results:
        The individual :class:`SimulationResult` objects, in seed order.
    seeds:
        The seeds that were run.
    """

    results: tuple[SimulationResult, ...]
    seeds: tuple[int, ...]

    @property
    def trials(self) -> int:
        """Number of executions in the batch."""
        return len(self.results)

    @property
    def liveness_rate(self) -> float:
        """Fraction of executions in which every node synchronized."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.synchronized) / len(self.results)

    @property
    def agreement_rate(self) -> float:
        """Fraction of executions with no agreement violation."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.agreement_holds) / len(self.results)

    @property
    def safety_rate(self) -> float:
        """Fraction of executions with no safety violation of any kind."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.report.all_safety_holds) / len(self.results)

    @property
    def unique_leader_rate(self) -> float:
        """Fraction of executions that elected at most one leader."""
        if not self.results:
            return 0.0
        return sum(1 for r in self.results if r.leader_count <= 1) / len(self.results)

    def latencies(self) -> list[int]:
        """Max activation-to-sync latencies of the executions that synchronized."""
        return [r.max_sync_latency for r in self.results if r.max_sync_latency is not None]

    @property
    def mean_latency(self) -> float | None:
        """Mean of the per-execution worst-case latencies (synchronized runs only)."""
        latencies = self.latencies()
        return statistics.fmean(latencies) if latencies else None

    @property
    def median_latency(self) -> float | None:
        """Median of the per-execution worst-case latencies."""
        latencies = self.latencies()
        return float(statistics.median(latencies)) if latencies else None

    @property
    def max_latency(self) -> int | None:
        """Worst latency observed across the whole batch."""
        latencies = self.latencies()
        return max(latencies) if latencies else None

    def percentile_latency(self, fraction: float) -> float | None:
        """An empirical latency percentile (``fraction`` in ``[0, 1]``)."""
        latencies = sorted(self.latencies())
        if not latencies:
            return None
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        index = min(len(latencies) - 1, int(round(fraction * (len(latencies) - 1))))
        return float(latencies[index])

    def describe(self) -> str:
        """One-line summary used by experiment tables."""
        mean = f"{self.mean_latency:.1f}" if self.mean_latency is not None else "-"
        worst = self.max_latency if self.max_latency is not None else "-"
        return (
            f"{self.trials} trials: liveness {self.liveness_rate:.0%}, "
            f"agreement {self.agreement_rate:.0%}, mean latency {mean}, worst {worst}"
        )


def run_trials(
    config: SimulationConfig,
    seeds: Sequence[int] | int = 10,
    config_for_seed: Callable[[SimulationConfig, int], SimulationConfig] | None = None,
) -> TrialSummary:
    """Run the same configuration across many seeds.

    Parameters
    ----------
    config:
        The base configuration (its ``seed`` field is replaced per trial).
    seeds:
        Either an explicit sequence of seeds or a count ``k`` meaning
        ``0 .. k−1``.
    config_for_seed:
        Optional hook to customize the configuration per seed (used by
        experiments that need, e.g., a freshly pre-drawn oblivious adversary
        per trial).
    """
    seed_list: tuple[int, ...]
    if isinstance(seeds, int):
        seed_list = tuple(range(seeds))
    else:
        seed_list = tuple(seeds)

    results = []
    for seed in seed_list:
        trial_config = replace(config, seed=seed)
        if config_for_seed is not None:
            trial_config = config_for_seed(trial_config, seed)
        results.append(simulate(trial_config))
    return TrialSummary(results=tuple(results), seeds=seed_list)
