"""Execution traces.

A trace records, for every global round, what every active node output and
what happened on the spectrum.  Traces are what the property checker, the
metrics collector, and the tests inspect; protocols never see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.params import ModelParameters
from repro.radio.events import RoundActivity
from repro.types import GlobalRound, NodeId, Role, SyncOutput


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Everything recorded about one global round.

    Attributes
    ----------
    global_round:
        The 1-based round index.
    outputs:
        Mapping from node id to the value that node output this round
        (only nodes active during the round appear).
    roles:
        Mapping from node id to the node's role at the end of the round.
    activity:
        The spectrum activity record for the round.
    """

    global_round: GlobalRound
    outputs: Mapping[NodeId, SyncOutput]
    roles: Mapping[NodeId, Role]
    activity: RoundActivity

    def synchronized_nodes(self) -> tuple[NodeId, ...]:
        """Nodes with a non-⊥ output this round."""
        return tuple(sorted(n for n, v in self.outputs.items() if v is not None))

    def distinct_outputs(self) -> frozenset[int]:
        """The set of distinct non-⊥ outputs this round (agreement wants ≤ 1)."""
        return frozenset(v for v in self.outputs.values() if v is not None)

    def leader_nodes(self) -> tuple[NodeId, ...]:
        """Nodes whose role is LEADER at the end of the round."""
        return tuple(sorted(n for n, r in self.roles.items() if r is Role.LEADER))


@dataclass
class ExecutionTrace:
    """A full execution: parameters, per-round records, and activation times.

    Attributes
    ----------
    params:
        The model parameters the execution was run with.
    seed:
        The master seed.
    records:
        One :class:`RoundRecord` per simulated round, in order.
    activation_rounds:
        Mapping from node id to the global round it was activated in.
    complete:
        True when ``records`` holds *every* simulated round.  A sampled
        recording (:attr:`~repro.engine.observers.TraceLevel.SAMPLED`) sets
        this to False; post-hoc consumers that walk the round sequence
        (checker, metrics, app extractors) refuse incomplete traces instead
        of silently computing wrong answers.
    """

    params: ModelParameters
    seed: int
    records: list[RoundRecord] = field(default_factory=list)
    activation_rounds: dict[NodeId, GlobalRound] = field(default_factory=dict)
    complete: bool = True

    def require_complete(self, consumer: str) -> None:
        """Raise ``ValueError`` if this trace retains only a sample of rounds."""
        if not self.complete:
            raise ValueError(
                f"{consumer} requires a complete trace (TraceLevel.FULL); "
                "this trace retains only a sampled subset of rounds"
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self.records)

    @property
    def rounds_simulated(self) -> int:
        """Number of rounds the execution ran (complete traces only)."""
        self.require_complete("rounds_simulated")
        return len(self.records)

    @property
    def rounds_retained(self) -> int:
        """Number of round records this trace holds (honest at any trace level)."""
        return len(self.records)

    @property
    def node_ids(self) -> tuple[NodeId, ...]:
        """All node ids that were activated during the execution."""
        return tuple(sorted(self.activation_rounds))

    def append(self, record: RoundRecord) -> None:
        """Append one round record (rounds must be appended in order)."""
        self.records.append(record)

    def outputs_of(self, node_id: NodeId) -> list[SyncOutput]:
        """The per-round output sequence of one node (from its activation on)."""
        self.require_complete("outputs_of")
        return [
            record.outputs[node_id]
            for record in self.records
            if node_id in record.outputs
        ]

    def sync_round_of(self, node_id: NodeId) -> Optional[GlobalRound]:
        """The first global round in which ``node_id`` output a non-⊥ value."""
        self.require_complete("sync_round_of")
        for record in self.records:
            if record.outputs.get(node_id) is not None:
                return record.global_round
        return None

    def sync_latency_of(self, node_id: NodeId) -> Optional[int]:
        """Rounds from activation to first non-⊥ output (1 = synced on arrival)."""
        sync_round = self.sync_round_of(node_id)
        if sync_round is None:
            return None
        return sync_round - self.activation_rounds[node_id] + 1

    def all_synchronized(self) -> bool:
        """True if every activated node synchronized before the trace ended."""
        self.require_complete("all_synchronized")
        return all(self.sync_round_of(node_id) is not None for node_id in self.node_ids)

    def last_sync_round(self) -> Optional[GlobalRound]:
        """The global round by which the last node synchronized, or ``None``."""
        sync_rounds = [self.sync_round_of(node_id) for node_id in self.node_ids]
        if any(r is None for r in sync_rounds) or not sync_rounds:
            return None
        return max(sync_rounds)  # type: ignore[arg-type]

    def max_sync_latency(self) -> Optional[int]:
        """The worst per-node activation-to-synchronization latency, or ``None``."""
        latencies = [self.sync_latency_of(node_id) for node_id in self.node_ids]
        if any(latency is None for latency in latencies) or not latencies:
            return None
        return max(latencies)  # type: ignore[arg-type]
