"""Vectorized batch simulation kernel: lockstep multi-seed execution.

The scalar engine (:mod:`repro.engine.simulator`) runs one trial at a time,
one Python-level round loop per seed.  For trace-free multi-seed sweeps —
campaign cells, search evaluations, benchmarks — the per-round interpreter
overhead multiplied across seeds dominates once the per-trial work is small.
This module removes it by running a whole *batch* of seeds in lockstep
through the round loop as structure-of-arrays numpy operations over a
``(trials, nodes)``-shaped state: per-round frequency choices, jammer
disruption masks, reception resolution, synchronization detection, and stop
conditions are all array ops, and early-finished trials are masked out of
every subsequent round rather than exited.

**Determinism is bit-exact.**  Every random draw is replayed word-for-word
from the same per-``(trial, component)`` Mersenne Twister streams the scalar
engine uses (:mod:`repro.engine.rng`): each stream's :class:`random.Random`
state is transplanted into a :class:`numpy.random.RandomState`, 32-bit output
words are consumed in exactly the order CPython's ``random()`` /
``getrandbits`` / ``Random.sample`` would consume them (including rejection
re-draws), and node uids are drawn from the real Python stream *before* the
transplant.  The golden equivalence suite pins the batch kernel against the
scalar engine's recorded digests for every batchable combination.

**Scope.**  The kernel covers the trace-free (``TraceLevel.NONE``) subset of
the registries whose per-round logic is expressible as array ops:

* protocols: trapdoor (without the ``synchronized_nodes_assist`` extension),
  uniform-wakeup, decay-wakeup, single-channel, round-robin;
* adversaries: all eight registered jammers;
* activations: all five built-in schedules (none of them consult the
  activation random stream).

:func:`batchable` probes a configuration for membership; :func:`run_batch` /
:func:`run_reduced_batch` transparently fall back to the scalar loop
otherwise, so callers can pass any configuration.
"""

from __future__ import annotations

import math
import multiprocessing
import random
from dataclasses import dataclass
from collections import Counter
from typing import Any, Sequence

import numpy as np

from repro.adversary.activation import (
    ActivationSchedule,
    ExplicitActivation,
    RandomActivation,
    SimultaneousActivation,
    StaggeredActivation,
    TrickleActivation,
)
from repro.adversary.jammers import (
    BurstyJammer,
    FixedBandJammer,
    LowBandJammer,
    NoInterference,
    RandomJammer,
    ReactiveJammer,
    SweepJammer,
    TwoNodeProductJammer,
)
from repro.engine.checker import PropertyReport, PropertyViolation
from repro.engine.metrics import ExecutionMetrics
from repro.engine.observers import TraceLevel
from repro.engine.pool import ReducedTrial, simulate_one, warn_fault_batch_fallback
from repro.engine.results import SimulationResult
from repro.engine.rng import derive_seed
from repro.engine.simulator import SimulationConfig
from repro.exceptions import ConfigurationError
from repro.protocols.base import BoundProtocolFactory, ProtocolContext
from repro.protocols.baselines.decay_wakeup import DecayWakeupProtocol
from repro.protocols.baselines.round_robin import RoundRobinSweepProtocol
from repro.protocols.baselines.single_channel import SingleChannelAlohaProtocol
from repro.protocols.baselines.uniform_wakeup import UniformWakeupProtocol
from repro.protocols.trapdoor.protocol import TrapdoorProtocol
from repro.timestamps import draw_uid
from repro.types import Role

__all__ = ["batchable", "run_batch", "run_reduced_batch"]

#: Protocol state encoding shared by every batchable protocol's state machine.
_CONTENDER, _KNOCKED_OUT, _LEADER, _SYNCHRONIZED = 0, 1, 2, 3
_STATE_ROLES = (Role.CONTENDER, Role.KNOCKED_OUT, Role.LEADER, Role.SYNCHRONIZED)

_BATCHABLE_PROTOCOLS = (
    TrapdoorProtocol,
    UniformWakeupProtocol,
    DecayWakeupProtocol,
    SingleChannelAlohaProtocol,
    RoundRobinSweepProtocol,
)
_BATCHABLE_JAMMERS = (
    NoInterference,
    FixedBandJammer,
    RandomJammer,
    SweepJammer,
    BurstyJammer,
    ReactiveJammer,
    LowBandJammer,
    TwoNodeProductJammer,
)
_BATCHABLE_ACTIVATIONS = (
    SimultaneousActivation,
    StaggeredActivation,
    RandomActivation,
    ExplicitActivation,
    TrickleActivation,
)

#: Exact replica of CPython's ``random()`` mantissa assembly constants.
_RANDOM_SCALE = 1.0 / 9007199254740992.0  # 2**-53
_HUGE = np.iinfo(np.int64).max


class _WordStreams:
    """Word-exact vectorized replay of a set of ``random.Random`` streams.

    Each scalar stream's Mersenne Twister state is transplanted into a
    :class:`numpy.random.RandomState`; 32-bit words are then drawn in blocks
    and handed out one at a time per stream, so every stream's word sequence
    is identical to what successive ``getrandbits(32)`` calls on the original
    :class:`random.Random` would produce.  The higher-level helpers
    (:meth:`randbelow`, :meth:`randoms`) rebuild CPython's exact consumption
    patterns — including rejection re-draws — on top of that word tape.
    """

    __slots__ = ("_states", "_words", "_cursor", "_block")

    def __init__(self, rngs: Sequence[random.Random], block: int = 512) -> None:
        self._states = [self._transplant(rng) for rng in rngs]
        count = len(self._states)
        self._block = block
        self._words = np.zeros((max(count, 1), block), dtype=np.uint32)
        # Cursor starts exhausted: the first take() refills lazily, so streams
        # that are never consumed never generate a block.
        self._cursor = np.full(max(count, 1), block, dtype=np.int64)

    @staticmethod
    def _transplant(rng: random.Random) -> np.random.RandomState:
        _version, internal, _gauss = rng.getstate()
        key, pos = internal[:-1], internal[-1]
        state = np.random.RandomState()
        state.set_state(("MT19937", np.array(key, dtype=np.uint32), int(pos)))
        return state

    def take(self, ids: np.ndarray) -> np.ndarray:
        """One 32-bit word from each stream in ``ids`` (ids must be unique)."""
        cursor = self._cursor
        block = self._block
        exhausted = ids[cursor[ids] >= block]
        if exhausted.size:
            words = self._words
            states = self._states
            for index in exhausted.tolist():
                words[index] = states[index].randint(0, 2**32, size=block, dtype=np.uint32)
            cursor[exhausted] = 0
        positions = cursor[ids]
        out = self._words[ids, positions]
        cursor[ids] = positions + 1
        return out

    def randbelow(self, ids: np.ndarray, n: int) -> np.ndarray:
        """CPython's ``_randbelow_with_getrandbits(n)`` for each stream in ``ids``."""
        if n <= 0:  # pragma: no cover - callers guarantee n >= 1
            return np.zeros(len(ids), dtype=np.int64)
        k = n.bit_length()
        if k > 32:  # pragma: no cover - frequency draws never exceed 32 bits
            raise ConfigurationError(f"batched randbelow limited to 32-bit ranges, got {n}")
        shift = np.uint32(32 - k)
        # No power-of-two shortcut: ``bit_length`` of 2**m is m + 1, so even an
        # exact power of two rejects half its k-bit draws, exactly as CPython.
        result = np.zeros(len(ids), dtype=np.int64)
        pending = np.arange(len(ids))
        while pending.size:
            drawn = (self.take(ids[pending]) >> shift).astype(np.int64)
            accepted = drawn < n
            result[pending[accepted]] = drawn[accepted]
            pending = pending[~accepted]
        return result

    def randoms(self, ids: np.ndarray) -> np.ndarray:
        """CPython's ``random()`` (two words -> 53-bit float) per stream in ``ids``."""
        a = (self.take(ids) >> np.uint32(5)).astype(np.float64)
        b = (self.take(ids) >> np.uint32(6)).astype(np.float64)
        return (a * 67108864.0 + b) * _RANDOM_SCALE

    def sample_mask(self, ids: np.ndarray, population: np.ndarray, k: int, width: int) -> np.ndarray:
        """A membership mask replaying ``Random.sample(population, k)`` per stream.

        Returns a boolean array of shape ``(len(ids), width)`` with
        ``mask[i, value]`` set for each sampled value.  The word consumption
        replicates CPython's two ``sample`` branches exactly: the pool-copy
        branch for small populations and the rejection-set branch otherwise.
        """
        n = len(population)
        rows = len(ids)
        mask = np.zeros((rows, width), dtype=bool)
        if k <= 0 or rows == 0:
            return mask
        row_index = np.arange(rows)
        setsize = 21
        if k > 5:
            setsize += 4 ** math.ceil(math.log(k * 3, 4))
        if n <= setsize:
            pools = np.tile(population, (rows, 1))
            for i in range(k):
                j = self.randbelow(ids, n - i)
                mask[row_index, pools[row_index, j]] = True
                pools[row_index, j] = pools[row_index, n - i - 1]
        else:
            selected = np.zeros((rows, n), dtype=bool)
            for _ in range(k):
                chosen = np.zeros(rows, dtype=np.int64)
                pending = row_index
                while pending.size:
                    j = self.randbelow(ids[pending], n)
                    fresh = ~selected[pending, j]
                    chosen[pending[fresh]] = j[fresh]
                    pending = pending[~fresh]
                selected[row_index, chosen] = True
                mask[row_index, population[chosen]] = True
        return mask


@dataclass(frozen=True)
class _ProtocolProgram:
    """The per-round draw/transition schedule of one batchable protocol.

    Extracted once per batch from a probe instance, so the round loop never
    touches protocol objects.  ``contender_probability[lr]`` is the contender
    broadcast threshold at local round ``lr`` (index 0 unused).
    """

    kind: str  # "random-freq" | "single" | "roundrobin"
    horizon: int
    leader_probability: float
    contender_probability: np.ndarray
    band_width: int
    channel: int
    slots: int


def _protocol_program(config: SimulationConfig) -> _ProtocolProgram:
    """Build the draw schedule for the template's protocol (may raise)."""
    factory = config.protocol_factory
    if type(factory) is not BoundProtocolFactory:
        raise ConfigurationError("not a registry-bound protocol factory")
    if factory.protocol_class not in _BATCHABLE_PROTOCOLS:
        raise ConfigurationError(f"{factory.protocol_class.__name__} is not batchable")
    probe_context = ProtocolContext(
        params=config.params, rng=random.Random(0), uid=1, local_round=1
    )
    probe: Any = factory(probe_context)
    max_lr = config.max_rounds + 1
    local_rounds = range(1, max_lr + 1)
    if isinstance(probe, TrapdoorProtocol):
        if probe.config.synchronized_nodes_assist:
            raise ConfigurationError("synchronized_nodes_assist is not batchable")
        probability = np.array(
            [0.0] + [probe.schedule.broadcast_probability(lr) for lr in local_rounds]
        )
        return _ProtocolProgram(
            kind="random-freq",
            horizon=probe.schedule.total_rounds,
            leader_probability=probe.config.leader_broadcast_probability,
            contender_probability=probability,
            band_width=probe.schedule.effective_frequencies,
            channel=0,
            slots=0,
        )
    frequencies = config.params.frequencies
    if isinstance(probe, UniformWakeupProtocol):
        probability = np.full(max_lr + 1, probe.broadcast_probability)
        kind, band_width, channel, slots = "random-freq", frequencies, 0, 0
    elif isinstance(probe, DecayWakeupProtocol):
        cycle = probe._cycle_length
        probability = np.array(
            [0.0] + [0.5 ** (((lr - 1) % cycle) + 1) for lr in local_rounds]
        )
        kind, band_width, channel, slots = "random-freq", frequencies, 0, 0
    elif isinstance(probe, SingleChannelAlohaProtocol):
        probability = np.array(
            [0.0] + [probe._schedule.broadcast_probability(lr) for lr in local_rounds]
        )
        kind, band_width, channel, slots = "single", 0, probe.channel, 0
    else:  # RoundRobinSweepProtocol
        probability = np.zeros(max_lr + 1)
        kind, band_width, channel, slots = "roundrobin", frequencies, 0, probe.slots
    return _ProtocolProgram(
        kind=kind,
        horizon=probe.victory_rounds,
        leader_probability=probe.leader_broadcast_probability,
        contender_probability=probability,
        band_width=band_width,
        channel=channel,
        slots=slots,
    )


@dataclass(frozen=True)
class _JammerPlan:
    """How the template's jammer is replayed in the lockstep loop."""

    kind: str
    needs_rng: bool
    adaptive: bool
    static_mask: np.ndarray  # (F+1,) — shared deterministic part, if any
    count: int  # frequencies drawn randomly per round (random/bursty/lowband)
    others: np.ndarray  # lowband: the ascending non-prefix population
    step: int  # sweep
    on_rounds: int  # bursty
    period: int  # bursty


def _jammer_plan(config: SimulationConfig) -> _JammerPlan:
    """Build the disruption replay plan for the template's jammer (may raise)."""
    adversary = config.adversary
    params = config.params
    budget = params.disruption_budget
    band_size = params.frequencies
    empty = np.zeros(band_size + 1, dtype=bool)
    none = np.array([], dtype=np.int64)

    def plan(kind: str, **overrides: Any) -> _JammerPlan:
        values: dict[str, Any] = {
            "kind": kind,
            "needs_rng": False,
            "adaptive": False,
            "static_mask": empty,
            "count": 0,
            "others": none,
            "step": 1,
            "on_rounds": 0,
            "period": 1,
        }
        values.update(overrides)
        return _JammerPlan(**values)

    kind = type(adversary)
    if kind is NoInterference:
        return plan("none")
    if kind is FixedBandJammer:
        mask = empty.copy()
        mask[1 : min(budget, band_size - 1) + 1] = True
        return plan("fixed", static_mask=mask)
    if kind is RandomJammer:
        strength = adversary.strength  # type: ignore[attr-defined]
        count = budget if strength is None else min(strength, budget)
        if count <= 0:
            return plan("none")
        return plan("random", needs_rng=True, count=count)
    if kind is SweepJammer:
        if budget <= 0:
            return plan("none")
        return plan("sweep", step=adversary.step, count=budget)  # type: ignore[attr-defined]
    if kind is BurstyJammer:
        if budget <= 0:
            return plan("none")
        on = adversary.on_rounds  # type: ignore[attr-defined]
        period = on + adversary.off_rounds  # type: ignore[attr-defined]
        return plan("bursty", needs_rng=True, count=budget, on_rounds=on, period=max(period, 1))
    if kind is ReactiveJammer:
        if budget <= 0:
            return plan("none")
        return plan("reactive", adaptive=True, count=budget)
    if kind is TwoNodeProductJammer:
        if budget <= 0:
            return plan("none")
        return plan("twoprod", adaptive=True, count=budget)
    if kind is LowBandJammer:
        if budget <= 0:
            return plan("none")
        width = budget if adversary.prefix_width is None else adversary.prefix_width  # type: ignore[attr-defined]
        prefix = list(params.band.prefix(width))  # raises on width < 1, like the scalar path
        chosen = prefix[:budget]
        mask = empty.copy()
        mask[chosen] = True
        remaining = budget - len(chosen)
        if remaining <= 0:
            return plan("lowband", static_mask=mask)
        chosen_set = set(chosen)
        others = np.array(
            [f for f in params.band.all_frequencies() if f not in chosen_set], dtype=np.int64
        )
        return plan(
            "lowband",
            needs_rng=True,
            static_mask=mask,
            count=min(remaining, len(others)),
            others=others,
        )
    raise ConfigurationError(f"{kind.__name__} is not batchable")


def batchable(config: SimulationConfig) -> bool:
    """Whether the lockstep kernel can replay ``config`` bit-identically.

    True only for trace-free configurations built from the batchable subset
    of the registries (see the module docstring).  A configuration that is
    *invalid* (e.g. a schedule whose effective band collapses) also reports
    False: the scalar fallback then raises exactly the error the scalar
    engine would.
    """
    if config.trace_level is not TraceLevel.NONE:
        return False
    if config.faults is not None:
        # Fault injection (churn/Byzantine/corruption) rewrites per-node state
        # mid-run — inherently scalar; the fallback loop handles it.
        return False
    if type(config.activation) not in _BATCHABLE_ACTIVATIONS:
        return False
    try:
        _protocol_program(config)
        _jammer_plan(config)
    except ConfigurationError:
        return False
    return True


def _activation_rows(
    activation: ActivationSchedule, max_rounds: int
) -> tuple[list[int], np.ndarray]:
    """Node ids and activation rounds, in activation order, within the cap.

    The batchable schedules never consult the activation stream, so the
    layout is shared by every trial in the batch.
    """
    throwaway = random.Random(0)
    node_ids: list[int] = []
    rounds: list[int] = []
    for global_round in range(1, min(max_rounds, activation.last_activation_round()) + 1):
        for node_id in activation.activations_for_round(global_round, throwaway):
            node_ids.append(node_id)
            rounds.append(global_round)
    return node_ids, np.array(rounds, dtype=np.int64)


def _disruption_masks(
    plan: _JammerPlan,
    streams: _WordStreams,
    adversary_sids: np.ndarray,
    global_round: int,
    alive: np.ndarray,
    trials: int,
    band_size: int,
    cum_broadcasts: np.ndarray | None,
    cum_deliveries: np.ndarray | None,
) -> np.ndarray:
    """The per-trial disruption mask ``(trials, F+1)`` for one round.

    Random draws are taken only for trials still alive — finished trials
    consume no further adversary randomness, exactly like the scalar loop
    that stopped running them.
    """
    width = band_size + 1
    kind = plan.kind
    if kind in ("none", "fixed", "lowband") and not plan.needs_rng:
        return np.broadcast_to(plan.static_mask, (trials, width))
    if kind == "sweep":
        start = ((global_round - 1) * plan.step) % band_size
        mask = np.zeros(width, dtype=bool)
        mask[(start + np.arange(plan.count)) % band_size + 1] = True
        return np.broadcast_to(mask, (trials, width))
    disrupted = np.zeros((trials, width), dtype=bool)
    alive_idx = np.flatnonzero(alive)
    if alive_idx.size == 0:
        return disrupted
    if kind == "random":
        population = np.arange(1, band_size + 1, dtype=np.int64)
        disrupted[alive_idx] = streams.sample_mask(
            adversary_sids[alive_idx], population, plan.count, width
        )
        return disrupted
    if kind == "bursty":
        phase = (global_round - 1) % plan.period
        if phase >= plan.on_rounds:
            return disrupted
        population = np.arange(1, band_size + 1, dtype=np.int64)
        disrupted[alive_idx] = streams.sample_mask(
            adversary_sids[alive_idx], population, plan.count, width
        )
        return disrupted
    if kind == "lowband":
        disrupted[alive_idx] = plan.static_mask
        if plan.count > 0:
            disrupted[alive_idx] |= streams.sample_mask(
                adversary_sids[alive_idx], plan.others, plan.count, width
            )
        return disrupted
    # Adaptive jammers: rank by history through the previous round.  A stable
    # argsort on the negated usage counts reproduces the scalar tie-break
    # (ascending frequency index).
    assert cum_broadcasts is not None
    usage = cum_broadcasts[:, 1:]
    if kind == "twoprod":
        assert cum_deliveries is not None
        usage = usage + cum_deliveries[:, 1:]
    order = np.argsort(-usage, axis=1, kind="stable")
    np.put_along_axis(disrupted[:, 1:], order[:, : plan.count], True, axis=1)
    return disrupted


def _lockstep(config: SimulationConfig, seeds: Sequence[int]) -> list[SimulationResult]:
    """Run every seed of a batchable template in lockstep.  Bit-exact."""
    params = config.params
    band_size = params.frequencies
    width = band_size + 1
    trials = len(seeds)
    program = _protocol_program(config)
    plan = _jammer_plan(config)
    node_ids, activation_rounds = _activation_rows(config.activation, config.max_rounds)
    total_rows = len(node_ids)
    node_total = config.activation.node_count
    last_activation_bound = config.activation.last_activation_round()
    max_rounds = config.max_rounds

    # -- stream setup: uids from the real Python streams, then transplant --
    rngs: list[random.Random] = []
    uid = np.zeros((trials, total_rows), dtype=np.int64)
    for t, seed in enumerate(seeds):
        for r, node_id in enumerate(node_ids):
            rng = random.Random(derive_seed(seed, "node", node_id))
            uid[t, r] = draw_uid(rng, params.participant_bound)
            rngs.append(rng)
    adversary_sids = np.array([], dtype=np.int64)
    if plan.needs_rng:
        adversary_sids = np.arange(trials, dtype=np.int64) + trials * total_rows
        for seed in seeds:
            rngs.append(random.Random(derive_seed(seed, "adversary")))
    streams = _WordStreams(rngs)
    node_sids = (
        np.arange(trials, dtype=np.int64)[:, None] * total_rows
        + np.arange(total_rows, dtype=np.int64)[None, :]
    )

    # -- lockstep state ----------------------------------------------------
    state = np.zeros((trials, total_rows), dtype=np.int64)
    adopted = np.zeros((trials, total_rows), dtype=bool)
    offset = np.zeros((trials, total_rows), dtype=np.int64)
    first_sync_round = np.zeros((trials, total_rows), dtype=np.int64)
    leader_ever = np.zeros((trials, total_rows), dtype=bool)
    synced_count = np.zeros(trials, dtype=np.int64)
    alive = np.ones(trials, dtype=bool)
    grace = np.full(trials, -1, dtype=np.int64)  # -1 = "no grace period running"
    rounds_simulated = np.zeros(trials, dtype=np.int64)
    metric_names = ("broadcasts", "deliveries", "collisions", "prevented", "disrupted")
    counters = {name: np.zeros(trials, dtype=np.int64) for name in metric_names}
    role_rounds = np.zeros((trials, 4), dtype=np.int64)
    violations: list[list[PropertyViolation]] = [[] for _ in range(trials)]
    cum_broadcasts = np.zeros((trials, width), dtype=np.int64) if plan.adaptive else None
    cum_deliveries = (
        np.zeros((trials, width), dtype=np.int64) if plan.kind == "twoprod" else None
    )

    trial_column = np.arange(trials, dtype=np.int64)[:, None]
    leader_probability = program.leader_probability
    contender_probability = program.contender_probability
    stop_enabled = config.stop_when_synchronized
    extra_after_sync = config.extra_rounds_after_sync

    active_rows = 0
    for global_round in range(1, max_rounds + 1):
        if not alive.any():
            break
        while active_rows < total_rows and activation_rounds[active_rows] == global_round:
            active_rows += 1
        R = active_rows

        disrupted = _disruption_masks(
            plan,
            streams,
            adversary_sids,
            global_round,
            alive,
            trials,
            band_size,
            cum_broadcasts,
            cum_deliveries,
        )
        counters["disrupted"] += np.where(alive, disrupted[:, 1:].sum(axis=1), 0)

        if R > 0:
            state_r = state[:, :R]
            uid_r = uid[:, :R]
            local_round = global_round - activation_rounds[:R] + 1  # shared across trials
            act2d = alive[:, None] & np.ones(R, dtype=bool)[None, :]

            # Promotion: a contender that outlived its horizon becomes leader
            # and adopts its own activation age as the numbering.
            promoted = act2d & (state_r == _CONTENDER) & (local_round > program.horizon)
            if promoted.any():
                state_r[promoted] = _LEADER
                adopted[:, :R][promoted] = True
                offset[:, :R][promoted] = 0

            # Stage A: frequency draws, in each node's own stream.
            sids = node_sids[:, :R]
            frequency = np.zeros((trials, R), dtype=np.int64)
            if program.kind == "single":
                frequency[act2d] = program.channel
                needs_b = act2d & ((state_r == _CONTENDER) | (state_r == _LEADER))
            elif program.kind == "roundrobin":
                sweep = (local_round[None, :] + uid_r) % band_size + 1
                frequency = np.where(act2d, sweep, 0)
                leaders = act2d & (state_r == _LEADER)
                if leaders.any():
                    frequency[leaders] = 1 + streams.randbelow(sids[leaders], program.band_width)
                needs_b = leaders
            else:
                if act2d.any():
                    frequency[act2d] = 1 + streams.randbelow(sids[act2d], program.band_width)
                needs_b = act2d & ((state_r == _CONTENDER) | (state_r == _LEADER))

            # Stage B: broadcast-probability draws, after the frequency draw
            # in every stream, exactly like the scalar protocols.
            draws = np.zeros((trials, R), dtype=np.float64)
            if needs_b.any():
                draws[needs_b] = streams.randoms(sids[needs_b])
            if program.kind == "roundrobin":
                slot_hit = (local_round[None, :] % program.slots) == (uid_r % program.slots)
                broadcasting = (act2d & (state_r == _CONTENDER) & slot_hit) | (
                    needs_b & (draws < leader_probability)
                )
            else:
                threshold = np.where(
                    state_r == _CONTENDER,
                    contender_probability[local_round][None, :],
                    leader_probability,
                )
                broadcasting = needs_b & (draws < threshold)

            # Reception: exactly-one-broadcaster-and-undisrupted delivers.
            counts = np.zeros((trials, width), dtype=np.int64)
            leader_sum = np.zeros((trials, width), dtype=np.int64)
            round_sum = np.zeros((trials, width), dtype=np.int64)
            ts_round_sum = np.zeros((trials, width), dtype=np.int64)
            ts_uid_sum = np.zeros((trials, width), dtype=np.int64)
            bt = np.broadcast_to(trial_column, (trials, R))[broadcasting]
            bf = frequency[broadcasting]
            np.add.at(counts, (bt, bf), 1)
            is_leader_b = (state_r == _LEADER)[broadcasting].astype(np.int64)
            np.add.at(leader_sum, (bt, bf), is_leader_b)
            outputs_now = offset[:, :R] + local_round[None, :]
            np.add.at(round_sum, (bt, bf), outputs_now[broadcasting])
            np.add.at(ts_round_sum, (bt, bf), np.broadcast_to(local_round, (trials, R))[broadcasting])
            np.add.at(ts_uid_sum, (bt, bf), uid_r[broadcasting])
            delivered = (counts == 1) & ~disrupted

            # Per-listener effects (broadcasters never receive).
            got = delivered[trial_column, frequency] & act2d & ~broadcasting
            from_leader = leader_sum[trial_column, frequency] > 0
            message_round = round_sum[trial_column, frequency]
            message_ts_round = ts_round_sum[trial_column, frequency]
            message_ts_uid = ts_uid_sum[trial_column, frequency]
            hears_leader = got & from_leader & (state_r != _LEADER)
            newly_adopting = hears_leader & ~adopted[:, :R]
            knocked_out = (
                got
                & ~from_leader
                & (state_r == _CONTENDER)
                & (
                    (message_ts_round > local_round[None, :])
                    | (
                        (message_ts_round == local_round[None, :])
                        & (message_ts_uid > uid_r)
                    )
                )
            )
            offset[:, :R][newly_adopting] = (message_round - local_round[None, :])[newly_adopting]
            adopted[:, :R][newly_adopting] = True
            state_r[hears_leader] = _SYNCHRONIZED
            state_r[knocked_out] = _KNOCKED_OUT

            # Outputs, latches, roles — mirrors the scalar post-reception pass.
            producing = act2d & adopted[:, :R]
            newly_synced = producing & (first_sync_round[:, :R] == 0)
            first_sync_round[:, :R][newly_synced] = global_round
            synced_count += newly_synced.sum(axis=1)
            leader_ever[:, :R] |= act2d & (state_r == _LEADER)
            for s in range(4):
                role_rounds[:, s] += (act2d & (state_r == s)).sum(axis=1)

            # Agreement: any trial with two distinct non-⊥ outputs this round.
            outputs_after = offset[:, :R] + local_round[None, :]
            lowest = np.where(producing, outputs_after, _HUGE).min(axis=1)
            highest = np.where(producing, outputs_after, -1).max(axis=1)
            disagreeing = alive & (lowest != _HUGE) & (highest > lowest)
            for t in np.flatnonzero(disagreeing):
                distinct = np.unique(outputs_after[t][producing[t]]).tolist()
                violations[t].append(
                    PropertyViolation(
                        property_name="agreement",
                        global_round=global_round,
                        node_id=None,
                        detail=f"distinct non-⊥ outputs {distinct} in the same round",
                    )
                )

            counters["broadcasts"] += broadcasting.sum(axis=1)
            counters["deliveries"] += delivered[:, 1:].sum(axis=1)
            counters["collisions"] += (counts[:, 1:] >= 2).sum(axis=1)
            counters["prevented"] += ((counts[:, 1:] == 1) & disrupted[:, 1:]).sum(axis=1)
            if cum_broadcasts is not None:
                cum_broadcasts += counts
            if cum_deliveries is not None:
                cum_deliveries += delivered.astype(np.int64)

        rounds_simulated[alive] = global_round

        if stop_enabled and R == node_total and global_round >= last_activation_bound and R > 0:
            stopping = alive & (synced_count == node_total)
            entering = stopping & (grace < 0)
            grace = np.where(entering, extra_after_sync, grace)
            finished = stopping & (grace <= 0)
            alive &= ~finished
            grace = np.where(stopping & ~finished, grace - 1, grace)
            grace = np.where(~stopping, -1, grace)
        else:
            grace[:] = -1

    # -- per-trial result assembly ----------------------------------------
    results: list[SimulationResult] = []
    for t in range(trials):
        rounds = int(rounds_simulated[t])
        row_count = int(np.searchsorted(activation_rounds, rounds, side="right"))
        sync_rounds = first_sync_round[t, :row_count]
        latencies = {
            node_ids[r]: int(sync_rounds[r] - activation_rounds[r] + 1)
            for r in range(row_count)
            if sync_rounds[r] > 0
        }
        roles = Counter(
            {
                _STATE_ROLES[s]: int(role_rounds[t, s])
                for s in range(4)
                if role_rounds[t, s] > 0
            }
        )
        leader_uids = uid[t, :row_count][leader_ever[t, :row_count]]
        metrics = ExecutionMetrics(
            rounds_simulated=rounds,
            broadcasts=int(counters["broadcasts"][t]),
            deliveries=int(counters["deliveries"][t]),
            collisions=int(counters["collisions"][t]),
            disrupted_frequency_rounds=int(counters["disrupted"][t]),
            disrupted_deliveries_prevented=int(counters["prevented"][t]),
            leader_count=int(np.unique(leader_uids).size),
            sync_latencies=latencies,
            role_rounds=roles,
            activation_rounds={
                node_ids[r]: int(activation_rounds[r]) for r in range(row_count)
            },
        )
        report = PropertyReport()
        report.violations.extend(violations[t])
        achieved = row_count > 0 and bool((sync_rounds > 0).all())
        report.liveness_achieved = achieved
        if achieved:
            report.synchronization_round = int(sync_rounds.max())
        else:
            unsynced = sorted(
                node_ids[r] for r in range(row_count) if sync_rounds[r] == 0
            )
            report.violations.append(
                PropertyViolation(
                    property_name="liveness",
                    global_round=0,
                    node_id=unsynced[0] if unsynced else None,
                    detail=(
                        f"{len(unsynced)} node(s) never synchronized within "
                        f"{rounds} rounds"
                    ),
                )
            )
        results.append(SimulationResult(trace=None, report=report, metrics=metrics))
    return results


def _in_pool_worker() -> bool:
    """Whether this process is a pool worker (its dispatch already warned)."""
    return multiprocessing.current_process().name != "MainProcess"


def run_batch(template: SimulationConfig, seeds: Sequence[int]) -> list[SimulationResult]:
    """Run a multi-seed batch, vectorized when possible, in seed order.

    Results are bit-identical to running each seed through the scalar engine
    (the golden equivalence suite pins this).  A template outside the
    batchable subset transparently falls back to the scalar loop.
    """
    seed_list = list(seeds)
    if not seed_list:
        return []
    if not batchable(template):
        if template.faults is not None and not _in_pool_worker():
            warn_fault_batch_fallback(template.faults)
        return [simulate_one(template, seed) for seed in seed_list]
    return _lockstep(template, seed_list)


def run_reduced_batch(template: SimulationConfig, seeds: Sequence[int]) -> list[ReducedTrial]:
    """Like :func:`run_batch`, reduced to the campaign store's scalar rows."""
    return [
        ReducedTrial.from_result(seed, result)
        for seed, result in zip(seeds, run_batch(template, seeds))
    ]
