"""Per-execution metrics.

The metrics collector aggregates spectrum- and protocol-level counters as the
simulation runs: broadcasts, collisions, disrupted rounds, successful
deliveries, leader counts, and synchronization latencies.  It is deliberately
decoupled from the property checker — metrics describe *how* an execution
went; the checker decides whether it was *correct*.

:class:`MetricsObserver` is the streaming implementation: the simulator feeds
it one resolved round at a time, so metrics are available even when no trace
is retained.  :func:`collect_metrics` keeps the historical post-hoc API by
replaying a buffered trace through the observer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.observers import BaseRoundObserver, replay_trace
from repro.engine.trace import ExecutionTrace, RoundRecord
from repro.types import GlobalRound, NodeId, Role


@dataclass
class ExecutionMetrics:
    """Aggregate counters for one execution.

    Attributes
    ----------
    rounds_simulated:
        Total number of rounds driven by the simulator.
    broadcasts:
        Total number of broadcast actions across all nodes and rounds.
    deliveries:
        Number of (frequency, round) pairs on which a message was delivered.
    collisions:
        Number of (frequency, round) pairs with two or more broadcasters.
    disrupted_frequency_rounds:
        Number of (frequency, round) pairs disrupted by the adversary.
    disrupted_deliveries_prevented:
        Number of (frequency, round) pairs where a single broadcaster was
        present but the adversary disrupted the frequency (lost opportunities).
    leader_count:
        Number of distinct nodes that ever reported the LEADER role.
    sync_latencies:
        Mapping node id → rounds from activation to first non-⊥ output
        (absent for nodes that never synchronized).
    role_rounds:
        Mapping role → total node-rounds spent in that role.
    activation_rounds:
        Mapping node id → the global round the node was activated in (every
        activated node appears, synchronized or not — this is what lets
        trace-free runs still report per-node outcomes).
    """

    rounds_simulated: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    collisions: int = 0
    disrupted_frequency_rounds: int = 0
    disrupted_deliveries_prevented: int = 0
    leader_count: int = 0
    sync_latencies: dict[NodeId, int] = field(default_factory=dict)
    role_rounds: Counter = field(default_factory=Counter)
    activation_rounds: dict[NodeId, int] = field(default_factory=dict)

    @property
    def max_sync_latency(self) -> int | None:
        """The worst activation-to-synchronization latency, or ``None``."""
        return max(self.sync_latencies.values()) if self.sync_latencies else None

    @property
    def mean_sync_latency(self) -> float | None:
        """The mean activation-to-synchronization latency, or ``None``."""
        if not self.sync_latencies:
            return None
        return sum(self.sync_latencies.values()) / len(self.sync_latencies)

    @property
    def delivery_rate(self) -> float:
        """Deliveries per simulated round."""
        return self.deliveries / self.rounds_simulated if self.rounds_simulated else 0.0

    @property
    def collision_rate(self) -> float:
        """Collisions per simulated round."""
        return self.collisions / self.rounds_simulated if self.rounds_simulated else 0.0


class MetricsObserver(BaseRoundObserver):
    """Accumulates :class:`ExecutionMetrics` incrementally, round by round.

    The simulator attaches one per execution; tests can also feed it manually
    or replay a buffered trace through it (see :func:`collect_metrics`).
    Call :meth:`result` once the execution is over.
    """

    def __init__(self) -> None:
        self._metrics = ExecutionMetrics()
        self._leader_nodes: set[NodeId] = set()

    def on_activation(self, node_id: NodeId, global_round: GlobalRound) -> None:
        self._metrics.activation_rounds[node_id] = global_round

    def on_round(self, record: RoundRecord) -> None:
        # Hot path: one call per simulated round at every trace level.  The
        # aggregate counters accumulate in locals and the per-node loops bind
        # their targets once, so the per-round cost is a handful of dict
        # operations rather than repeated attribute traversals.
        metrics = self._metrics
        metrics.rounds_simulated += 1
        broadcasts = 0
        deliveries = 0
        collisions = 0
        prevented = 0
        for activity in record.activity.per_frequency.values():
            broadcaster_count = len(activity.broadcasters)
            broadcasts += broadcaster_count
            if activity.delivered:
                deliveries += 1
            if broadcaster_count >= 2:
                collisions += 1
            if activity.disrupted and broadcaster_count == 1:
                prevented += 1
        metrics.broadcasts += broadcasts
        metrics.deliveries += deliveries
        metrics.collisions += collisions
        metrics.disrupted_deliveries_prevented += prevented
        metrics.disrupted_frequency_rounds += len(record.activity.disrupted)
        role_rounds = metrics.role_rounds
        leader_nodes = self._leader_nodes
        leader_role = Role.LEADER
        for node_id, role in record.roles.items():
            role_rounds[role] += 1
            if role is leader_role:
                leader_nodes.add(node_id)
        sync_latencies = metrics.sync_latencies
        activation_rounds = metrics.activation_rounds
        global_round = record.global_round
        for node_id, output in record.outputs.items():
            if output is None or node_id in sync_latencies:
                continue
            activation_round = activation_rounds.get(node_id)
            if activation_round is not None:
                sync_latencies[node_id] = global_round - activation_round + 1

    def result(self, leader_uids: frozenset[int] | None = None) -> ExecutionMetrics:
        """The accumulated metrics.

        Parameters
        ----------
        leader_uids:
            Optional set of distinct leader uids observed by the simulator
            (more precise than counting LEADER roles per round, because
            leaders may stop being tracked once everything is synchronized).
        """
        if leader_uids is not None:
            self._metrics.leader_count = len(leader_uids)
        else:
            self._metrics.leader_count = len(self._leader_nodes)
        return self._metrics


def collect_metrics(trace: ExecutionTrace, leader_uids: frozenset[int] | None = None) -> ExecutionMetrics:
    """Compute :class:`ExecutionMetrics` from a finished trace.

    This is the historical post-hoc API; it replays the trace through a
    :class:`MetricsObserver` and requires a
    :data:`~repro.engine.observers.TraceLevel.FULL` trace.

    Parameters
    ----------
    trace:
        The execution trace.
    leader_uids:
        Optional set of distinct leader uids observed by the simulator (more
        precise than counting LEADER roles in the final round, because leaders
        may stop being tracked once everything is synchronized).
    """
    trace.require_complete("collect_metrics")
    observer = MetricsObserver()
    replay_trace(trace, observer)
    return observer.result(leader_uids=leader_uids)


def summarize_roles(role_rounds: Mapping[Role, int]) -> str:
    """A compact one-line summary of how node-rounds were spent per role."""
    parts = [f"{role.value}={count}" for role, count in sorted(role_rounds.items(), key=lambda kv: kv[0].value)]
    return ", ".join(parts) if parts else "(no active rounds)"
