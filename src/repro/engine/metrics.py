"""Per-execution metrics.

The metrics collector aggregates spectrum- and protocol-level counters as the
simulation runs: broadcasts, collisions, disrupted rounds, successful
deliveries, leader counts, and synchronization latencies.  It is deliberately
decoupled from the property checker — metrics describe *how* an execution
went; the checker decides whether it was *correct*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Mapping

from repro.engine.trace import ExecutionTrace
from repro.types import NodeId, Role


@dataclass
class ExecutionMetrics:
    """Aggregate counters for one execution.

    Attributes
    ----------
    rounds_simulated:
        Total number of rounds driven by the simulator.
    broadcasts:
        Total number of broadcast actions across all nodes and rounds.
    deliveries:
        Number of (frequency, round) pairs on which a message was delivered.
    collisions:
        Number of (frequency, round) pairs with two or more broadcasters.
    disrupted_frequency_rounds:
        Number of (frequency, round) pairs disrupted by the adversary.
    disrupted_deliveries_prevented:
        Number of (frequency, round) pairs where a single broadcaster was
        present but the adversary disrupted the frequency (lost opportunities).
    leader_count:
        Number of distinct nodes that ever reported the LEADER role.
    sync_latencies:
        Mapping node id → rounds from activation to first non-⊥ output
        (absent for nodes that never synchronized).
    role_rounds:
        Mapping role → total node-rounds spent in that role.
    """

    rounds_simulated: int = 0
    broadcasts: int = 0
    deliveries: int = 0
    collisions: int = 0
    disrupted_frequency_rounds: int = 0
    disrupted_deliveries_prevented: int = 0
    leader_count: int = 0
    sync_latencies: dict[NodeId, int] = field(default_factory=dict)
    role_rounds: Counter = field(default_factory=Counter)

    @property
    def max_sync_latency(self) -> int | None:
        """The worst activation-to-synchronization latency, or ``None``."""
        return max(self.sync_latencies.values()) if self.sync_latencies else None

    @property
    def mean_sync_latency(self) -> float | None:
        """The mean activation-to-synchronization latency, or ``None``."""
        if not self.sync_latencies:
            return None
        return sum(self.sync_latencies.values()) / len(self.sync_latencies)

    @property
    def delivery_rate(self) -> float:
        """Deliveries per simulated round."""
        return self.deliveries / self.rounds_simulated if self.rounds_simulated else 0.0

    @property
    def collision_rate(self) -> float:
        """Collisions per simulated round."""
        return self.collisions / self.rounds_simulated if self.rounds_simulated else 0.0


def collect_metrics(trace: ExecutionTrace, leader_uids: frozenset[int] | None = None) -> ExecutionMetrics:
    """Compute :class:`ExecutionMetrics` from a finished trace.

    Parameters
    ----------
    trace:
        The execution trace.
    leader_uids:
        Optional set of distinct leader uids observed by the simulator (more
        precise than counting LEADER roles in the final round, because leaders
        may stop being tracked once everything is synchronized).
    """
    metrics = ExecutionMetrics(rounds_simulated=trace.rounds_simulated)
    leader_nodes: set[NodeId] = set()

    for record in trace:
        for activity in record.activity.per_frequency.values():
            metrics.broadcasts += len(activity.broadcasters)
            if activity.delivered:
                metrics.deliveries += 1
            if activity.collided:
                metrics.collisions += 1
            if activity.disrupted and len(activity.broadcasters) == 1:
                metrics.disrupted_deliveries_prevented += 1
        metrics.disrupted_frequency_rounds += len(record.activity.disrupted)
        for node_id, role in record.roles.items():
            metrics.role_rounds[role] += 1
            if role is Role.LEADER:
                leader_nodes.add(node_id)

    for node_id in trace.node_ids:
        latency = trace.sync_latency_of(node_id)
        if latency is not None:
            metrics.sync_latencies[node_id] = latency

    if leader_uids is not None:
        metrics.leader_count = len(leader_uids)
    else:
        metrics.leader_count = len(leader_nodes)
    return metrics


def summarize_roles(role_rounds: Mapping[Role, int]) -> str:
    """A compact one-line summary of how node-rounds were spent per role."""
    parts = [f"{role.value}={count}" for role, count in sorted(role_rounds.items(), key=lambda kv: kv[0].value)]
    return ", ".join(parts) if parts else "(no active rounds)"
