"""Streaming round observers.

The simulator no longer buffers a full execution and re-walks it post hoc:
instead it feeds every resolved round, as it happens, to a pipeline of
*round observers*.  The trace recorder, the property checker, the metrics
collector, and the spectrum log are all observers; tests and experiments can
attach their own.

An observer sees four events, always in this order::

    on_simulation_start(params, seed)
    on_activation(node_id, global_round)     # once per node, before its round
    on_round(record)                         # once per resolved round
    on_simulation_end(rounds_simulated)

Observers keep incremental state, so heavy sweeps can run with
:attr:`TraceLevel.NONE` (no buffered trace at all) and still produce the exact
same property report and metrics as a full-trace run.
"""

from __future__ import annotations

import enum
from typing import Optional, Protocol, runtime_checkable

from repro.engine.trace import ExecutionTrace, RoundRecord
from repro.exceptions import ConfigurationError
from repro.params import ModelParameters
from repro.types import GlobalRound, NodeId


class TraceLevel(enum.Enum):
    """How much per-round history an execution retains.

    FULL
        Every :class:`~repro.engine.trace.RoundRecord` is kept (the seed
        behaviour).  Required by anything that inspects the trace post hoc.
    SAMPLED
        Only every ``trace_sample_interval``-th round (plus the first and the
        final round) is kept — enough to eyeball an execution without the
        memory cost.  Reports and metrics are unaffected: they stream.
    NONE
        No trace is kept; :attr:`SimulationResult.trace` is ``None``.  This is
        the right level for large multi-seed sweeps.
    """

    FULL = "full"
    SAMPLED = "sampled"
    NONE = "none"


@runtime_checkable
class RoundObserver(Protocol):
    """Structural interface of a streaming round observer."""

    def on_simulation_start(self, params: ModelParameters, seed: int) -> None: ...

    def on_activation(self, node_id: NodeId, global_round: GlobalRound) -> None: ...

    def on_round(self, record: RoundRecord) -> None: ...

    def on_simulation_end(self, rounds_simulated: int) -> None: ...


class BaseRoundObserver:
    """No-op base class; concrete observers override what they need."""

    def on_simulation_start(self, params: ModelParameters, seed: int) -> None:
        pass

    def on_activation(self, node_id: NodeId, global_round: GlobalRound) -> None:
        pass

    def on_round(self, record: RoundRecord) -> None:
        pass

    def on_simulation_end(self, rounds_simulated: int) -> None:
        pass


class TraceRecorder(BaseRoundObserver):
    """Builds an :class:`~repro.engine.trace.ExecutionTrace` as rounds stream by.

    Parameters
    ----------
    level:
        How much history to retain.  With :attr:`TraceLevel.NONE` the recorder
        records activations only and :attr:`trace` stays usable but empty of
        round records; callers normally just skip attaching a recorder.
    sample_interval:
        With :attr:`TraceLevel.SAMPLED`, keep one round in every
        ``sample_interval`` (the first round is always kept, and the final
        round is appended at :meth:`on_simulation_end` if it was skipped).
    """

    def __init__(self, level: TraceLevel = TraceLevel.FULL, sample_interval: int = 100) -> None:
        if sample_interval < 1:
            raise ConfigurationError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        self._level = level
        self._sample_interval = sample_interval
        self._trace: Optional[ExecutionTrace] = None
        self._last_record: Optional[RoundRecord] = None

    @property
    def _records_every_round(self) -> bool:
        # Sampling at interval 1 keeps every round, so the trace is complete.
        return self._level is TraceLevel.FULL or (
            self._level is TraceLevel.SAMPLED and self._sample_interval == 1
        )

    @property
    def trace(self) -> Optional[ExecutionTrace]:
        """The trace built so far (``None`` before ``on_simulation_start``)."""
        return self._trace

    def on_simulation_start(self, params: ModelParameters, seed: int) -> None:
        self._trace = ExecutionTrace(
            params=params, seed=seed, complete=self._records_every_round
        )

    def on_activation(self, node_id: NodeId, global_round: GlobalRound) -> None:
        assert self._trace is not None
        self._trace.activation_rounds[node_id] = global_round

    def on_round(self, record: RoundRecord) -> None:
        assert self._trace is not None
        self._last_record = record
        if self._level is TraceLevel.FULL:
            self._trace.append(record)
        elif self._level is TraceLevel.SAMPLED:
            if record.global_round == 1 or record.global_round % self._sample_interval == 0:
                self._trace.append(record)

    def on_simulation_end(self, rounds_simulated: int) -> None:
        if (
            self._level is TraceLevel.SAMPLED
            and self._trace is not None
            and self._last_record is not None
            and (not self._trace.records or self._trace.records[-1] is not self._last_record)
        ):
            self._trace.append(self._last_record)


def replay_trace(trace: ExecutionTrace, *observers: RoundObserver) -> None:
    """Feed a buffered trace through observers, as if it were streaming.

    This is what keeps the post-hoc APIs (``PropertyChecker.check``,
    ``collect_metrics``) alive on top of the streaming implementations.
    Replaying a sampled trace would feed the observers only the retained
    subset of rounds — silently wrong — so incomplete traces are refused.
    """
    trace.require_complete("replay_trace")
    for observer in observers:
        observer.on_simulation_start(trace.params, trace.seed)
    for node_id, global_round in trace.activation_rounds.items():
        for observer in observers:
            observer.on_activation(node_id, global_round)
    for record in trace:
        for observer in observers:
            observer.on_round(record)
    for observer in observers:
        observer.on_simulation_end(trace.rounds_simulated)
