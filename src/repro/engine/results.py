"""Simulation result containers.

A :class:`SimulationResult` bundles everything a caller typically wants from
one execution: the trace, the property report, and the metrics, plus a few
convenience accessors used pervasively by experiments and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.checker import PropertyReport
from repro.engine.metrics import ExecutionMetrics
from repro.engine.trace import ExecutionTrace
from repro.faults.stabilization import StabilizationReport


@dataclass(frozen=True)
class SimulationResult:
    """The outcome of one simulated execution.

    Attributes
    ----------
    trace:
        The retained execution trace — full or sampled depending on the
        configuration's :class:`~repro.engine.observers.TraceLevel`, and
        ``None`` when the execution ran trace-free
        (:attr:`~repro.engine.observers.TraceLevel.NONE`).  The report and
        metrics are streamed during the run and never depend on it.
    report:
        The property-checker report for the execution.
    metrics:
        Aggregate execution metrics.
    stabilization:
        Rounds-to-reconverge measurements for fault-injected executions
        (``None`` for fault-free runs, which keeps their serialized digests
        byte-identical to earlier releases).
    """

    trace: Optional[ExecutionTrace]
    report: PropertyReport
    metrics: ExecutionMetrics
    stabilization: Optional[StabilizationReport] = None

    @property
    def synchronized(self) -> bool:
        """True if every activated node synchronized (liveness achieved)."""
        return self.report.liveness_achieved

    @property
    def synchronization_round(self) -> int | None:
        """Global round by which the last node synchronized, or ``None``."""
        return self.report.synchronization_round

    @property
    def max_sync_latency(self) -> int | None:
        """Worst per-node activation-to-synchronization latency, or ``None``."""
        return self.metrics.max_sync_latency

    @property
    def rounds_simulated(self) -> int:
        """Number of rounds the simulator ran."""
        return self.metrics.rounds_simulated

    @property
    def leader_count(self) -> int:
        """Number of distinct leaders observed during the execution."""
        return self.metrics.leader_count

    @property
    def agreement_holds(self) -> bool:
        """True if no two nodes ever disagreed on the round number."""
        return self.report.agreement_holds

    @property
    def stabilization_rounds(self) -> int | None:
        """Worst rounds-to-reconverge over injection epochs (``None`` fault-free)."""
        if self.stabilization is None:
            return None
        return self.stabilization.max_recovery_rounds

    def summary(self) -> str:
        """A one-line human-readable summary."""
        status = "synchronized" if self.synchronized else "NOT synchronized"
        latency = self.max_sync_latency if self.max_sync_latency is not None else "-"
        return (
            f"{status} in {self.rounds_simulated} rounds "
            f"(max latency {latency}, leaders {self.leader_count}, "
            f"agreement {'ok' if self.agreement_holds else 'VIOLATED'})"
        )
