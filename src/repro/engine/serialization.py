"""Exporting simulation results to plain data formats.

Experiments often want to post-process executions outside this library
(pandas, spreadsheets, plotting).  This module converts traces, property
reports, and metrics into JSON-serializable dictionaries and writes CSV
round logs, without adding any dependency beyond the standard library.
"""

from __future__ import annotations

import csv
import hashlib
import json
from pathlib import Path
from typing import Any

from repro.engine.results import SimulationResult
from repro.engine.runner import TrialSummary
from repro.engine.trace import ExecutionTrace


def trace_to_dict(trace: ExecutionTrace, include_rounds: bool = True) -> dict[str, Any]:
    """A JSON-serializable summary of an execution trace.

    The summary describes exactly the rounds the trace retains.  For an
    incomplete (:data:`~repro.engine.observers.TraceLevel.SAMPLED`) trace the
    round-derived fields would be wrong, so they are omitted rather than
    silently misreported: ``rounds_simulated`` is ``None`` (``rounds_retained``
    counts the sample) and the per-node entries carry no sync fields — the
    exact whole-execution numbers live in the result's metrics section.

    Parameters
    ----------
    trace:
        The trace to convert.
    include_rounds:
        If True, include the full per-round output/role log (can be large);
        otherwise only the per-node summary is included.
    """
    data: dict[str, Any] = {
        "params": {
            "frequencies": trace.params.frequencies,
            "disruption_budget": trace.params.disruption_budget,
            "participant_bound": trace.params.participant_bound,
        },
        "seed": trace.seed,
        "complete": trace.complete,
        "rounds_retained": trace.rounds_retained,
        "rounds_simulated": trace.rounds_simulated if trace.complete else None,
        "nodes": [
            {
                "node_id": node_id,
                "activation_round": trace.activation_rounds[node_id],
                **(
                    {
                        "sync_round": trace.sync_round_of(node_id),
                        "sync_latency": trace.sync_latency_of(node_id),
                    }
                    if trace.complete
                    else {}
                ),
            }
            for node_id in trace.node_ids
        ],
    }
    if include_rounds:
        data["rounds"] = [
            {
                "global_round": record.global_round,
                "outputs": {str(node): value for node, value in record.outputs.items()},
                "roles": {str(node): role.value for node, role in record.roles.items()},
                "disrupted": sorted(record.activity.disrupted),
                "delivered_on": list(record.activity.successful_frequencies()),
                "broadcasters": record.activity.broadcaster_count(),
            }
            for record in trace
        ]
    return data


def result_to_dict(result: SimulationResult, include_rounds: bool = False) -> dict[str, Any]:
    """A JSON-serializable summary of a full simulation result.

    With a trace-free execution (``TraceLevel.NONE``) the ``trace`` entry is
    ``None``; the property and metrics sections are always present.
    """
    metrics = result.metrics
    report = result.report
    data: dict[str, Any] = {
        "trace": (
            trace_to_dict(result.trace, include_rounds=include_rounds)
            if result.trace is not None
            else None
        ),
        "properties": {
            "validity": report.validity_holds,
            "synch_commit": report.synch_commit_holds,
            "correctness": report.correctness_holds,
            "agreement": report.agreement_holds,
            "liveness": report.liveness_achieved,
            "synchronization_round": report.synchronization_round,
            "violations": [
                {
                    "property": violation.property_name,
                    "global_round": violation.global_round,
                    "node_id": violation.node_id,
                    "detail": violation.detail,
                }
                for violation in report.violations
            ],
        },
        "metrics": {
            "rounds_simulated": metrics.rounds_simulated,
            "broadcasts": metrics.broadcasts,
            "deliveries": metrics.deliveries,
            "collisions": metrics.collisions,
            "disrupted_frequency_rounds": metrics.disrupted_frequency_rounds,
            "leader_count": metrics.leader_count,
            "max_sync_latency": metrics.max_sync_latency,
            "mean_sync_latency": metrics.mean_sync_latency,
            "role_rounds": {role.value: count for role, count in metrics.role_rounds.items()},
            # Exact per-node data, streamed during the run — valid at every
            # trace level (the trace section's node summary is only exact for
            # a complete trace).
            "activation_rounds": {
                str(node): global_round
                for node, global_round in sorted(metrics.activation_rounds.items())
            },
            "sync_latencies": {
                str(node): latency
                for node, latency in sorted(metrics.sync_latencies.items())
            },
        },
    }
    # Present only for fault-injected executions, so fault-free exports stay
    # byte-identical to earlier releases.
    if result.stabilization is not None:
        data["stabilization"] = result.stabilization.to_dict()
    return data


def trial_summary_to_dict(summary: TrialSummary) -> dict[str, Any]:
    """A JSON-serializable summary of a multi-seed trial batch.

    Mirrors the statistics the ``trials`` CLI table prints (the aggregate),
    plus one compact row per trial so the distribution can be re-derived
    without re-running anything.  Stabilization keys appear only for
    fault-injected batches, keeping fault-free exports byte-identical.
    """
    statistics_block: dict[str, Any] = {
        "liveness_rate": summary.liveness_rate,
        "agreement_rate": summary.agreement_rate,
        "safety_rate": summary.safety_rate,
        "unique_leader_rate": summary.unique_leader_rate,
        "mean_latency": summary.mean_latency,
        "median_latency": summary.median_latency,
        "p90_latency": summary.percentile_latency(0.9),
        "max_latency": summary.max_latency,
    }
    if summary.max_stabilization_rounds is not None:
        statistics_block["max_stabilization_rounds"] = summary.max_stabilization_rounds
        statistics_block["mean_stabilization_rounds"] = summary.mean_stabilization_rounds
    rows = []
    for seed, result in zip(summary.seeds, summary.results):
        row: dict[str, Any] = {
            "seed": seed,
            "synchronized": result.synchronized,
            "agreement": result.agreement_holds,
            "leader_count": result.leader_count,
            "max_sync_latency": result.max_sync_latency,
            "rounds_simulated": result.rounds_simulated,
        }
        if result.stabilization_rounds is not None:
            row["stabilization_rounds"] = result.stabilization_rounds
        rows.append(row)
    return {
        "trials": summary.trials,
        "seeds": list(summary.seeds),
        "statistics": statistics_block,
        "results": rows,
    }


def write_trials_json(summary: TrialSummary, path: str | Path) -> Path:
    """Write a trial-batch summary as JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(trial_summary_to_dict(summary), handle, indent=2)
    return target


def write_result_json(result: SimulationResult, path: str | Path, include_rounds: bool = False) -> Path:
    """Write a result summary as JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result, include_rounds=include_rounds), handle, indent=2)
    return target


def write_round_log_csv(trace: ExecutionTrace, path: str | Path) -> Path:
    """Write a per-(round, node) CSV log: output, role, and spectrum context."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["global_round", "node_id", "output", "role", "disrupted_channels", "deliveries"]
        )
        for record in trace:
            disrupted = len(record.activity.disrupted)
            deliveries = len(record.activity.successful_frequencies())
            for node_id in sorted(record.outputs):
                output = record.outputs[node_id]
                writer.writerow(
                    [
                        record.global_round,
                        node_id,
                        "" if output is None else output,
                        record.roles[node_id].value,
                        disrupted,
                        deliveries,
                    ]
                )
    return target


def execution_digest_dict(result: SimulationResult) -> dict[str, Any]:
    """A canonical, JSON-serializable description of *everything* a result holds.

    This is the equivalence-test vocabulary: two executions are bit-identical
    iff their digest dicts are equal.  It intentionally covers more than
    :func:`result_to_dict` — every metrics counter, every violation, and (when
    a trace is retained) the complete per-round record including per-frequency
    broadcaster/listener sets — so an engine refactor cannot change observable
    behaviour without changing the digest.
    """
    metrics = result.metrics
    report = result.report
    data: dict[str, Any] = {
        "report": {
            "liveness_achieved": report.liveness_achieved,
            "synchronization_round": report.synchronization_round,
            "violations": [
                {
                    "property": violation.property_name,
                    "global_round": violation.global_round,
                    "node_id": violation.node_id,
                    "detail": violation.detail,
                }
                for violation in report.violations
            ],
        },
        "metrics": {
            "rounds_simulated": metrics.rounds_simulated,
            "broadcasts": metrics.broadcasts,
            "deliveries": metrics.deliveries,
            "collisions": metrics.collisions,
            "disrupted_frequency_rounds": metrics.disrupted_frequency_rounds,
            "disrupted_deliveries_prevented": metrics.disrupted_deliveries_prevented,
            "leader_count": metrics.leader_count,
            "sync_latencies": {
                str(node): latency for node, latency in sorted(metrics.sync_latencies.items())
            },
            "role_rounds": {
                role.value: count for role, count in sorted(metrics.role_rounds.items(), key=lambda kv: kv[0].value)
            },
            "activation_rounds": {
                str(node): global_round
                for node, global_round in sorted(metrics.activation_rounds.items())
            },
        },
    }
    # Fault-injected executions carry the stabilization report in the digest
    # (reconvergence is observable behaviour); fault-free digests are
    # unchanged from earlier releases.
    if result.stabilization is not None:
        data["stabilization"] = result.stabilization.to_dict()
    if result.trace is None:
        data["trace"] = None
    else:
        trace = result.trace
        data["trace"] = {
            "seed": trace.seed,
            "complete": trace.complete,
            "activation_rounds": {
                str(node): global_round
                for node, global_round in sorted(trace.activation_rounds.items())
            },
            "rounds": [
                {
                    "global_round": record.global_round,
                    "outputs": {str(node): value for node, value in sorted(record.outputs.items())},
                    "roles": {str(node): role.value for node, role in sorted(record.roles.items())},
                    "disrupted": sorted(record.activity.disrupted),
                    "activations": list(record.activity.activations),
                    "per_frequency": {
                        str(frequency): {
                            "broadcasters": list(activity.broadcasters),
                            "listeners": list(activity.listeners),
                            "disrupted": activity.disrupted,
                            "delivered": activity.delivered,
                        }
                        for frequency, activity in sorted(record.activity.per_frequency.items())
                    },
                }
                for record in trace
            ],
        }
    return data


def execution_digest(result: SimulationResult) -> str:
    """A stable SHA-256 hex digest of :func:`execution_digest_dict`.

    Stable across processes and Python versions (canonical JSON, sorted keys),
    so recorded digests can serve as golden values for engine-equivalence
    tests and for the bench subsystem's work-determinism checks.
    """
    canonical = json.dumps(
        execution_digest_dict(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_result_json(path: str | Path) -> dict[str, Any]:
    """Load a result summary previously written by :func:`write_result_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
