"""The session-scoped persistent execution pool.

:func:`~repro.engine.parallel.run_configs` deliberately creates a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per call: a one-shot batch
should not leave worker processes behind.  But the workloads above it —
campaign sweeps over thousands of small cells, adversarial search over
thousands of candidates — call it once per cell or per candidate, and the
per-call pool spin-up/teardown plus per-trial config pickling come to dominate
once the simulations themselves are fast.  :class:`ExecutionPool` removes that
orchestration tax three ways:

* **persistent workers** — the process pool is started lazily on first use and
  reused across every subsequent call (and across
  :meth:`~repro.campaigns.runner.CampaignRunner.run` invocations, search
  generations, …) until :meth:`ExecutionPool.shutdown`;
* **chunked template-and-delta dispatch** — a multi-seed batch ships the
  shared :class:`~repro.engine.simulator.SimulationConfig` template *once per
  chunk* plus the chunk's seeds, instead of one fully pickled config per
  trial;
* **in-worker reduction** — when the caller only persists summary scalars
  (campaign stores, search scores), workers reduce each trial to a compact
  :class:`ReducedTrial` row and the full :class:`SimulationResult` never
  crosses the process boundary, keeping parent memory flat.

Every execution derives all randomness from its own seed, so none of this
changes results: a pooled/chunked/reduced batch is bit-identical to a serial
one (the golden-equivalence suite pins this).

A crashed worker (a hard ``os._exit``, an OOM kill) breaks the underlying
executor; the pool surfaces the failure as :class:`WorkerCrashError` and
discards the broken executor, so the *next* call transparently starts a fresh
one — a long campaign driver can catch, log, and resume without rebuilding its
own state.  Unpicklable work falls back to in-process serial execution with a
warning, exactly like the one-shot path.
"""

from __future__ import annotations

import logging
import os
import pickle
import signal
import time
import warnings
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.engine.results import SimulationResult
from repro.exceptions import ConfigurationError, SimulationError
from repro.telemetry import Telemetry, as_telemetry
from repro.telemetry.events import (
    BatchFallback,
    ChunkDispatched,
    ChunkRetried,
    SerialFallback,
    WorkerCrashRecovered,
)
from repro.telemetry.metrics import WorkerStatsDelta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.simulator import SimulationConfig

logger = logging.getLogger("repro.engine.pool")


class WorkerCrashError(SimulationError):
    """A worker process died mid-batch (not a Python exception — a crash).

    The pool that raised this has already discarded its broken executor; the
    next call on the same pool starts fresh workers.  Because executions are
    deterministic per seed, re-submitting the failed work is always safe.
    """


@dataclass(frozen=True, slots=True)
class ReducedTrial:
    """One execution reduced to the scalars the campaign store persists.

    This mirrors :class:`repro.campaigns.store.TrialRecord` field for field
    (that class lives above the engine layer and converts via
    ``TrialRecord.from_reduced``).  Workers return these instead of full
    :class:`~repro.engine.results.SimulationResult` objects when the caller
    asked for summaries only, so a million-trial campaign ships back a few
    scalars per trial rather than metrics/report object graphs.
    """

    seed: int
    synchronized: bool
    agreement: bool
    safety: bool
    leader_count: int
    max_sync_latency: Optional[int]
    rounds_simulated: int
    stabilization_rounds: Optional[int] = None

    @classmethod
    def from_result(cls, seed: int, result: SimulationResult) -> "ReducedTrial":
        """Extract the persisted scalars from a finished execution."""
        return cls(
            seed=seed,
            synchronized=result.synchronized,
            agreement=result.agreement_holds,
            safety=result.report.all_safety_holds,
            leader_count=result.leader_count,
            max_sync_latency=result.max_sync_latency,
            rounds_simulated=result.metrics.rounds_simulated,
            stabilization_rounds=result.stabilization_rounds,
        )


def simulate_one(template: "SimulationConfig", seed: int) -> SimulationResult:
    """Run one seed of a template in-process — the unit every path executes.

    Both the in-worker chunk loops below and the serial paths in
    :mod:`repro.engine.runner` call exactly this, which is what keeps seed
    substitution identical no matter where a trial runs.
    """
    from repro.engine.simulator import simulate

    return simulate(replace(template, seed=seed))


@dataclass(frozen=True, slots=True)
class ChunkResult:
    """One chunk's rows plus the worker's plain-data stats delta.

    This is everything a worker sends back: the results themselves and a
    picklable :class:`~repro.telemetry.metrics.WorkerStatsDelta` — never a
    telemetry handle, lock, or file descriptor.  The parent unwraps it via
    :meth:`ExecutionPool.ingest`, which merges the delta into the live
    registry (if any) and returns the bare rows, so every downstream consumer
    still sees plain result lists.
    """

    rows: tuple
    stats: WorkerStatsDelta


#: First-work timestamp per process id.  Keyed by pid because forked workers
#: inherit the parent's copy of this dict: re-keying under ``os.getpid()``
#: makes each worker measure its *own* uptime (since its first executed
#: chunk), not the parent's.
_WORKER_EPOCH: dict[int, float] = {}


def _worker_identity() -> tuple[int, float]:
    """This process's pid and its uptime since it first executed work."""
    pid = os.getpid()
    now = time.monotonic()
    return pid, now - _WORKER_EPOCH.setdefault(pid, now)


def _chunk_stats(rows: Sequence, batched: bool, seconds: float) -> WorkerStatsDelta:
    """The stats delta one finished chunk contributes (runs in the worker)."""
    rounds = 0
    for row in rows:
        if isinstance(row, ReducedTrial):
            rounds += row.rounds_simulated
        else:
            rounds += row.metrics.rounds_simulated
    pid, uptime = _worker_identity()
    return WorkerStatsDelta.for_chunk(
        pid=pid,
        uptime_s=uptime,
        trials=len(rows),
        rounds=rounds,
        batched=batched,
        seconds=seconds,
    )


def _run_seed_chunk(
    template: "SimulationConfig",
    seeds: tuple[int, ...],
    reduce: bool,
    batch: bool = False,
) -> ChunkResult:
    """Worker entry point: run one chunk of seeds against a shared template.

    With ``batch=True`` the chunk runs through the vectorized lockstep kernel
    (:mod:`repro.engine.batch`) when the template is batchable — bit-identical
    to the scalar loop, just amortized across the chunk's seeds — and falls
    back to the scalar loop per seed otherwise.  The rows come back wrapped
    in a :class:`ChunkResult` carrying this worker's stats delta.
    """
    started = time.perf_counter()
    batched = False
    rows: list[SimulationResult] | list[ReducedTrial]
    if batch:
        from repro.engine.batch import batchable, run_batch, run_reduced_batch

        batched = batchable(template)
        rows = run_reduced_batch(template, seeds) if reduce else run_batch(template, seeds)
    elif reduce:
        rows = [ReducedTrial.from_result(seed, simulate_one(template, seed)) for seed in seeds]
    else:
        rows = [simulate_one(template, seed) for seed in seeds]
    return ChunkResult(
        rows=tuple(rows),
        stats=_chunk_stats(rows, batched, time.perf_counter() - started),
    )


def _run_config_chunk(configs: tuple["SimulationConfig", ...]) -> ChunkResult:
    """Worker entry point: run one chunk of heterogeneous configurations."""
    from repro.engine.simulator import simulate

    started = time.perf_counter()
    rows = [simulate(config) for config in configs]
    return ChunkResult(
        rows=tuple(rows),
        stats=_chunk_stats(rows, False, time.perf_counter() - started),
    )


def payload_is_picklable(payload: object) -> bool:
    """Whether a work payload can cross the process boundary at all."""
    try:
        pickle.dumps(payload)
    except Exception:  # noqa: BLE001 - any pickling failure means no IPC
        return False
    return True


def warn_serial_fallback(
    detail: Optional[str] = None,
    stacklevel: int = 3,
    telemetry: Optional[Telemetry] = None,
) -> None:
    """The one shared unpicklable-work degrade-to-serial notification.

    Every fallback site routes through here, which lands the degradation in
    three places at once: the ``repro.engine.pool`` stdlib logger (so
    long-running services see it in their logs, not just on a stderr that a
    ``warnings`` filter shows once per process), the classic
    :class:`RuntimeWarning` (so tests and interactive use keep their existing
    contract), and — when a live telemetry handle is passed — a
    :class:`~repro.telemetry.events.SerialFallback` event plus the
    ``pool.serial_fallbacks`` counter.
    """
    message = "simulation config is not picklable"
    if detail:
        message += f" ({detail})"
    message += "; running trials serially instead of with worker processes"
    logger.warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)
    if telemetry is not None and telemetry.enabled:
        telemetry.counter(
            "pool.serial_fallbacks", help="unpicklable batches degraded to serial"
        ).inc()
        telemetry.emit(SerialFallback(detail=detail))


def warn_fault_batch_fallback(plan: object, stacklevel: int = 3) -> None:
    """The one ``--batch`` + fault-plan degrade-to-scalar notification.

    Fault injection rewrites per-node state mid-run, which the vectorized
    lockstep kernel cannot replay — the batch silently running a *different*
    engine would be worse than the slowdown, so every entry point that routes
    a fault-injected template at the kernel warns exactly once per batch
    (parent-side; the in-worker fallback stays quiet).
    """
    message = (
        f"fault plan {plan.describe()} cannot run on the vectorized lockstep "  # type: ignore[attr-defined]
        "kernel; the batch degrades to the scalar engine per seed"
    )
    logger.warning(message)
    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)


def _completed_future(value: ChunkResult) -> "Future[ChunkResult]":
    future: "Future[ChunkResult]" = Future()
    future.set_result(value)
    return future


@dataclass(slots=True)
class _ChunkPayload:
    """What the pool needs to re-dispatch one chunk after a worker crash."""

    fn: Callable[..., ChunkResult]
    args: tuple
    attempt: int = 0


class ExecutionPool:
    """A reusable worker pool for multi-trial simulation batches.

    Parameters
    ----------
    workers:
        Worker processes to keep alive (at least 1).
    chunk_size:
        Seeds (or configs) per dispatched chunk.  ``None`` picks a size that
        spreads a batch over roughly ``4 × workers`` chunks — large enough to
        amortize the template pickle, small enough to keep every worker busy.
    crash_retries:
        How many times :meth:`run_seeds` / :meth:`run_configs` re-dispatch a
        chunk whose worker process crashed before letting the
        :class:`WorkerCrashError` propagate (deterministic seeds make the
        re-run byte-identical).  ``0`` restores fail-fast.  Callers that
        drain futures themselves (e.g. the campaign's as-completed loop)
        keep the raise-after-:meth:`recover` contract and retry at their own
        layer if desired.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  A live handle
        counts dispatched chunks/trials per execution path (scalar vs batch),
        tracks the in-flight chunk queue depth, records worker restarts and
        fallbacks, and emits :class:`~repro.telemetry.events.ChunkDispatched`
        events.  ``None`` resolves to the shared disabled handle: every
        instrument is a no-op singleton and dispatch costs nothing extra.
        The handle lives in the submitting process only — a worker never
        receives a telemetry object; it ships back a plain
        :class:`~repro.telemetry.metrics.WorkerStatsDelta` on each chunk,
        which :meth:`ingest` merges into the live registry (``worker.*``
        counters and the per-chunk simulate-seconds histogram).

    The underlying executor starts lazily on first use, so constructing a pool
    costs nothing, and a pool whose work was all served from a cache never
    forks at all.  Use as a context manager (or call :meth:`shutdown`) to
    reclaim the workers deterministically.
    """

    def __init__(
        self,
        workers: int,
        chunk_size: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        crash_retries: int = 2,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"an execution pool needs >= 1 worker, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
        if crash_retries < 0:
            raise ConfigurationError(f"crash_retries must be >= 0, got {crash_retries}")
        self._workers = workers
        self._chunk_size = chunk_size
        self._crash_retries = crash_retries
        self._executor: Optional[ProcessPoolExecutor] = None
        self._starts = 0
        # Instruments are bound once here, so the per-dispatch cost is one
        # attribute read plus (for disabled telemetry) an empty method call.
        self._telemetry = as_telemetry(telemetry)
        self._metric_chunks = self._telemetry.counter(
            "pool.chunks_dispatched", help="chunks submitted to worker processes"
        )
        self._metric_trials = self._telemetry.counter(
            "pool.trials_dispatched", help="seeds submitted across all chunks"
        )
        self._metric_scalar_chunks = self._telemetry.counter(
            "pool.scalar_chunks", help="chunks dispatched to the scalar per-seed loop"
        )
        self._metric_batch_chunks = self._telemetry.counter(
            "pool.batch_chunks", help="chunks dispatched to the vectorized lockstep kernel"
        )
        self._metric_restarts = self._telemetry.counter(
            "pool.worker_restarts", help="executor restarts after a worker crash"
        )
        self._metric_chunk_retries = self._telemetry.counter(
            "pool.chunk_retries", help="chunks re-dispatched after a worker crash"
        )
        self._inflight = self._telemetry.gauge(
            "pool.inflight_chunks", help="chunks submitted but not yet completed"
        )
        self._metric_workers_seen = self._telemetry.gauge(
            "pool.worker_processes_seen", help="distinct worker pids that returned results"
        )
        # Per-worker bookkeeping, fed by ingested chunk deltas and used to
        # attribute crashes (pid + uptime on WorkerCrashRecovered).  Tracked
        # regardless of telemetry: it also sharpens WorkerCrashError messages.
        self._worker_stats: dict[int, WorkerStatsDelta] = {}
        self._worker_first_seen: dict[int, float] = {}
        # Re-dispatch payloads keyed by in-flight future, so _gather can
        # resubmit a chunk whose worker crashed.  Weak keys: callers that
        # drain futures themselves (the campaign's as-completed loop) never
        # pop entries, and must not pin their futures alive here.
        self._chunk_payloads: "weakref.WeakKeyDictionary[Future[ChunkResult], _ChunkPayload]" = (
            weakref.WeakKeyDictionary()
        )

    # -- introspection ----------------------------------------------------

    @property
    def workers(self) -> int:
        """The configured worker-process count."""
        return self._workers

    @property
    def chunk_size(self) -> Optional[int]:
        """The configured chunk size (None = automatic)."""
        return self._chunk_size

    @property
    def crash_retries(self) -> int:
        """How many times a crashed chunk is re-dispatched before raising."""
        return self._crash_retries

    @property
    def starts(self) -> int:
        """How many times the underlying executor has been (re)started.

        Stays at 1 across arbitrarily many calls unless a worker crashed (or
        the pool was shut down and reused) — the lifecycle tests pin this.
        """
        return self._starts

    @property
    def running(self) -> bool:
        """True while an executor is alive."""
        return self._executor is not None

    @property
    def telemetry(self) -> Telemetry:
        """The telemetry handle dispatches report to (disabled by default)."""
        return self._telemetry

    # -- lifecycle --------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
            self._starts += 1
        return self._executor

    def _discard_broken_executor(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def shutdown(self) -> None:
        """Stop the workers (idempotent; the pool restarts lazily if reused)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "ExecutionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- chunking ---------------------------------------------------------

    def chunk(self, items: Sequence) -> list[tuple]:
        """Split a batch into the chunks one dispatch would use, in order."""
        size = self._chunk_size
        if size is None:
            # ~4 chunks per worker balances pickling amortization against
            # tail latency (the last chunks land on whichever worker frees up).
            size = max(1, -(-len(items) // (self._workers * 4)))
        return [tuple(items[start : start + size]) for start in range(0, len(items), size)]

    # -- dispatch ---------------------------------------------------------

    def submit_seed_chunks(
        self,
        template: "SimulationConfig",
        seeds: Sequence[int],
        reduce: bool = False,
        batch: bool = False,
    ) -> list["Future[ChunkResult]"]:
        """Submit one template's seed batch as chunked futures, in chunk order.

        Each future resolves to a :class:`ChunkResult` whose rows are in seed
        order, so unwrapping the futures' values (via :meth:`ingest`) in
        submission order reproduces the serial batch exactly.  An unpicklable
        template degrades to serial in-process execution (with a warning)
        behind already-completed futures, so callers never special-case it.

        Callers that consume futures out of order (e.g. as they complete)
        must route every result through :meth:`ingest` (so worker deltas land
        in the registry) and :class:`WorkerCrashError` / ``BrokenProcessPool``
        results through :meth:`recover`, or simply use :meth:`run_seeds`.

        With ``batch=True`` each chunk runs through the vectorized lockstep
        kernel in its worker (scalar fallback for non-batchable templates);
        results are still bit-identical, chunk and seed order unchanged.
        """
        chunks = self.chunk(list(seeds))
        self._metric_trials.inc(len(seeds))
        self._metric_chunks.inc(len(chunks))
        (self._metric_batch_chunks if batch else self._metric_scalar_chunks).inc(len(chunks))
        if batch and self._telemetry.enabled:
            self._probe_batch_fallback(template)
        if not payload_is_picklable(template):
            warn_serial_fallback(telemetry=self._telemetry)
            return [
                _completed_future(_run_seed_chunk(template, chunk, reduce, batch))
                for chunk in chunks
            ]
        if batch and template.faults is not None:
            # The unpicklable path above warns from run_batch in-process
            # instead, so each dispatch warns exactly once either way.
            warn_fault_batch_fallback(template.faults)
        executor = self._ensure_executor()
        try:
            futures = []
            for chunk in chunks:
                future = executor.submit(_run_seed_chunk, template, chunk, reduce, batch)
                self._chunk_payloads[future] = _ChunkPayload(
                    fn=_run_seed_chunk, args=(template, chunk, reduce, batch)
                )
                futures.append(future)
        except BrokenProcessPool as error:
            # submit() itself raises when a worker died since the last call —
            # route it through the same self-healing path as a mid-batch crash.
            raise self.recover(error) from error
        if self._telemetry.enabled:
            self._observe_dispatch(futures, chunks, reduce=reduce, batch=batch)
        return futures

    def _observe_dispatch(
        self,
        futures: Sequence["Future[ChunkResult]"],
        chunks: Sequence[tuple],
        reduce: bool,
        batch: bool,
    ) -> None:
        """Track queue depth and emit one ChunkDispatched event per chunk.

        Only runs with a live telemetry handle, so the disabled path attaches
        no done-callbacks at all.  Done-callbacks fire on executor threads —
        the gauge takes its own lock — and the events are emitted from the
        submitting thread in chunk order.
        """
        for index, (future, chunk) in enumerate(zip(futures, chunks)):
            self._inflight.inc()
            future.add_done_callback(lambda _f: self._inflight.dec())
            self._telemetry.emit(
                ChunkDispatched(
                    chunk_index=index,
                    size=len(chunk),
                    reduce=reduce,
                    batch=batch,
                    inflight=int(self._inflight.value),
                )
            )

    def _probe_batch_fallback(self, template: "SimulationConfig") -> None:
        """Emit a BatchFallback event when a batch=True template is not batchable.

        The probe itself is the same check the worker performs before falling
        back to the scalar loop, run once per dispatch in the parent — live
        telemetry only, so the disabled path never imports the kernel here.
        """
        from repro.engine.batch import batchable

        if batchable(template):
            return
        self._telemetry.counter(
            "pool.batch_fallbacks", help="batch=True dispatches that ran on the scalar loop"
        ).inc()
        faults_note = f", faults={template.faults.describe()}" if template.faults else ""
        reason = (
            f"config not batchable (protocol={type(template.protocol_factory).__name__}, "
            f"adversary={type(template.adversary).__name__}, "
            f"activation={type(template.activation).__name__}, "
            f"trace_level={template.trace_level.value}{faults_note}); chunks run the scalar loop"
        )
        logger.info("batch fallback: %s", reason)
        self._telemetry.emit(BatchFallback(reason=reason))

    def run_seeds(
        self,
        template: "SimulationConfig",
        seeds: Sequence[int],
        reduce: bool = False,
        batch: bool = False,
    ) -> list:
        """Run a multi-seed batch and return results in seed order.

        With ``reduce=True`` the returned list holds :class:`ReducedTrial`
        rows; otherwise full :class:`~repro.engine.results.SimulationResult`
        objects.  With ``batch=True`` each chunk executes on the vectorized
        lockstep kernel where the template allows it.  Either way the contents
        are bit-identical to a serial run of the same template and seeds.
        """
        futures = self.submit_seed_chunks(template, seeds, reduce=reduce, batch=batch)
        return self._gather(futures)

    def run_configs(self, configs: Sequence["SimulationConfig"]) -> list[SimulationResult]:
        """Run heterogeneous configurations, in input order.

        The generic path for batches that differ in more than the seed (e.g. a
        per-seed ``config_for_seed`` hook): each config is shipped whole, but
        still in chunks and still on the persistent workers.
        """
        config_list = list(configs)
        chunks = self.chunk(config_list)
        self._metric_trials.inc(len(config_list))
        self._metric_chunks.inc(len(chunks))
        self._metric_scalar_chunks.inc(len(chunks))
        if not payload_is_picklable(config_list):
            warn_serial_fallback(telemetry=self._telemetry)
            return self.ingest(_run_config_chunk(tuple(config_list)))
        executor = self._ensure_executor()
        try:
            futures = []
            for chunk in chunks:
                future = executor.submit(_run_config_chunk, chunk)
                self._chunk_payloads[future] = _ChunkPayload(fn=_run_config_chunk, args=(chunk,))
                futures.append(future)
        except BrokenProcessPool as error:
            raise self.recover(error) from error
        if self._telemetry.enabled:
            self._observe_dispatch(futures, chunks, reduce=False, batch=False)
        return self._gather(futures)

    def ingest(self, outcome: ChunkResult) -> list:
        """Unwrap one chunk outcome: record its worker stats, return the rows.

        Every completed chunk passes through here — :meth:`_gather` for the
        pool's own consumers, and directly for callers that hold futures
        (the campaign's as-completed loop) — so worker deltas reach the
        registry no matter who drains the future.  With telemetry disabled
        the delta still updates the pool's per-worker crash-attribution
        bookkeeping (two dict writes per chunk), but nothing else.
        """
        stats = outcome.stats
        # CLOCK_MONOTONIC is system-wide on the platforms the pool targets,
        # so the worker's uptime anchors its epoch on the parent's clock too.
        self._worker_first_seen.setdefault(stats.pid, time.monotonic() - stats.uptime_s)
        self._worker_stats[stats.pid] = stats
        if self._telemetry.enabled:
            self._telemetry.registry.merge_delta(stats)
            self._metric_workers_seen.set(len(self._worker_stats))
        return list(outcome.rows)

    def worker_stats_for(self, pid: int) -> Optional[WorkerStatsDelta]:
        """The most recent stats delta a worker pid reported (None if unseen)."""
        return self._worker_stats.get(pid)

    def _gather(self, futures: Sequence["Future[ChunkResult]"]) -> list:
        """Drain futures in chunk order, retrying crashed chunks within budget.

        A worker crash breaks the whole executor, so every not-yet-consumed
        future fails together; all of them are re-dispatched as one group on a
        fresh executor (rows still land in chunk order — each retry future
        replaces its predecessor in place).  After ``crash_retries`` failed
        attempts for the same chunk the :class:`WorkerCrashError` propagates,
        exactly like the pre-retry behaviour with ``crash_retries=0``.
        """
        pending = list(futures)
        results: list = []
        index = 0
        while index < len(pending):
            future = pending[index]
            try:
                outcome = future.result()
            except BrokenProcessPool as error:
                pending[index:] = self._retry_chunks(pending[index:], error)
                continue
            self._chunk_payloads.pop(future, None)
            results.extend(self.ingest(outcome))
            index += 1
        return results

    def _retry_chunks(
        self, dead: Sequence["Future[ChunkResult]"], error: BrokenProcessPool
    ) -> list["Future[ChunkResult]"]:
        """Re-dispatch the chunks behind a group of crash-failed futures.

        Raises the wrapped :class:`WorkerCrashError` when any of them has
        exhausted its retry budget (or was submitted by a caller the pool has
        no payload for) — :meth:`recover` runs either way, so the pool is
        reusable after the raise.
        """
        payloads = [self._chunk_payloads.pop(future, None) for future in dead]
        crash = self.recover(error)
        if any(p is None or p.attempt >= self._crash_retries for p in payloads):
            raise crash from error
        executor = self._ensure_executor()
        fresh: list["Future[ChunkResult]"] = []
        try:
            for payload in payloads:
                assert payload is not None  # narrowed by the budget check above
                future = executor.submit(payload.fn, *payload.args)
                payload.attempt += 1
                self._chunk_payloads[future] = payload
                fresh.append(future)
        except BrokenProcessPool as resubmit_error:
            raise self.recover(resubmit_error) from resubmit_error
        attempt = max(payload.attempt for payload in payloads if payload is not None)
        self._metric_chunk_retries.inc(len(fresh))
        logger.warning(
            "re-dispatching %d chunk(s) after worker crash (attempt %d of %d)",
            len(fresh),
            attempt,
            self._crash_retries,
        )
        if self._telemetry.enabled:
            self._telemetry.emit(
                ChunkRetried(detail=str(error), chunks=len(fresh), attempt=attempt)
            )
        return fresh

    def _crashed_workers(self) -> list[tuple[int, Optional[float]]]:
        """The current executor's abnormally dead workers, as (pid, uptime).

        Inspected *before* the broken executor is discarded.  Workers the
        executor's own teardown terminated (SIGTERM) are excluded, so one bad
        worker reads differently from the collateral shutdown of the rest of
        the pool.  Detection is best-effort: an executor that already reaped
        its children reports nothing, and a worker that never completed a
        chunk has no first-seen timestamp (uptime ``None``).
        """
        processes = getattr(self._executor, "_processes", None) or {}
        now = time.monotonic()
        crashed: list[tuple[int, Optional[float]]] = []
        for pid, process in sorted(processes.items()):
            exitcode = getattr(process, "exitcode", None)
            if exitcode is None or exitcode in (0, -signal.SIGTERM):
                continue
            first_seen = self._worker_first_seen.get(pid)
            crashed.append((pid, now - first_seen if first_seen is not None else None))
        return crashed

    def recover(self, error: BaseException) -> WorkerCrashError:
        """Discard the broken executor and wrap ``error`` for re-raising.

        Centralizes crash handling for callers that hold futures directly:
        after this returns, the pool is reusable (the next dispatch forks
        fresh workers), and the returned :class:`WorkerCrashError` explains
        what happened to whoever re-raises it.  Each identified dead worker
        gets its own :class:`~repro.telemetry.events.WorkerCrashRecovered`
        event carrying its pid and uptime at crash.
        """
        crashed = self._crashed_workers()
        self._discard_broken_executor()
        self._metric_restarts.inc()
        logger.warning("worker process crashed mid-batch (%s); pool reset for restart", error)
        if self._telemetry.enabled:
            restarts = int(self._metric_restarts.value)
            if crashed:
                for pid, uptime in crashed:
                    self._telemetry.emit(
                        WorkerCrashRecovered(
                            detail=str(error), restarts=restarts, pid=pid, uptime_s=uptime
                        )
                    )
            else:
                self._telemetry.emit(WorkerCrashRecovered(detail=str(error), restarts=restarts))
        pids = ", ".join(str(pid) for pid, _ in crashed) if crashed else "unknown pid"
        return WorkerCrashError(
            f"a worker process crashed mid-batch ({error}; {pids}); the pool "
            "has been reset and the next call will start fresh workers — "
            "deterministic seeds make it safe to re-submit the failed work"
        )
