"""The synchronous round-driven simulation engine."""

from repro.engine.checker import (
    PropertyChecker,
    PropertyReport,
    PropertyViolation,
    StreamingPropertyChecker,
)
from repro.engine.metrics import ExecutionMetrics, MetricsObserver, collect_metrics
from repro.engine.node import NodeRuntime
from repro.engine.observers import (
    BaseRoundObserver,
    RoundObserver,
    TraceLevel,
    TraceRecorder,
    replay_trace,
)
from repro.engine.parallel import run_configs
from repro.engine.pool import ExecutionPool, ReducedTrial, WorkerCrashError
from repro.engine.results import SimulationResult
from repro.engine.rng import RandomStreams, derive_seed
from repro.engine.runner import TrialSummary, run_reduced_trials, run_trials
from repro.engine.simulator import SimulationConfig, Simulator, simulate
from repro.engine.trace import ExecutionTrace, RoundRecord

#: Lazily exported from :mod:`repro.engine.batch` (which imports numpy); the
#: rest of the engine stays importable without it.
_BATCH_EXPORTS = ("batchable", "run_batch", "run_reduced_batch")


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.engine import batch

        return getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "batchable",
    "run_batch",
    "run_reduced_batch",
    "PropertyChecker",
    "PropertyReport",
    "PropertyViolation",
    "StreamingPropertyChecker",
    "ExecutionMetrics",
    "MetricsObserver",
    "collect_metrics",
    "NodeRuntime",
    "BaseRoundObserver",
    "RoundObserver",
    "TraceLevel",
    "TraceRecorder",
    "replay_trace",
    "run_configs",
    "ExecutionPool",
    "ReducedTrial",
    "WorkerCrashError",
    "SimulationResult",
    "RandomStreams",
    "derive_seed",
    "TrialSummary",
    "run_reduced_trials",
    "run_trials",
    "SimulationConfig",
    "Simulator",
    "simulate",
    "ExecutionTrace",
    "RoundRecord",
]
