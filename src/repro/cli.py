"""Command-line interface.

The CLI wraps the most common workflows so that a simulation can be run, and a
paper artefact inspected, without writing Python:

* ``python -m repro simulate`` — run one execution of a chosen protocol on a
  named workload and print the summary (optionally exporting JSON/CSV);
* ``python -m repro trials`` — run the same configuration across many seeds
  (optionally on a worker-process pool, and trace-free) and print the
  distributional summary;
* ``python -m repro campaign run|status|export`` — declare a persistent sweep
  grid, execute only its missing cells into an SQLite result store (resumable
  after interrupts), inspect completion (``status --json`` for scripts), and
  export grouped aggregates;
* ``python -m repro search run|status|export`` — hunt worst-case interference
  strategies for a pinned configuration with a seeded optimizer, checkpointing
  every evaluation into the result store (kill and re-run to resume exactly),
  and export the best-found strategy as JSON;
* ``python -m repro bench run|compare`` — time the pinned performance
  scenarios (warmup/repeat/median, with machine calibration), write a
  schema-versioned ``BENCH_<rev>.json``, and gate against the committed
  ``benchmarks/baseline.json`` (nonzero exit on regression — the CI
  ``perf-gate`` job);
* ``python -m repro monitor watch`` — poll a live run's ``--status-file``
  snapshot or ``--monitor-port`` URL and print one progress line per poll
  until the run completes;
* ``python -m repro schedule`` — print the Figure 1 / Figure 2 schedule for a
  parameter point;
* ``python -m repro experiments`` — list the registered paper artefacts and
  the benchmark that regenerates each;
* ``python -m repro bounds`` — evaluate the paper's bound formulas for a
  parameter point.
"""

from __future__ import annotations

import argparse
import json
import logging
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.adversary.registry import ADVERSARY_FACTORIES
from repro.analysis.bounds import (
    good_samaritan_adaptive_bound,
    good_samaritan_worst_case_bound,
    theorem1_lower_bound,
    theorem4_lower_bound,
    theorem5_lower_bound,
    trapdoor_upper_bound,
)
from repro.bench.harness import run_bench
from repro.bench.report import (
    bench_run_to_dict,
    compare_bench,
    comparison_to_dict,
    load_bench_json,
    write_bench_json,
)
from repro.bench.scenarios import BENCH_SCENARIOS, resolve_scenarios
from repro.campaigns.query import aggregate, export_campaign
from repro.campaigns.runner import CampaignRunner
from repro.campaigns.spec import CAMPAIGN_WORKLOADS, CampaignSpec, workload_with_adversary
from repro.campaigns.store import ResultStore
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan
from repro.engine.pool import ExecutionPool
from repro.engine.runner import run_trials
from repro.engine.serialization import write_result_json, write_round_log_csv, write_trials_json
from repro.engine.simulator import SimulationConfig, simulate
from repro.experiments.registry import EXPERIMENTS
from repro.faults import FaultPlan, load_fault_plan
from repro.experiments.tables import render_table
from repro.experiments.workloads import SIMPLE_WORKLOADS
from repro.params import ModelParameters
from repro.protocols.good_samaritan.schedule import GoodSamaritanSchedule
from repro.protocols.registry import PROTOCOL_FACTORIES
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.search.checkpoint import SearchSpec, is_search_spec_json
from repro.search.objective import OBJECTIVE_METRICS, SearchObjective
from repro.search.optimizers import OPTIMIZERS
from repro.exceptions import ConfigurationError
from repro.search.runner import StrategySearch, export_search, search_status
from repro.service import (
    CampaignService,
    JobRequest,
    ServiceClient,
    ServiceError,
    connect_from_announce,
)
from repro.telemetry import Telemetry
from repro.telemetry.events import FaultInjected, JsonlSink, RunCompleted, RunStarted
from repro.telemetry.export import write_metrics_json, write_prometheus_text
from repro.telemetry.monitor import RunMonitor, read_status, render_status_line

#: The named protocol registry the scenario options draw from (shared with the
#: campaign subsystem, so a protocol name means the same thing everywhere).
PROTOCOLS = PROTOCOL_FACTORIES

#: The named adversary registry (shared with campaigns and the strategy
#: search, so a jammer name means the same adversary everywhere).
JAMMERS = ADVERSARY_FACTORIES


def _name_list(text: str) -> tuple[str, ...]:
    """Parse a comma-separated list of names (argparse ``type=``)."""
    names = tuple(part.strip() for part in text.split(",") if part.strip())
    if not names:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list, got {text!r}")
    return names


def _int_list(text: str) -> tuple[int, ...]:
    """Parse a comma-separated list of integers (argparse ``type=``)."""
    try:
        values = tuple(int(part.strip()) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"expected a comma-separated list, got {text!r}")
    return values


def observability_options(include_monitor: bool = True) -> argparse.ArgumentParser:
    """The shared observability option group for executing subcommands.

    One definition covers ``trials``, ``campaign run``, ``search run``,
    ``serve``, and (telemetry flags only) ``bench run``, so every executing
    command spells the flags identically and help text cannot drift.
    Inspection subcommands (status/export/compare) execute nothing, so they
    take none of these.

    Parameters
    ----------
    include_monitor:
        Also include the live-monitor flags (``--monitor-port``,
        ``--status-file``, ``--monitor-interval``).  Either monitor flag
        turns the monitor on; both compose.  ``repro monitor watch``
        consumes what these produce.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--telemetry", type=str, default=None, metavar="PATH",
        help="stream structured telemetry events to this JSONL file",
    )
    group.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the final metrics snapshot here (JSON, or Prometheus "
             "text exposition when the path ends in .prom)",
    )
    group.add_argument(
        "--telemetry-rotate-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the --telemetry JSONL once it would exceed this size "
             "(one .1 predecessor is kept; default: never rotate)",
    )
    if include_monitor:
        group.add_argument(
            "--monitor-port", type=int, default=None, metavar="PORT",
            help="serve live /status, /metrics, and /events on this local port "
                 "while the run executes (0 = pick an ephemeral port)",
        )
        group.add_argument(
            "--status-file", type=str, default=None, metavar="PATH",
            help="atomically rewrite a JSON status snapshot here on every "
                 "monitor tick (readable mid-run; marked final on completion)",
        )
        group.add_argument(
            "--monitor-interval", type=float, default=1.0, metavar="SECONDS",
            help="seconds between monitor snapshots (default: 1.0)",
        )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'The Wireless Synchronization Problem' (PODC 2009)",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error", "critical"],
        default="warning",
        help="stdlib logging threshold for the repro.* loggers (stderr)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    observability = observability_options()
    telemetry_options = observability_options(include_monitor=False)

    scenario = argparse.ArgumentParser(add_help=False)
    scenario.add_argument("--protocol", choices=sorted(PROTOCOLS), default="trapdoor")
    scenario.add_argument("--frequencies", "-F", type=int, default=8)
    scenario.add_argument("--budget", "-t", type=int, default=3)
    scenario.add_argument("--participants", "-N", type=int, default=64)
    scenario.add_argument("--nodes", "-n", type=int, default=8, help="number of activated devices")
    scenario.add_argument(
        "--workload",
        choices=sorted(SIMPLE_WORKLOADS),
        default="crowded_cafe",
        help="named activation/interference scenario",
    )
    scenario.add_argument("--jammer", choices=sorted(JAMMERS), default=None,
                          help="override the workload's interference adversary")
    scenario.add_argument("--max-rounds", type=int, default=100_000)
    scenario.add_argument("--faults", type=str, default=None, metavar="PLAN.json",
                          help="inject a fault plan (churn / Byzantine / corruption; "
                               "see repro.faults.FaultPlan) into every execution")

    sim = sub.add_parser(
        "simulate", parents=[scenario], help="run one execution and print its summary"
    )
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument(
        "--trace-level",
        choices=[level.value for level in TraceLevel],
        default=TraceLevel.FULL.value,
        help="how much per-round history to retain (none = stream-only)",
    )
    sim.add_argument("--json", type=str, default=None, help="write a JSON result summary here")
    sim.add_argument("--csv", type=str, default=None, help="write a per-round CSV log here")

    trials = sub.add_parser(
        "trials",
        parents=[scenario, observability],
        help="run one configuration across many seeds",
    )
    trials.add_argument("--trials", type=int, default=10, dest="trial_count",
                        help="number of seeds to run (0 .. k-1)")
    trials.add_argument("--workers", type=int, default=1,
                        help="worker processes for the batch (1 = serial)")
    trials.add_argument("--pool-chunk", type=int, default=None,
                        help="seeds per dispatched pool chunk (default: automatic)")
    trials.add_argument("--batch", action="store_true",
                        help="run the seed batch on the vectorized lockstep kernel "
                             "(trace-free batchable configs; scalar fallback otherwise)")
    trials.add_argument(
        "--trace-level",
        choices=[level.value for level in TraceLevel],
        default=TraceLevel.NONE.value,
        help="per-round history per trial (default: none — sweeps stream)",
    )
    trials.add_argument("--json", type=str, default=None,
                        help="write the batch summary (statistics + per-trial rows) as JSON here")

    campaign = sub.add_parser(
        "campaign", help="declarative persistent sweeps over a result store"
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    camp_run = campaign_sub.add_parser(
        "run",
        parents=[observability],
        help="execute the missing cells of a campaign grid into a store",
    )
    camp_run.add_argument("--store", required=True, help="SQLite result store path")
    camp_run.add_argument("--name", default="campaign", help="campaign name in the store")
    camp_run.add_argument("--protocols", type=_name_list, default=("trapdoor",),
                          help="comma-separated protocol names")
    camp_run.add_argument("--workloads", type=_name_list, default=("crowded_cafe",),
                          help="comma-separated workload names")
    camp_run.add_argument("--jammers", type=_name_list, default=None,
                          help="cross every workload with these registered jammers "
                               "(derived workloads 'workload@jammer')")
    camp_run.add_argument("--frequencies", "-F", type=_int_list, default=(8,),
                          help="comma-separated F values")
    camp_run.add_argument("--budgets", "-t", type=_int_list, default=(3,),
                          help="comma-separated t values")
    camp_run.add_argument("--participants", "-N", type=_int_list, default=(64,),
                          help="comma-separated N values")
    camp_run.add_argument("--node-counts", type=_int_list, default=(8,),
                          help="comma-separated activated-device counts")
    camp_run.add_argument("--seeds", type=int, default=3, help="seeds per cell (0 .. k-1)")
    camp_run.add_argument("--max-rounds", type=int, default=50_000)
    camp_run.add_argument("--faults", type=str, default=None, metavar="PLAN.json",
                          help="inject this fault plan into every cell of the grid "
                               "(part of each cell's identity — fault-free cells "
                               "stay separately resumable)")
    camp_run.add_argument("--workers", type=int, default=1,
                          help="worker processes on the campaign's persistent execution "
                               "pool (1 = serial)")
    camp_run.add_argument("--pool-chunk", type=int, default=None,
                          help="trials per dispatched pool chunk (default: automatic)")
    camp_run.add_argument("--batch", action="store_true",
                          help="run each cell's seeds on the vectorized lockstep kernel "
                               "(batchable cells only; scalar fallback otherwise)")
    camp_run.add_argument("--max-cells", type=int, default=None,
                          help="cap on cells executed this invocation (resume later)")
    camp_run.add_argument("--quiet", action="store_true",
                          help="suppress the per-cell progress lines (summary still prints)")

    camp_status = campaign_sub.add_parser("status", help="report completed/total cells")
    camp_status.add_argument("--store", required=True)
    camp_status.add_argument("--name", default=None,
                             help="one campaign (default: every campaign in the store)")
    camp_status.add_argument("--json", action="store_true",
                             help="machine-readable output for CI and scripts")

    camp_export = campaign_sub.add_parser(
        "export", help="export a campaign's cells and aggregates as JSON"
    )
    camp_export.add_argument("--store", required=True)
    camp_export.add_argument("--name", default="campaign")
    camp_export.add_argument("--output", required=True, help="JSON file to write")
    camp_export.add_argument("--group-by", type=_name_list, default=("protocol", "workload"),
                             help="comma-separated grid dimensions to aggregate over")

    search = sub.add_parser(
        "search", help="hunt worst-case interference strategies for a pinned configuration"
    )
    search_sub = search.add_subparsers(dest="search_command", required=True)

    srch_run = search_sub.add_parser(
        "run",
        parents=[observability],
        help="run (or resume) an adversarial strategy search into a store",
    )
    srch_run.add_argument("--store", required=True, help="SQLite result store path")
    srch_run.add_argument("--name", default="search", help="search name in the store")
    srch_run.add_argument("--protocol", choices=sorted(PROTOCOLS), default="trapdoor")
    srch_run.add_argument("--workload", choices=sorted(CAMPAIGN_WORKLOADS), default="quiet_start",
                          help="activation pattern (its adversary is overridden by candidates)")
    srch_run.add_argument("--frequencies", "-F", type=int, default=8)
    srch_run.add_argument("--budget", "-t", type=int, default=3)
    srch_run.add_argument("--participants", "-N", type=int, default=64)
    srch_run.add_argument("--nodes", "-n", type=int, default=8,
                          help="number of activated devices")
    srch_run.add_argument("--seeds", type=int, default=5, help="seeds per candidate (0 .. k-1)")
    srch_run.add_argument("--max-rounds", type=int, default=20_000)
    srch_run.add_argument("--metric", choices=OBJECTIVE_METRICS, default="median_latency",
                          help="objective the search maximizes")
    srch_run.add_argument("--faults", type=str, default=None, metavar="PLAN.json",
                          help="score every candidate in this fault environment "
                               "(part of the objective's identity)")
    srch_run.add_argument("--optimizer", choices=sorted(OPTIMIZERS), default="hill-climb")
    srch_run.add_argument("--population", type=int, default=8,
                          help="candidates per optimizer generation")
    srch_run.add_argument("--generations", type=int, default=4,
                          help="optimizer generations after the warm start")
    srch_run.add_argument("--master-seed", type=int, default=0,
                          help="the one seed all proposal randomness derives from")
    srch_run.add_argument("--no-warm-start", action="store_true",
                          help="skip seeding generation 0 with the hand-written jammers")
    srch_run.add_argument("--workers", type=int, default=1,
                          help="worker processes on the search's persistent execution "
                               "pool (1 = serial)")
    srch_run.add_argument("--pool-chunk", type=int, default=None,
                          help="seeds per dispatched pool chunk (default: automatic)")
    srch_run.add_argument("--batch", action="store_true",
                          help="evaluate candidates on the vectorized lockstep kernel "
                               "(batchable candidates only; scalar fallback otherwise)")
    srch_run.add_argument("--max-evaluations", type=int, default=None,
                          help="cap on live evaluations this invocation (resume later)")

    srch_status = search_sub.add_parser("status", help="report a stored search's progress")
    srch_status.add_argument("--store", required=True)
    srch_status.add_argument("--name", default=None,
                             help="one search (default: every search in the store)")
    srch_status.add_argument("--json", action="store_true",
                             help="machine-readable output for CI and scripts")

    srch_export = search_sub.add_parser(
        "export", help="export the best-found strategies as JSON"
    )
    srch_export.add_argument("--store", required=True)
    srch_export.add_argument("--name", default="search")
    srch_export.add_argument("--output", required=True, help="JSON file to write")
    srch_export.add_argument("--top", type=int, default=10,
                             help="how many top strategies to include")

    bench = sub.add_parser(
        "bench", help="run pinned performance scenarios and gate on a committed baseline"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run",
        parents=[telemetry_options],
        help="time the benchmark scenarios and write BENCH_<rev>.json",
    )
    bench_run.add_argument(
        "--scenarios", default="all",
        help="'all', 'ci' (the pinned perf-gate subset), or a comma-separated "
             f"list of: {', '.join(BENCH_SCENARIOS)}",
    )
    bench_run.add_argument("--repeats", type=int, default=3,
                           help="timed repeats per scenario (the median is reported)")
    bench_run.add_argument("--warmup", type=int, default=1,
                           help="throwaway runs per scenario before timing")
    bench_run.add_argument("--rev", default=None,
                           help="revision label for the output (default: git short SHA, "
                                "or 'local' outside a checkout)")
    bench_run.add_argument("--output", default=None,
                           help="output path (default: BENCH_<rev>.json)")
    bench_run.add_argument("--json", action="store_true",
                           help="also print the payload as JSON on stdout")
    bench_run.add_argument("--store", default=None,
                           help="optional campaign result store to record bench "
                                "provenance rows into")

    bench_cmp = bench_sub.add_parser(
        "compare", help="compare a bench run against a committed baseline (exit 1 on regression)"
    )
    bench_cmp.add_argument("--baseline", required=True, help="baseline JSON (the committed one)")
    bench_cmp.add_argument("--current", default=None,
                           help="bench JSON to check (default: BENCH_<rev>.json for the "
                                "current git revision)")
    bench_cmp.add_argument("--tolerance", type=float, default=0.25,
                           help="allowed fractional slowdown before the gate fails")
    bench_cmp.add_argument("--metric", choices=["normalized_throughput", "throughput"],
                           default="normalized_throughput",
                           help="comparison metric (normalized is machine-independent)")
    bench_cmp.add_argument("--json", action="store_true",
                           help="print the machine-readable comparison on stdout "
                                "(the human-readable table moves to stderr)")

    monitor = sub.add_parser(
        "monitor", help="watch a live run's status snapshot (file or URL)"
    )
    monitor_sub = monitor.add_subparsers(dest="monitor_command", required=True)
    mon_watch = monitor_sub.add_parser(
        "watch",
        help="poll a --status-file path or a --monitor-port URL, one "
             "progress line per poll, until the run marks it final",
    )
    mon_watch.add_argument(
        "target",
        help="status-file path, or monitor URL like http://127.0.0.1:8787",
    )
    mon_watch.add_argument("--interval", type=float, default=2.0,
                           help="seconds between polls (default: 2.0)")
    mon_watch.add_argument("--max-polls", type=int, default=None,
                           help="give up after this many polls (default: until final)")

    serve = sub.add_parser(
        "serve",
        parents=[observability],
        help="run the campaign service: accept job submissions from many "
             "clients, execute them one at a time on a shared pool",
    )
    serve.add_argument("--run-dir", required=True,
                       help="service state root (per-job dirs under <run-dir>/jobs; "
                            "relative job store paths resolve against it)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="NDJSON protocol port (default 0 = ephemeral; "
                            "pair with --announce so clients can find it)")
    serve.add_argument("--http-port", type=int, default=None,
                       help="also serve the read-only HTTP status facade on this "
                            "port: /status, /jobs, /jobs/<id>/status in the "
                            "monitor snapshot schema (0 = ephemeral)")
    serve.add_argument("--announce", default=None, metavar="PATH",
                       help="write {host, port, http_port} JSON here once bound "
                            "(what repro client --connect reads)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes on the service's shared execution "
                            "pool, reused across every job (1 = serial)")
    serve.add_argument("--pool-chunk", type=int, default=None,
                       help="trials per dispatched pool chunk (default: automatic)")
    serve.add_argument("--max-queued", type=int, default=8,
                       help="admission bound on waiting jobs; submissions past "
                            "it are refused immediately (default: 8)")

    client = sub.add_parser("client", help="talk to a running campaign service")
    client_sub = client.add_subparsers(dest="client_command", required=True)
    connection = argparse.ArgumentParser(add_help=False)
    connection.add_argument("--host", default="127.0.0.1")
    connection.add_argument("--port", type=int, default=None,
                            help="service NDJSON port")
    connection.add_argument("--connect", default=None, metavar="PATH",
                            help="announce file written by repro serve --announce "
                                 "(alternative to --host/--port)")
    connection.add_argument("--connect-retries", type=int, default=0,
                            help="re-attempt a refused TCP connect this many times "
                                 "with jittered exponential backoff (default: 0)")
    connection.add_argument("--connect-backoff", type=float, default=0.2,
                            help="base backoff seconds between connect attempts, "
                                 "doubled per attempt (default: 0.2)")
    cl_submit = client_sub.add_parser(
        "submit", parents=[connection], help="submit a job-request JSON document"
    )
    cl_submit.add_argument("--request", required=True, metavar="PATH",
                           help="job request JSON file ('-' reads stdin); see "
                                "repro.service.protocol.JobRequest")
    cl_submit.add_argument("--wait", action="store_true",
                           help="stream the job to completion; exit 0 only if "
                                "it completed")
    cl_status = client_sub.add_parser(
        "status", parents=[connection],
        help="a job's status document (monitor schema), or the service's",
    )
    cl_status.add_argument("--job", default=None, help="job id (default: the service)")
    cl_watch = client_sub.add_parser(
        "watch", parents=[connection],
        help="stream a job's progress records as NDJSON until it finishes",
    )
    cl_watch.add_argument("--job", required=True)
    cl_cancel = client_sub.add_parser(
        "cancel", parents=[connection],
        help="cancel a job (queued: withdrawn now; running: stops at its "
             "next commit, exactly resumable by resubmitting)",
    )
    cl_cancel.add_argument("--job", required=True)
    client_sub.add_parser("jobs", parents=[connection], help="list every job")
    cl_store = client_sub.add_parser(
        "store-status", parents=[connection],
        help="read-only store query served from the WAL store mid-run",
    )
    cl_store.add_argument("--store", required=True,
                          help="store path (relative resolves against the "
                               "service run dir)")
    client_sub.add_parser("shutdown", parents=[connection],
                          help="stop the service gracefully")

    sched = sub.add_parser("schedule", help="print the Trapdoor / Good Samaritan schedule")
    sched.add_argument("--protocol", choices=["trapdoor", "good-samaritan"], default="trapdoor")
    sched.add_argument("--frequencies", "-F", type=int, default=8)
    sched.add_argument("--budget", "-t", type=int, default=3)
    sched.add_argument("--participants", "-N", type=int, default=64)

    sub.add_parser("experiments", help="list the registered paper artefacts")

    bounds = sub.add_parser("bounds", help="evaluate the paper's bound formulas")
    bounds.add_argument("--frequencies", "-F", type=int, default=8)
    bounds.add_argument("--budget", "-t", type=int, default=3)
    bounds.add_argument("--participants", "-N", type=int, default=64)
    bounds.add_argument("--actual-disruption", type=int, default=1)

    return parser


def _params(args: argparse.Namespace) -> ModelParameters:
    return ModelParameters(
        frequencies=args.frequencies,
        disruption_budget=args.budget,
        participant_bound=args.participants,
    )


def _fault_plan_from_args(args: argparse.Namespace) -> Optional[FaultPlan]:
    """The ``--faults`` plan, loaded and validated (``None`` without the flag)."""
    path = getattr(args, "faults", None)
    return load_fault_plan(path) if path else None


def _scenario_config(args: argparse.Namespace) -> SimulationConfig:
    """Build the configuration the scenario options name, printing the banner."""
    params = _params(args)
    workload = SIMPLE_WORKLOADS[args.workload](args.nodes)
    adversary = JAMMERS[args.jammer]() if args.jammer else workload.adversary
    faults = _fault_plan_from_args(args)
    config = SimulationConfig(
        params=params,
        protocol_factory=PROTOCOLS[args.protocol](),
        activation=workload.activation,
        adversary=adversary,
        max_rounds=args.max_rounds,
        faults=faults,
    )
    print(f"model     : {params.describe()}")
    print(f"protocol  : {args.protocol}")
    print(f"workload  : {workload.description}")
    print(f"adversary : {adversary.describe()}")
    if faults is not None:
        print(f"faults    : {faults.describe()} [{faults.key()}]")
    return config


def _command_simulate(args: argparse.Namespace) -> int:
    config = _scenario_config(args)
    config = replace(config, seed=args.seed, trace_level=TraceLevel(args.trace_level))
    result = simulate(config)
    print(f"result    : {result.summary()}")
    # The streamed metrics cover every activated node exactly at every trace
    # level (a sampled trace would only yield approximate sync rounds).
    rows = []
    for node_id, activated in sorted(result.metrics.activation_rounds.items()):
        latency = result.metrics.sync_latencies.get(node_id)
        rows.append(
            {
                "node": node_id,
                "activated": activated,
                "synchronized": activated + latency - 1 if latency is not None else None,
                "latency": latency,
            }
        )
    if rows:
        print()
        print(render_table(rows, title="Per-node synchronization"))
    else:
        print("(no nodes were activated)")
    if args.json:
        print(f"\nwrote JSON summary to {write_result_json(result, args.json)}")
    if args.csv:
        # --csv with --trace-level none is rejected at parse time in main().
        path = write_round_log_csv(result.trace, args.csv)
        note = " (sampled rounds only)" if config.trace_level is TraceLevel.SAMPLED else ""
        print(f"wrote round log to {path}{note}")
    return 0 if result.synchronized else 1


def _telemetry_from_args(args: argparse.Namespace) -> Optional[Telemetry]:
    """A live telemetry handle when any observability flag asks for one.

    ``--telemetry``, ``--metrics-out``, ``--monitor-port``, and
    ``--status-file`` all need a live registry; with none of them the return
    is ``None``, so call sites pass it straight through to the ``telemetry=``
    parameters (which treat ``None`` as "off").  The monitor flags are read
    with ``getattr`` because ``bench run`` shares the telemetry options but
    not the monitor ones.
    """
    wants_monitor = (
        getattr(args, "monitor_port", None) is not None
        or getattr(args, "status_file", None) is not None
    )
    if args.telemetry is None and args.metrics_out is None and not wants_monitor:
        return None
    if args.telemetry is not None:
        rotate = getattr(args, "telemetry_rotate_bytes", None)
        return Telemetry(sink=JsonlSink(args.telemetry, max_bytes=rotate))
    return Telemetry()


def _monitor_from_args(
    args: argparse.Namespace,
    telemetry: Optional[Telemetry],
    *,
    unit: str,
    total: Optional[int],
    done_metrics: Sequence[str],
    best_metric: Optional[str] = None,
) -> Optional[RunMonitor]:
    """Start a :class:`RunMonitor` when the monitor flags ask for one.

    Prints where the run can be watched; callers must :meth:`RunMonitor.stop`
    in a ``finally`` (before closing the telemetry sink, so the final
    snapshot and the ``/events`` tail still see a live handle).
    """
    if args.monitor_port is None and args.status_file is None:
        return None
    assert telemetry is not None  # _telemetry_from_args made one for these flags
    monitor = RunMonitor(
        telemetry,
        status_path=args.status_file,
        port=args.monitor_port,
        interval=args.monitor_interval,
        unit=unit,
        total=total,
        done_metrics=done_metrics,
        best_metric=best_metric,
    ).start()
    if monitor.port is not None:
        print(f"monitor   : http://127.0.0.1:{monitor.port}/status "
              "(also /metrics, /events)")
    if monitor.status_path is not None:
        print(f"monitor   : status snapshots at {monitor.status_path} "
              "(watch with: repro monitor watch)")
    return monitor


def _finish_telemetry(
    telemetry: Optional[Telemetry], args: argparse.Namespace, report=None
) -> None:
    """Flush/close the event sink and write the ``--metrics-out`` snapshot."""
    if telemetry is None:
        return
    if report is None:
        # Resolved at call time, not definition time, so stdout redirection
        # (including pytest's capture) is respected.
        report = sys.stdout
    telemetry.close()
    if args.telemetry:
        print(f"wrote telemetry events to {args.telemetry}", file=report)
    if args.metrics_out:
        target = Path(args.metrics_out)
        if target.suffix == ".prom":
            write_prometheus_text(telemetry.registry, target)
        else:
            write_metrics_json(telemetry.registry, target)
        print(f"wrote metrics snapshot to {target}", file=report)


def _plan_from_args(args: argparse.Namespace) -> ExecutionPlan:
    """The execution plan the command-line execution knobs describe."""
    return ExecutionPlan(
        workers=args.workers,
        pool_chunk=args.pool_chunk,
        batch=getattr(args, "batch", False),
    )


def _command_trials(args: argparse.Namespace) -> int:
    config = _scenario_config(args)
    print(f"batch     : {args.trial_count} trials, {args.workers} worker(s), "
          f"trace level {args.trace_level}")
    telemetry = _telemetry_from_args(args)
    monitor = _monitor_from_args(
        args,
        telemetry,
        unit="trials",
        total=args.trial_count,
        done_metrics=("worker.trials_executed",),
    )
    if telemetry is not None:
        telemetry.emit(
            RunStarted(
                protocol=args.protocol,
                workload=args.workload,
                trials=args.trial_count,
                workers=args.workers,
                batch=args.batch,
            )
        )
    started = time.perf_counter()
    plan = _plan_from_args(args)
    try:
        if plan.parallel:
            # Chunked dispatch on a pool (torn down right after — one-shot CLI
            # calls have nothing to persist a pool across).  Built explicitly
            # rather than via plan.pool() so the pool sees the telemetry handle.
            with ExecutionPool(
                plan.workers, chunk_size=plan.pool_chunk, telemetry=telemetry
            ) as pool:
                summary = run_trials(
                    config,
                    seeds=args.trial_count,
                    trace_level=TraceLevel(args.trace_level),
                    pool=pool,
                    plan=plan.serial(),
                )
        else:
            summary = run_trials(
                config,
                seeds=args.trial_count,
                trace_level=TraceLevel(args.trace_level),
                plan=plan,
            )
        if telemetry is not None:
            if config.faults is not None:
                # One event per injection epoch per trial, carrying where the
                # epoch started and how many rounds reconvergence took.
                for seed, result in zip(summary.seeds, summary.results):
                    if result.stabilization is None:
                        continue
                    for epoch, recovery in zip(
                        result.stabilization.epochs,
                        result.stabilization.recovery_rounds,
                    ):
                        telemetry.emit(
                            FaultInjected(
                                seed=seed, recovery_rounds=recovery, round_index=epoch
                            )
                        )
            telemetry.emit(
                RunCompleted(
                    protocol=args.protocol,
                    workload=args.workload,
                    trials=args.trial_count,
                    seconds=time.perf_counter() - started,
                )
            )
    finally:
        # Final snapshot first (needs the live sink), then the sink closes
        # inside _finish_telemetry.
        if monitor is not None:
            monitor.stop()
    print(f"summary   : {summary.describe()}")
    rows = [
        {
            "statistic": name,
            "value": value,
        }
        for name, value in (
            ("liveness rate", summary.liveness_rate),
            ("agreement rate", summary.agreement_rate),
            ("unique-leader rate", summary.unique_leader_rate),
            ("mean latency", summary.mean_latency),
            ("median latency", summary.median_latency),
            ("p90 latency", summary.percentile_latency(0.9)),
            ("max latency", summary.max_latency),
        )
    ]
    print()
    print(render_table(rows, title="Batch statistics", float_digits=2))
    if args.json:
        print(f"\nwrote JSON summary to {write_trials_json(summary, args.json)}")
    _finish_telemetry(telemetry, args)
    return 0 if summary.liveness_rate == 1.0 else 1


def _command_campaign(args: argparse.Namespace) -> int:
    handlers = {
        "run": _campaign_run,
        "status": _campaign_status,
        "export": _campaign_export,
    }
    with ResultStore(args.store) as store:
        return handlers[args.campaign_command](args, store)


def _campaign_run(args: argparse.Namespace, store: ResultStore) -> int:
    workloads = args.workloads
    if args.jammers:
        workloads = tuple(
            workload_with_adversary(base, jammer)
            for base in args.workloads
            for jammer in args.jammers
        )
    faults = _fault_plan_from_args(args)
    spec = CampaignSpec(
        name=args.name,
        protocols=args.protocols,
        workloads=workloads,
        frequencies=args.frequencies,
        budgets=args.budgets,
        participants=args.participants,
        node_counts=args.node_counts,
        seeds=args.seeds,
        max_rounds=args.max_rounds,
        fault_plans=(faults,) if faults is not None else (None,),
    )
    if faults is not None:
        print(f"faults    : {faults.describe()} [{faults.key()}]")
    telemetry = _telemetry_from_args(args)
    with CampaignRunner(
        spec,
        store,
        plan=_plan_from_args(args),
        telemetry=telemetry,
    ) as runner:
        before = runner.status()
        print(f"campaign  : {spec.name} ({before.total} cells, "
              f"{len(spec.seeds)} seeds/cell, store {store.path})")
        print(f"resume    : {before.already_complete} cells already complete")
        monitor = _monitor_from_args(
            args,
            telemetry,
            unit="cells",
            total=before.total,
            done_metrics=("campaign.cells_committed", "campaign.cells_reused"),
        )

        def report(cell, progress):
            print(f"  [{progress.already_complete + progress.executed}/{progress.total}] "
                  f"{cell.label()}")

        on_cell = None if args.quiet else report
        try:
            progress = runner.run(max_cells=args.max_cells, on_cell=on_cell)
        finally:
            if monitor is not None:
                monitor.stop()
    print(f"progress  : {progress.describe()}")
    if progress.complete:
        print()
        print(render_table(
            aggregate(store, spec.name),
            title=f"Campaign {spec.name} — aggregate by protocol × workload",
            float_digits=1,
        ))
    _finish_telemetry(telemetry, args)
    return 0


def _campaign_status(args: argparse.Namespace, store: ResultStore) -> int:
    names = [args.name] if args.name else store.campaign_names()
    if not names:
        if args.json:
            print(json.dumps({"store": store.path, "campaigns": []}))
        else:
            print(f"store {store.path} holds no campaigns")
        return 1
    entries = []
    for name in names:
        spec_json = store.spec_json_for(name)
        completed = store.cell_count(name)
        total = None
        if spec_json is not None and not is_search_spec_json(spec_json):
            # Store-backed harness sweeps and adversary searches have no
            # declarative grid to diff against; report what has been recorded.
            total = len(CampaignSpec.from_json(spec_json).cells())
        entries.append({"campaign": name, "completed": completed, "total": total})
    if args.json:
        print(json.dumps({"store": store.path, "campaigns": entries}, indent=2))
        return 0
    rows = [
        {
            "campaign": entry["campaign"],
            "completed": entry["completed"],
            "total": entry["total"] if entry["total"] is not None else "-",
            "done": (
                f"{entry['completed']}/{entry['total']}" if entry["total"] is not None else "-"
            ),
        }
        for entry in entries
    ]
    print(render_table(rows, title=f"Campaign status — {store.path}"))
    return 0


def _campaign_export(args: argparse.Namespace, store: ResultStore) -> int:
    path = export_campaign(store, args.name, args.output, group_by=args.group_by)
    print(render_table(
        aggregate(store, args.name, group_by=args.group_by),
        title=f"Campaign {args.name} — aggregate by {' × '.join(args.group_by)}",
        float_digits=1,
    ))
    print(f"\nwrote campaign export to {path}")
    return 0


def _command_search(args: argparse.Namespace) -> int:
    handlers = {
        "run": _search_run,
        "status": _search_status,
        "export": _search_export,
    }
    with ResultStore(args.store) as store:
        return handlers[args.search_command](args, store)


def _search_run(args: argparse.Namespace, store: ResultStore) -> int:
    objective = SearchObjective(
        protocol=args.protocol,
        workload=args.workload,
        frequencies=args.frequencies,
        budget=args.budget,
        participants=args.participants,
        node_count=args.nodes,
        seeds=args.seeds,
        max_rounds=args.max_rounds,
        metric=args.metric,
        faults=_fault_plan_from_args(args),
    )
    spec = SearchSpec(
        name=args.name,
        objective=objective,
        optimizer=args.optimizer,
        population=args.population,
        generations=args.generations,
        master_seed=args.master_seed,
        warm_start=not args.no_warm_start,
    )
    print(f"search    : {spec.name} (store {store.path})")
    print(f"objective : {objective.describe()}")
    print(f"optimizer : {spec.optimizer}, population {spec.population}, "
          f"{spec.generations} generation(s), master seed {spec.master_seed}")
    print(f"resume    : {store.cell_count(spec.name)} evaluation(s) already stored")

    def report(outcome):
        source = "cached" if outcome.reused else "evaluated"
        print(f"  [gen {outcome.generation}] {outcome.genome.describe():<42} "
              f"score {outcome.score:>10.1f}  ({source}, {outcome.key})")

    telemetry = _telemetry_from_args(args)
    monitor = _monitor_from_args(
        args,
        telemetry,
        unit="evaluations",
        total=None,
        done_metrics=("search.evaluations_executed", "search.evaluations_reused"),
        best_metric="search.best_score",
    )
    with StrategySearch(
        spec,
        store,
        plan=_plan_from_args(args),
        telemetry=telemetry,
    ) as search:
        try:
            result = search.run(max_evaluations=args.max_evaluations, on_candidate=report)
        finally:
            if monitor is not None:
                monitor.stop()
    print(f"progress  : {result.describe()}")
    if result.best is not None:
        print(f"best      : {result.best.genome.describe()} "
              f"(score {result.best.score:g}, key {result.best.key})")
    _finish_telemetry(telemetry, args)
    return 0


def _search_status(args: argparse.Namespace, store: ResultStore) -> int:
    if args.name:
        names = [args.name]
    else:
        names = [
            name for name in store.campaign_names()
            if is_search_spec_json(store.spec_json_for(name))
        ]
    if not names:
        if args.json:
            print(json.dumps({"store": store.path, "searches": []}))
        else:
            print(f"store {store.path} holds no searches")
        return 1
    entries = [search_status(store, name) for name in names]
    if args.json:
        print(json.dumps({"store": store.path, "searches": entries}, indent=2))
        return 0
    rows = [
        {
            "search": entry["search"],
            "optimizer": entry["optimizer"],
            "metric": entry["metric"],
            "evaluations": entry["evaluations"],
            "best_score": entry["best_score"],
            "best_strategy": entry["best_strategy"] or "-",
        }
        for entry in entries
    ]
    print(render_table(rows, title=f"Search status — {store.path}", float_digits=1))
    return 0


def _search_export(args: argparse.Namespace, store: ResultStore) -> int:
    path = export_search(store, args.name, args.output, top=args.top)
    status = search_status(store, args.name)
    print(f"search    : {args.name} ({status['evaluations']} evaluations)")
    print(f"best      : {status['best_strategy']} (score {status['best_score']:g})")
    print(f"\nwrote search export to {path}")
    return 0


def _git_rev() -> str:
    """The short git revision of the working tree, or ``'local'`` without one."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "local"
    rev = completed.stdout.strip()
    return rev if completed.returncode == 0 and rev else "local"


def _command_bench(args: argparse.Namespace) -> int:
    handlers = {
        "run": _bench_run,
        "compare": _bench_compare,
    }
    return handlers[args.bench_command](args)


def _bench_run(args: argparse.Namespace) -> int:
    scenarios = resolve_scenarios(args.scenarios)
    rev = args.rev if args.rev else _git_rev()
    # With --json, stdout carries the payload alone (pipe-friendly, like the
    # other --json subcommands); the human-readable report moves to stderr.
    report = sys.stderr if args.json else sys.stdout
    print(f"bench     : {len(scenarios)} scenario(s), {args.repeats} repeat(s), "
          f"{args.warmup} warmup, rev {rev}", file=report)
    telemetry = _telemetry_from_args(args)
    run = run_bench(
        scenarios, rev=rev, repeats=args.repeats, warmup=args.warmup, telemetry=telemetry
    )
    payload = bench_run_to_dict(run)
    rows = [
        {
            "scenario": name,
            "unit": entry["unit"],
            "work": entry["units"],
            "median_s": entry["median_seconds"],
            "throughput": entry["throughput"],
            "normalized": entry["normalized_throughput"],
        }
        for name, entry in payload["scenarios"].items()
    ]
    print(file=report)
    print(render_table(rows, title=f"Bench {rev} — median of {args.repeats} repeat(s)",
                       float_digits=4), file=report)
    output = args.output if args.output else f"BENCH_{rev}.json"
    path = write_bench_json(run, output)
    print(f"\nwrote bench JSON to {path}", file=report)
    if args.store:
        with ResultStore(args.store) as store:
            for name, entry in payload["scenarios"].items():
                store.record_bench_provenance(rev=rev, scenario=name, payload=entry)
        print(f"recorded {len(payload['scenarios'])} provenance row(s) in {args.store}",
              file=report)
    _finish_telemetry(telemetry, args, report=report)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _bench_compare(args: argparse.Namespace) -> int:
    current_path = args.current if args.current else f"BENCH_{_git_rev()}.json"
    if not Path(current_path).exists():
        print(f"no current bench file at {current_path}; run `repro bench run` first "
              "or pass --current", file=sys.stderr)
        return 2
    current = load_bench_json(current_path)
    baseline = load_bench_json(args.baseline)
    comparison = compare_bench(
        current, baseline, tolerance=args.tolerance, metric=args.metric
    )
    # With --json, stdout carries the machine-readable verdict alone (CI
    # redirects it into the uploaded gate artifact); the table moves to stderr.
    report = sys.stderr if args.json else sys.stdout
    rows = [
        {
            "scenario": entry.scenario,
            "baseline": entry.baseline,
            "current": entry.current,
            "ratio": entry.ratio,
            "verdict": entry.note,
        }
        for entry in comparison.entries
    ]
    print(render_table(
        rows,
        title=(f"Bench compare — {args.metric}, tolerance {args.tolerance:.0%} "
               f"({current_path} vs {args.baseline})"),
        float_digits=4,
    ), file=report)
    if args.json:
        print(json.dumps(comparison_to_dict(comparison), indent=2, sort_keys=True))
    if comparison.ok:
        print("\nperf gate : OK (no scenario regressed beyond the tolerance)", file=report)
        return 0
    names = ", ".join(entry.scenario for entry in comparison.regressions)
    print(f"\nperf gate : FAILED — regressed scenario(s): {names}", file=sys.stderr)
    return 1


def _command_monitor(args: argparse.Namespace) -> int:
    handlers = {
        "watch": _monitor_watch,
    }
    return handlers[args.monitor_command](args)


def _monitor_watch(args: argparse.Namespace) -> int:
    """Poll a status file or monitor URL; one line per poll, stop on final.

    Exit codes: 0 once a snapshot reports ``final`` (or the target vanishes
    after having been seen — the run ended and cleaned up), 1 when
    ``--max-polls`` runs out first, 2 when the target never yields a valid
    snapshot.
    """
    polls = 0
    seen_any = False
    while args.max_polls is None or polls < args.max_polls:
        polls += 1
        try:
            document = read_status(args.target)
        except ConfigurationError as error:
            print(f"watch     : {error}", file=sys.stderr)
            return 2
        except (OSError, ValueError) as error:
            if seen_any:
                # The run finished and its endpoint/file went away between
                # polls — everything we saw up to now stands.
                print("watch     : target gone; assuming the run ended")
                return 0
            print(f"watch     : cannot read {args.target}: {error}", file=sys.stderr)
            return 2
        seen_any = True
        print(render_status_line(document))
        if document.get("final"):
            return 0
        if args.max_polls is not None and polls >= args.max_polls:
            break
        time.sleep(args.interval)
    print(f"watch     : gave up after {polls} poll(s) without a final snapshot",
          file=sys.stderr)
    return 1


def _command_schedule(args: argparse.Namespace) -> int:
    params = _params(args)
    if args.protocol == "trapdoor":
        schedule = TrapdoorSchedule(params)
        print(render_table(schedule.describe_rows(), title=f"Trapdoor schedule — {params.describe()}", float_digits=5))
        print(f"\ntotal contention rounds: {schedule.total_rounds}")
    else:
        schedule = GoodSamaritanSchedule(params)
        print(render_table(schedule.describe_rows(), title=f"Good Samaritan schedule — {params.describe()}"))
        print(f"\noptimistic rounds: {schedule.optimistic_rounds}, fallback rounds: {schedule.fallback_rounds}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    telemetry = _telemetry_from_args(args)
    service = CampaignService(
        args.run_dir,
        host=args.host,
        port=args.port,
        plan=_plan_from_args(args),
        max_queued=args.max_queued,
        monitor_interval=args.monitor_interval,
        http_port=args.http_port,
        telemetry=telemetry,
        announce_path=args.announce,
    )
    service.start()
    print(f"service   : ndjson protocol on {args.host}:{service.port} "
          f"(submit with: repro client submit)")
    if service.http_port is not None:
        print(f"service   : status facade at http://{args.host}:{service.http_port}/status "
              "(also /jobs, /jobs/<id>/status)")
    if args.announce:
        print(f"service   : announce file {args.announce}")
    print(f"service   : run dir {args.run_dir}, "
          f"{'shared pool, ' + str(args.workers) + ' workers' if args.workers > 1 else 'serial execution'}, "
          f"max {args.max_queued} queued")
    # The service-level monitor watches the shared pool's worker metrics
    # across jobs (per-job monitors live under <run-dir>/jobs/<id>/).
    monitor = _monitor_from_args(
        args,
        telemetry,
        unit="trials",
        total=None,
        done_metrics=("worker.trials_executed",),
    )
    try:
        service.wait()
    except KeyboardInterrupt:
        print("\nstopping  : draining; a running job halts at its next commit "
              "(resume by resubmitting the identical request)")
    finally:
        if monitor is not None:
            monitor.stop()
        service.stop()
        _finish_telemetry(telemetry, args)
    return 0


def _client_connection(args: argparse.Namespace) -> ServiceClient:
    if args.connect is not None:
        return connect_from_announce(
            args.connect,
            connect_retries=args.connect_retries,
            connect_backoff=args.connect_backoff,
        )
    if args.port is None:
        raise ConfigurationError("repro client needs --port (or --connect ANNOUNCE_FILE)")
    return ServiceClient(
        args.host,
        args.port,
        connect_retries=args.connect_retries,
        connect_backoff=args.connect_backoff,
    )


def _command_client(args: argparse.Namespace) -> int:
    try:
        with _client_connection(args) as client:
            return _client_dispatch(args, client)
    except (ServiceError, ConfigurationError, ConnectionRefusedError) as error:
        print(f"error     : {error}", file=sys.stderr)
        return 1


def _client_dispatch(args: argparse.Namespace, client: ServiceClient) -> int:
    command = args.client_command
    if command == "submit":
        text = sys.stdin.read() if args.request == "-" else Path(args.request).read_text()
        request = JobRequest.from_json(text)
        if args.wait:
            response = client.request({"op": "submit", "request": request.to_dict()})
            print(json.dumps({k: v for k, v in response.items() if k != "ok"}))
            final = None
            for record in client.watch(response["job"]):
                print(json.dumps(record))
                final = record
            return 0 if final is not None and final.get("state") == "completed" else 1
        response = client.submit(request)
        print(json.dumps({k: v for k, v in response.items() if k != "ok"}))
        return 0
    if command == "status":
        print(json.dumps(client.status(args.job), indent=2))
        return 0
    if command == "watch":
        final = None
        for record in client.watch(args.job):
            print(json.dumps(record))
            final = record
        return 0 if final is not None and final.get("state") in (None, "completed") else 1
    if command == "cancel":
        response = client.cancel(args.job)
        print(json.dumps({k: v for k, v in response.items() if k != "ok"}))
        return 0
    if command == "jobs":
        print(json.dumps(client.jobs(), indent=2))
        return 0
    if command == "store-status":
        response = client.store_status(args.store)
        print(json.dumps({k: v for k, v in response.items() if k != "ok"}, indent=2))
        return 0
    response = client.shutdown()
    print(json.dumps({k: v for k, v in response.items() if k != "ok"}))
    return 0


def _command_experiments(_args: argparse.Namespace) -> int:
    rows = [
        {
            "id": spec.identifier,
            "artefact": spec.paper_artefact,
            "benchmark": spec.benchmark_module,
            "claim": spec.claim,
        }
        for spec in EXPERIMENTS
    ]
    print(render_table(rows, title="Registered experiments (see EXPERIMENTS.md for measured results)"))
    return 0


def _command_bounds(args: argparse.Namespace) -> int:
    params = _params(args)
    n, f, t = params.participant_bound, params.frequencies, params.disruption_budget
    rows = [
        {"bound": "Theorem 1 (regular protocols)", "value": theorem1_lower_bound(n, f, t)},
        {"bound": "Theorem 4 (two-node, eps=1/N)", "value": theorem4_lower_bound(f, t, 1.0 / n) if t else 0.0},
        {"bound": "Theorem 5 (combined lower bound)", "value": theorem5_lower_bound(n, f, t)},
        {"bound": "Theorem 10 (Trapdoor upper bound)", "value": trapdoor_upper_bound(n, f, t)},
        {
            "bound": f"Theorem 18 adaptive (t'={args.actual_disruption})",
            "value": good_samaritan_adaptive_bound(n, args.actual_disruption),
        },
        {"bound": "Theorem 18 worst case", "value": good_samaritan_worst_case_bound(n, f)},
    ]
    print(render_table(rows, title=f"Bound formulas (constants omitted) — {params.describe()}", float_digits=1))
    return 0


def _configure_logging(level_name: str) -> None:
    """Point the ``repro`` logger hierarchy at stderr at the requested level.

    Only the package logger is touched (never the root logger), and the
    handler is replaced rather than appended, so repeated :func:`main` calls
    — the test suite invokes it hundreds of times — do not stack handlers.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level_name.upper()))
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    # Propagation stays on (the root logger has no handlers of its own by
    # default), which keeps pytest's caplog able to see these records.
    logger.handlers = [handler]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    if (
        args.command == "simulate"
        and args.csv
        and TraceLevel(args.trace_level) is TraceLevel.NONE
    ):
        parser.error("--csv needs a round log; use --trace-level full or sampled")
    handlers = {
        "simulate": _command_simulate,
        "trials": _command_trials,
        "campaign": _command_campaign,
        "search": _command_search,
        "bench": _command_bench,
        "monitor": _command_monitor,
        "serve": _command_serve,
        "client": _command_client,
        "schedule": _command_schedule,
        "experiments": _command_experiments,
        "bounds": _command_bounds,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
