"""Registry exports: JSON snapshots and Prometheus text exposition.

Two renderings of one :class:`~repro.telemetry.metrics.MetricsRegistry`:

* :func:`registry_snapshot` — a plain JSON-serializable dict (counters,
  gauges, histograms keyed by name) that ``--metrics-out`` writes and the
  bench harness embeds into ``BENCH_<rev>.json``;
* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), ready to serve from a ``/metrics`` endpoint or push
  through a file-based textfile collector.  Dotted internal names map to
  ``repro_``-prefixed underscore names, counters gain the conventional
  ``_total`` suffix, and histograms render the cumulative ``_bucket{le=...}``
  series plus ``_sum``/``_count``.

Both renderings iterate the registry in sorted-name order, so two snapshots
of identical registry state serialize identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry


def registry_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """The registry's full state as a JSON-serializable dict."""
    counters: dict[str, Any] = {}
    gauges: dict[str, Any] = {}
    histograms: dict[str, Any] = {}
    for instrument in registry.instruments():
        if isinstance(instrument, Counter):
            counters[instrument.name] = instrument.value
        elif isinstance(instrument, Gauge):
            gauges[instrument.name] = instrument.value
        elif isinstance(instrument, Histogram):
            histograms[instrument.name] = {
                "buckets": list(instrument.buckets),
                "counts": list(instrument.bucket_counts()),
                "sum": instrument.sum,
                "count": instrument.count,
            }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def write_metrics_json(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write a registry snapshot as indented JSON and return the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(registry_snapshot(registry), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def write_prometheus_text(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    """Write the Prometheus text exposition to ``path`` and return the path.

    The file-based sibling of serving :func:`render_prometheus` from a
    ``/metrics`` endpoint — drop the output where a node-exporter textfile
    collector picks it up.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_prometheus(registry), encoding="utf-8")
    return target


def _prometheus_name(name: str) -> str:
    """Map a dotted internal metric name to a Prometheus-legal one."""
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus text exposition expects."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (one trailing newline)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = _prometheus_name(instrument.name)
        if isinstance(instrument, Counter):
            metric = f"{name}_total"
            if instrument.help:
                lines.append(f"# HELP {metric} {instrument.help}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            counts = instrument.bucket_counts()
            for bound, bucket_count in zip(instrument.buckets, counts):
                cumulative += bucket_count
                lines.append(f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
            cumulative += counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""
