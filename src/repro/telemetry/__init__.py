"""Structured telemetry for the execution stack.

One :class:`Telemetry` handle bundles the three observability primitives —
typed events (:mod:`repro.telemetry.events`), a process-local metrics
registry (:mod:`repro.telemetry.metrics`), and nestable timing spans
(:mod:`repro.telemetry.spans`) — behind a single object that the CLI threads
down through :class:`~repro.engine.pool.ExecutionPool`,
:class:`~repro.campaigns.runner.CampaignRunner`,
:class:`~repro.search.runner.StrategySearch`, and the bench harness.

Two invariants the rest of the stack leans on:

* **Telemetry never changes results.**  Events, metrics, and spans are a
  one-way export: stores, search checkpoints, and
  :func:`~repro.engine.serialization.execution_digest` goldens are
  byte-identical with telemetry on or off (pinned by the golden-equivalence
  suite).  Handles live in the orchestrating process only — a worker never
  receives a telemetry object, lock, or file descriptor.  What *does* cross
  the boundary is plain data: each chunk result piggybacks a picklable
  :class:`~repro.telemetry.metrics.WorkerStatsDelta` that the parent folds
  into its own registry via
  :meth:`~repro.telemetry.metrics.MetricsRegistry.merge_delta` (see
  :mod:`repro.engine.pool`), so in-worker work is observable — live, via
  :mod:`repro.telemetry.monitor` — without shipping handles.
* **Off costs (almost) nothing.**  :data:`TELEMETRY_OFF` — the module-level
  disabled singleton every ``telemetry=None`` parameter resolves to via
  :func:`as_telemetry` — hands out shared no-op instruments and spans: no
  allocation, no locking, no I/O per call.  Instrumentation sits at
  orchestration boundaries (per chunk, per cell, per evaluation — never per
  simulated round), and ``benchmarks/test_telemetry_overhead.py`` gates the
  combined per-call × call-count budget at ≤2% of the pinned bench scenarios.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Optional, Union

from repro.exceptions import ConfigurationError

from repro.telemetry.events import JsonlSink, SpanCompleted, TelemetryEvent
from repro.telemetry.export import (
    registry_snapshot,
    render_prometheus,
    write_metrics_json,
    write_prometheus_text,
)
from repro.telemetry.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    AnyCounter,
    AnyGauge,
    AnyHistogram,
    MetricsRegistry,
)
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span

__all__ = [
    "Telemetry",
    "DisabledTelemetry",
    "TELEMETRY_OFF",
    "as_telemetry",
    "JsonlSink",
    "MetricsRegistry",
    "registry_snapshot",
    "render_prometheus",
    "write_metrics_json",
    "write_prometheus_text",
]


class Telemetry:
    """A live telemetry handle: event stream + metrics registry + spans.

    Parameters
    ----------
    sink:
        Optional :class:`~repro.telemetry.events.JsonlSink` events are
        appended to.  Without one, events still count into the registry
        (``events.<kind>`` counters) but the full records are dropped.
    registry:
        The metrics registry instruments live in (a fresh one by default).
    """

    #: Discriminates live handles from :class:`DisabledTelemetry` without an
    #: isinstance check — hot call sites guard event construction on it.
    enabled: bool = True

    def __init__(
        self,
        sink: Optional[JsonlSink] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._sink = sink
        self._registry = registry if registry is not None else MetricsRegistry()
        self._span_stack: list[str] = []
        self._taps: tuple[Callable[[TelemetryEvent], None], ...] = ()

    @classmethod
    def to_jsonl(cls, path: Union[str, Path], buffer_size: int = 256) -> "Telemetry":
        """A live handle streaming events to a buffered JSONL file."""
        return cls(sink=JsonlSink(path, buffer_size=buffer_size))

    # -- introspection ----------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics registry this handle's instruments live in."""
        return self._registry

    @property
    def sink(self) -> Optional[JsonlSink]:
        """The event sink, if one is attached."""
        return self._sink

    # -- events -----------------------------------------------------------

    def emit(self, event: TelemetryEvent) -> None:
        """Record one event: count it per kind, append it to the sink, fan out."""
        self._registry.counter(f"events.{event.kind}", help=f"emitted {event.kind} events").inc()
        if self._sink is not None:
            self._sink.emit(event)
        for tap in self._taps:
            tap(event)

    def add_event_tap(self, tap: Callable[[TelemetryEvent], None]) -> None:
        """Register an in-process observer called for every emitted event.

        Taps power the live monitor's recent-events view.  They run on the
        emitting thread, so they must be fast and must not raise — an
        exception would propagate into the orchestration call site.
        """
        self._taps = (*self._taps, tap)

    def remove_event_tap(self, tap: Callable[[TelemetryEvent], None]) -> None:
        """Deregister a tap (no-op if it was never added)."""
        self._taps = tuple(existing for existing in self._taps if existing is not tap)

    # -- metrics ----------------------------------------------------------

    def counter(self, name: str, help: str = "") -> AnyCounter:
        """Get or create a counter in the registry."""
        return self._registry.counter(name, help=help)

    def gauge(self, name: str, help: str = "") -> AnyGauge:
        """Get or create a gauge in the registry."""
        return self._registry.gauge(name, help=help)

    def histogram(self, name: str, help: str = "") -> AnyHistogram:
        """Get or create a (default-bucket seconds) histogram in the registry."""
        return self._registry.histogram(name, help=help)

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Union[Span, NullSpan]:
        """A new timing span (use as a context manager)."""
        return Span(self, name, attributes)

    def _push_span(self, name: str) -> tuple[int, Optional[str]]:
        depth = len(self._span_stack)
        parent = self._span_stack[-1] if self._span_stack else None
        self._span_stack.append(name)
        return depth, parent

    def _pop_span(self, span: Span) -> None:
        assert self._span_stack and self._span_stack[-1] == span.name, (
            f"span {span.name!r} closed out of order (open: {self._span_stack})"
        )
        self._span_stack.pop()
        assert span.seconds is not None
        self._registry.histogram(
            f"span.{span.name}.seconds", help=f"duration of {span.name} spans"
        ).observe(span.seconds)
        self.emit(
            SpanCompleted(
                name=span.name,
                seconds=span.seconds,
                depth=span._depth,
                parent=span._parent,
                attributes=dict(span.attributes),
            )
        )

    # -- export / lifecycle -----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The registry's state as a JSON-serializable dict."""
        return registry_snapshot(self._registry)

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return render_prometheus(self._registry)

    def flush(self) -> None:
        """Flush the event sink's buffer (no-op without a sink)."""
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the event sink (idempotent; the registry stays)."""
        if self._sink is not None:
            self._sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DisabledTelemetry(Telemetry):
    """The do-nothing handle: every lookup returns a shared no-op singleton.

    Constructing one allocates nothing beyond the instance itself (no
    registry, no sink, no stack), and every method is either a constant
    return or an empty body — the no-op fast-path tests pin both the
    singleton identities and the per-call cost.
    """

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - deliberately does not call super()
        pass

    @property
    def registry(self) -> MetricsRegistry:
        raise AttributeError("disabled telemetry has no live registry")

    @property
    def sink(self) -> Optional[JsonlSink]:
        return None

    def emit(self, event: TelemetryEvent) -> None:
        """Discard the event."""

    def add_event_tap(self, tap: Callable[[TelemetryEvent], None]) -> None:
        """Refuse: a disabled handle emits no events, so a tap would hear nothing."""
        raise ConfigurationError(
            "disabled telemetry emits no events to tap; attach the monitor "
            "to a live Telemetry handle"
        )

    def remove_event_tap(self, tap: Callable[[TelemetryEvent], None]) -> None:
        """Nothing to remove."""

    def counter(self, name: str, help: str = "") -> AnyCounter:
        """The shared no-op counter, whatever the name."""
        return NULL_COUNTER

    def gauge(self, name: str, help: str = "") -> AnyGauge:
        """The shared no-op gauge, whatever the name."""
        return NULL_GAUGE

    def histogram(self, name: str, help: str = "") -> AnyHistogram:
        """The shared no-op histogram, whatever the name."""
        return NULL_HISTOGRAM

    def span(self, name: str, **attributes: Any) -> Union[Span, NullSpan]:
        """The shared no-op span, whatever the name."""
        return NULL_SPAN

    def snapshot(self) -> dict[str, Any]:
        """An empty snapshot (nothing was recorded)."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def prometheus(self) -> str:
        """An empty exposition."""
        return ""

    def flush(self) -> None:
        """Nothing to flush."""

    def close(self) -> None:
        """Nothing to close."""


#: The process-wide disabled handle.  ``telemetry=None`` parameters all over
#: the stack resolve to this via :func:`as_telemetry`, so "telemetry off" is
#: one shared object and zero per-call allocation everywhere.
TELEMETRY_OFF = DisabledTelemetry()


def as_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Normalize an optional handle: ``None`` means :data:`TELEMETRY_OFF`."""
    return telemetry if telemetry is not None else TELEMETRY_OFF
