"""The live run monitor: periodic status snapshots + stdlib HTTP endpoints.

A :class:`RunMonitor` watches one live :class:`~repro.telemetry.Telemetry`
handle from a background thread and makes a run observable while it is still
in flight, two complementary ways:

* **status file** — every ``interval`` seconds it writes a schema-versioned
  JSON document (:data:`STATUS_SCHEMA`) *atomically* (temp file +
  :func:`os.replace`, so a concurrent reader never sees a torn snapshot):
  progress against the known total, EWMA throughput and the ETA it implies,
  best-score-so-far for searches, worker restart count, the merged
  ``worker.*`` delta counters, the last N events, and the full registry
  snapshot;
* **HTTP endpoints** — an optional stdlib
  :class:`~http.server.ThreadingHTTPServer` (one handler thread per request,
  the serving shape the campaign-service roadmap item needs) exposes
  ``/status`` (the same JSON), ``/metrics``
  (:func:`~repro.telemetry.export.render_prometheus` text exposition, ready
  for a Prometheus scrape), and ``/events`` (a JSONL tail of the attached
  sink's stream via :func:`~repro.telemetry.events.read_jsonl_events`).

The monitor is an observer only: it reads the registry and taps the event
stream, never feeds execution, and degrades to a log line if a tick fails —
stores, checkpoints, and digests are byte-identical with it on or off (the
monitor-enabled identity tests pin this).  Throughput state (the EWMA) only
advances on the monitor's own tick, so HTTP polling at any rate cannot skew
the rate estimate.

:func:`read_status` and :func:`render_status_line` back the
``repro monitor watch`` CLI, which polls a status file or monitor URL and
prints one progress line per poll until the run marks its snapshot final.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import urllib.request
from collections import deque
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional, Sequence, Union
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ConfigurationError
from repro.telemetry import Telemetry
from repro.telemetry.events import TelemetryEvent, read_jsonl_events
from repro.telemetry.export import render_prometheus

logger = logging.getLogger("repro.telemetry.monitor")

#: The status document's schema tag.  Bump the version on any breaking field
#: change — consumers (``monitor watch``, CI assertions, dashboards) validate
#: it before trusting the rest of the document.
STATUS_SCHEMA = "repro.monitor.status/v1"

#: Top-level fields every valid status document carries.
_REQUIRED_FIELDS = (
    "schema",
    "final",
    "unit",
    "progress",
    "throughput",
    "workers",
    "recent_events",
)

#: Default progress counters: the campaign path (committed + resume-reused).
DEFAULT_DONE_METRICS = ("campaign.cells_committed", "campaign.cells_reused")


class RunMonitor:
    """Publishes one live telemetry handle's state on a wall-clock interval.

    Parameters
    ----------
    telemetry:
        The **live** handle to observe (a disabled handle is refused — there
        would be nothing to publish).
    status_path:
        Optional JSON snapshot path, rewritten atomically every ``interval``
        seconds and once more (marked ``final``) on :meth:`stop`.
    port:
        Optional TCP port for the HTTP endpoints (``0`` = ephemeral; read the
        bound port back from :attr:`port`).  At least one of ``status_path``
        and ``port`` is required.
    host:
        Bind address for the HTTP server (default loopback).
    interval:
        Seconds between snapshot writes / throughput updates.
    unit:
        What the progress counters count (``"cells"``, ``"evaluations"``,
        ``"trials"`` — presentation only).
    total:
        The known total number of units, for the progress fraction and ETA
        (``None`` = open-ended; done counts still publish).
    done_metrics:
        Counter names whose sum is the done-so-far count.
    best_metric:
        Optional gauge name published as the best score so far (the search
        path's ``search.best_score``); the best *strategy* rides along from
        ``best-candidate-improved`` events.
    recent_events:
        How many of the latest events the status document retains.
    ewma_alpha:
        Smoothing factor for the exponentially weighted throughput estimate
        (higher = more reactive).
    """

    def __init__(
        self,
        telemetry: Telemetry,
        *,
        status_path: Optional[Union[str, Path]] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        interval: float = 1.0,
        unit: str = "cells",
        total: Optional[int] = None,
        done_metrics: Sequence[str] = DEFAULT_DONE_METRICS,
        best_metric: Optional[str] = None,
        recent_events: int = 32,
        ewma_alpha: float = 0.3,
    ) -> None:
        if not telemetry.enabled:
            raise ConfigurationError(
                "the run monitor needs a live telemetry handle (disabled "
                "telemetry records nothing to publish)"
            )
        if status_path is None and port is None:
            raise ConfigurationError("a run monitor needs a status file, an HTTP port, or both")
        if interval <= 0:
            raise ConfigurationError(f"monitor interval must be positive, got {interval}")
        if total is not None and total < 0:
            raise ConfigurationError(f"monitor total must be non-negative, got {total}")
        if recent_events < 1:
            raise ConfigurationError(f"monitor recent_events must be positive, got {recent_events}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(f"monitor ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self._telemetry = telemetry
        self._status_path = Path(status_path) if status_path is not None else None
        self._requested_port = port
        self._host = host
        self._interval = float(interval)
        self._unit = unit
        self._total = total
        self._done_metrics = tuple(done_metrics)
        self._best_metric = best_metric
        self._ewma_alpha = ewma_alpha
        self._events: deque[dict[str, Any]] = deque(maxlen=recent_events)
        self._events_lock = threading.Lock()
        # One pinned bound method: taps detach by identity, and accessing
        # ``self._observe_event`` twice yields two distinct method objects.
        self._tap = self._observe_event
        self._best_strategy: Optional[str] = None
        self._started_at: Optional[float] = None
        self._finalized = False
        self._ewma_rate: Optional[float] = None
        self._last_done: Optional[float] = None
        self._last_tick: Optional[float] = None
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None

    # -- introspection ----------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The handle this monitor observes."""
        return self._telemetry

    @property
    def status_path(self) -> Optional[Path]:
        """Where snapshots are written (None = HTTP only)."""
        return self._status_path

    @property
    def port(self) -> Optional[int]:
        """The bound HTTP port once started (None without a server)."""
        if self._server is None:
            return None
        return self._server.server_address[1]

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._started_at is not None and not self._finalized

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "RunMonitor":
        """Start the snapshot thread (and the HTTP server, if a port was given)."""
        if self._started_at is not None:
            raise ConfigurationError("run monitor already started")
        self._telemetry.add_event_tap(self._tap)
        self._started_at = time.monotonic()
        self._last_tick = self._started_at
        self._last_done = self._done_count()
        if self._requested_port is not None:
            handler = partial(_MonitorRequestHandler, self)
            self._server = ThreadingHTTPServer((self._host, self._requested_port), handler)
            self._server.daemon_threads = True
            self._server_thread = threading.Thread(
                target=self._server.serve_forever, name="repro-monitor-http", daemon=True
            )
            self._server_thread.start()
        self._thread = threading.Thread(target=self._run, name="repro-monitor", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop publishing: final snapshot (``final: true``), server down (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=self._interval + 5.0)
        try:
            self._update_throughput()
            self._publish(final=True)
        except Exception:  # pragma: no cover - defensive: stop must not raise
            logger.exception("run monitor failed to write its final snapshot")
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
                self._server_thread = None
        self._telemetry.remove_event_tap(self._tap)

    def __enter__(self) -> "RunMonitor":
        if self._started_at is None:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the background loop ----------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.wait(self._interval):
            try:
                self._update_throughput()
                self._publish(final=False)
            except Exception:  # noqa: BLE001 - an observer must never kill the run
                logger.exception("run monitor tick failed; continuing")

    def _observe_event(self, event: TelemetryEvent) -> None:
        record = event.to_dict()
        with self._events_lock:
            self._events.append(record)
            if event.kind == "best-candidate-improved":
                self._best_strategy = record.get("strategy")

    def _done_count(self, counters: Optional[dict[str, float]] = None) -> float:
        if counters is None:
            counters = self._telemetry.snapshot()["counters"]
        return float(sum(counters.get(name, 0) for name in self._done_metrics))

    def _update_throughput(self) -> None:
        """Advance the EWMA rate — called from the tick thread only."""
        now = time.monotonic()
        done = self._done_count()
        if self._last_tick is not None and self._last_done is not None:
            elapsed = now - self._last_tick
            if elapsed > 0:
                rate = max(0.0, (done - self._last_done) / elapsed)
                if self._ewma_rate is None:
                    self._ewma_rate = rate
                else:
                    self._ewma_rate = (
                        self._ewma_alpha * rate + (1.0 - self._ewma_alpha) * self._ewma_rate
                    )
        self._last_tick = now
        self._last_done = done

    def _publish(self, final: bool) -> None:
        if self._status_path is None:
            return
        document = self._build_status(final=final)
        target = self._status_path
        target.parent.mkdir(parents=True, exist_ok=True)
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(
            json.dumps(document, sort_keys=True, default=str) + "\n", encoding="utf-8"
        )
        # Atomic replace: a reader sees either the previous snapshot or this
        # one in full, never a partial write.
        os.replace(scratch, target)

    # -- the status document ----------------------------------------------

    def status(self) -> dict[str, Any]:
        """The current status document (what ``/status`` serves)."""
        return self._build_status(final=self._finalized)

    def _build_status(self, final: bool) -> dict[str, Any]:
        snapshot = self._telemetry.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        done = self._done_count(counters)
        fraction = done / self._total if self._total else None
        rate = self._ewma_rate
        eta = None
        if self._total is not None and rate is not None and rate > 0:
            eta = max(0.0, (self._total - done) / rate)
        best: Optional[dict[str, Any]] = None
        if self._best_metric is not None:
            with self._events_lock:
                strategy = self._best_strategy
            score = gauges.get(self._best_metric)
            if score is not None or strategy is not None:
                best = {"score": score, "strategy": strategy}
        with self._events_lock:
            recent = list(self._events)
        elapsed = time.monotonic() - self._started_at if self._started_at is not None else 0.0
        return {
            "schema": STATUS_SCHEMA,
            "written_unix_s": time.time(),
            "elapsed_s": elapsed,
            "final": final,
            "unit": self._unit,
            "progress": {"done": done, "total": self._total, "fraction": fraction},
            "throughput": {"ewma_per_s": rate, "eta_s": eta},
            "best": best,
            "workers": {
                "restarts": counters.get("pool.worker_restarts", 0),
                "processes_seen": gauges.get("pool.worker_processes_seen", 0),
                "chunks_completed": counters.get("worker.chunks_completed", 0),
                "trials_executed": counters.get("worker.trials_executed", 0),
                "rounds_simulated": counters.get("worker.rounds_simulated", 0),
                "scalar_trials": counters.get("worker.scalar_trials", 0),
                "batch_trials": counters.get("worker.batch_trials", 0),
            },
            "recent_events": recent,
            "metrics": snapshot,
        }

    def events_tail(self, limit: Optional[int] = None) -> str:
        """The sink's stream (rotation-stitched) as JSONL text, last ``limit``."""
        sink = self._telemetry.sink
        if sink is None or sink.closed:
            raise ConfigurationError(
                "no live event sink attached (run with --telemetry to enable /events)"
            )
        sink.flush()
        records = read_jsonl_events(sink.path)
        if limit is not None:
            records = records[-limit:]
        return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


class _MonitorRequestHandler(BaseHTTPRequestHandler):
    """Read-only endpoints, one handler thread per request (ThreadingHTTPServer)."""

    server_version = "repro-monitor/1"

    def __init__(self, monitor: RunMonitor, *args: Any, **kwargs: Any) -> None:
        self._monitor = monitor
        # BaseHTTPRequestHandler handles the request inside __init__, so the
        # monitor reference must land first.
        super().__init__(*args, **kwargs)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("monitor http: %s", format % args)

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming contract
        parts = urlsplit(self.path)
        route = parts.path.rstrip("/") or "/"
        try:
            if route in ("/", "/status"):
                body = (
                    json.dumps(self._monitor.status(), sort_keys=True, default=str) + "\n"
                ).encode("utf-8")
                content_type = "application/json"
            elif route == "/metrics":
                body = render_prometheus(self._monitor.telemetry.registry).encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif route == "/events":
                limit = self._tail_limit(parts.query)
                body = self._monitor.events_tail(limit).encode("utf-8")
                content_type = "application/x-ndjson"
            else:
                self.send_error(404, "unknown endpoint (try /status, /metrics, /events)")
                return
        except ConfigurationError as error:
            self.send_error(404, str(error))
            return
        except Exception:  # noqa: BLE001 - a broken handler must not kill the server
            logger.exception("monitor endpoint %s failed", route)
            self.send_error(500, "monitor endpoint failed (see run logs)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @staticmethod
    def _tail_limit(query: str) -> Optional[int]:
        values = parse_qs(query).get("n")
        if not values:
            return None
        try:
            return max(1, int(values[-1]))
        except ValueError:
            return None


# -- the watch side (files or URLs) -------------------------------------------


def validate_status(document: Any) -> dict[str, Any]:
    """Check a parsed status document against :data:`STATUS_SCHEMA`; return it."""
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"status document must be a JSON object, got {type(document).__name__}"
        )
    schema = document.get("schema")
    if schema != STATUS_SCHEMA:
        raise ConfigurationError(
            f"unsupported status schema {schema!r} (this build reads {STATUS_SCHEMA!r})"
        )
    missing = [name for name in _REQUIRED_FIELDS if name not in document]
    if missing:
        raise ConfigurationError(f"status document is missing fields: {', '.join(missing)}")
    return document


def read_status(target: Union[str, Path], timeout: float = 5.0) -> dict[str, Any]:
    """Load and validate a status document from a file path or a monitor URL.

    URL targets may point at the monitor base (``http://host:port``) or
    straight at ``/status``.  File targets are read whole — safe against
    tearing because the monitor replaces them atomically.
    """
    text = str(target)
    if text.startswith(("http://", "https://")):
        url = text if text.rstrip("/").endswith("/status") else text.rstrip("/") + "/status"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            payload = response.read().decode("utf-8")
        return validate_status(json.loads(payload))
    return validate_status(json.loads(Path(target).read_text(encoding="utf-8")))


def _format_duration(seconds: float) -> str:
    value = max(0, int(round(seconds)))
    hours, remainder = divmod(value, 3600)
    minutes, secs = divmod(remainder, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_status_line(document: dict[str, Any]) -> str:
    """One human-readable progress line for a status document."""
    progress = document.get("progress") or {}
    throughput = document.get("throughput") or {}
    workers = document.get("workers") or {}
    unit = document.get("unit", "units")
    done = progress.get("done", 0)
    total = progress.get("total")
    fraction = progress.get("fraction")
    parts: list[str] = []
    if total:
        label = f"{done:g}/{total:g} {unit}"
        if fraction is not None:
            label += f" ({fraction:.1%})"
        parts.append(label)
    else:
        parts.append(f"{done:g} {unit}")
    rate = throughput.get("ewma_per_s")
    parts.append(f"{rate:.2f} {unit}/s" if rate is not None else "rate n/a")
    eta = throughput.get("eta_s")
    if eta is not None:
        parts.append(f"ETA {_format_duration(eta)}")
    restarts = workers.get("restarts", 0)
    if restarts:
        parts.append(f"{restarts:g} worker restart(s)")
    best = document.get("best")
    if best:
        score = best.get("score")
        strategy = best.get("strategy")
        label = "best n/a" if score is None else f"best {score:g}"
        if strategy:
            label += f" ({strategy})"
        parts.append(label)
    if document.get("final"):
        parts.append("final")
    elapsed = document.get("elapsed_s")
    if elapsed is not None:
        parts.append(f"up {_format_duration(elapsed)}")
    return " | ".join(parts)
