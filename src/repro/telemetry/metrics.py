"""The process-local metrics registry: counters, gauges, histograms.

Instruments are deliberately minimal — no labels, no global state, no wire
protocol.  A :class:`MetricsRegistry` is a named bag of three instrument
kinds:

* :class:`Counter` — a monotonically increasing total (chunks dispatched,
  cells committed, worker restarts);
* :class:`Gauge` — a value that goes both ways (in-flight chunk queue depth,
  the best search score so far, end-of-run rates);
* :class:`Histogram` — fixed-bucket cumulative counts plus sum/count (per-cell
  commit latency, span durations).  Buckets are pinned at construction, so
  two snapshots of the same registry are always comparable.

The **disabled path costs nothing**: when telemetry is off, every lookup
returns one of three shared no-op singletons (:data:`NULL_COUNTER`,
:data:`NULL_GAUGE`, :data:`NULL_HISTOGRAM`) whose mutating methods are empty
— no allocation, no locking, no branching beyond the method call itself.
The overhead gate in ``benchmarks/test_telemetry_overhead.py`` pins that
per-call cost.

Live instruments take a small lock per mutation: updates can arrive from
executor done-callbacks (the pool's queue-depth gauge), and a torn
``+=`` under free-threading would corrupt totals silently.  Orchestration
code calls these O(1) times per chunk/cell/evaluation — never per round — so
the lock is off the hot path by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.exceptions import ConfigurationError

#: Default histogram buckets for durations in seconds: micro-cells through
#: multi-second campaign phases.  The implicit +Inf bucket is always last.
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)

#: The pinned bucket bounds every :class:`WorkerStatsDelta` histogram is
#: recorded against.  Workers ship raw per-bucket counts (not observations),
#: so both sides of the process boundary must agree on the bounds; sharing
#: one constant keeps them in lockstep by construction, and
#: :meth:`MetricsRegistry.merge_delta` re-checks the length on every merge.
WORKER_SECONDS_BUCKETS: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS


@dataclass(frozen=True, slots=True)
class WorkerStatsDelta:
    """Plain, picklable per-chunk execution stats a worker ships back.

    This is the only telemetry-adjacent thing that crosses the worker-process
    boundary: pure data (no handles, locks, or file descriptors), piggybacked
    on each chunk result and folded into the parent's registry by
    :meth:`MetricsRegistry.merge_delta`.  All fields are deltas relative to
    the previous chunk except ``pid``/``uptime_s``, which identify the worker
    process and how long it had been executing work when the chunk finished.
    """

    pid: int
    uptime_s: float
    chunks: int
    trials: int
    rounds: int
    scalar_trials: int
    batch_trials: int
    simulate_seconds_sum: float
    simulate_seconds_count: int
    #: Non-cumulative counts per :data:`WORKER_SECONDS_BUCKETS` bound, with
    #: the trailing +Inf slot — same layout as :meth:`Histogram.bucket_counts`.
    simulate_seconds_buckets: tuple[int, ...]

    @classmethod
    def for_chunk(
        cls,
        *,
        pid: int,
        uptime_s: float,
        trials: int,
        rounds: int,
        batched: bool,
        seconds: float,
    ) -> "WorkerStatsDelta":
        """The delta one finished chunk contributes (one histogram observation)."""
        counts = [0] * (len(WORKER_SECONDS_BUCKETS) + 1)
        index = len(WORKER_SECONDS_BUCKETS)
        for position, bound in enumerate(WORKER_SECONDS_BUCKETS):
            if seconds <= bound:
                index = position
                break
        counts[index] = 1
        return cls(
            pid=pid,
            uptime_s=uptime_s,
            chunks=1,
            trials=trials,
            rounds=rounds,
            scalar_trials=0 if batched else trials,
            batch_trials=trials if batched else 0,
            simulate_seconds_sum=seconds,
            simulate_seconds_count=1,
            simulate_seconds_buckets=tuple(counts),
        )


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        return self._value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Move the value up by ``amount``."""
        with self._lock:
            self._value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Move the value down by ``amount``."""
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        """The current value."""
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram with sum and count.

    ``buckets`` are the finite upper bounds, strictly increasing; the +Inf
    bucket is implicit.  ``bucket_counts`` reports *non-cumulative* per-bucket
    counts (the exporter accumulates for the Prometheus text format).
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ConfigurationError(f"histogram {name!r} needs at least one bucket bound")
        if any(later <= earlier for earlier, later in zip(bounds, bounds[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bucket bounds must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def merge_counts(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold pre-bucketed observations in (the worker-delta merge path).

        ``counts`` must use this histogram's exact bucket layout (one slot per
        finite bound plus the trailing +Inf slot); merging is additive and
        therefore order-independent.
        """
        if len(counts) != len(self._counts):
            raise ConfigurationError(
                f"histogram {self.name!r} has {len(self._counts)} bucket slots "
                f"(including +Inf); cannot merge {len(counts)} counts"
            )
        if count < 0 or any(increment < 0 for increment in counts):
            raise ConfigurationError(f"histogram {self.name!r} merge counts must be non-negative")
        with self._lock:
            for index, increment in enumerate(counts):
                self._counts[index] += increment
            self._sum += total
            self._count += count

    @property
    def sum(self) -> float:
        """Sum of every observed value."""
        return self._sum

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    def bucket_counts(self) -> tuple[int, ...]:
        """Per-bucket (non-cumulative) counts; the last entry is the +Inf bucket."""
        with self._lock:
            return tuple(self._counts)


class NullCounter:
    """The shared do-nothing counter every disabled lookup returns."""

    __slots__ = ()
    name = ""
    help = ""

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Discard the update."""

    @property
    def value(self) -> float:
        """Always zero."""
        return 0.0


class NullGauge:
    """The shared do-nothing gauge every disabled lookup returns."""

    __slots__ = ()
    name = ""
    help = ""

    def set(self, value: Union[int, float]) -> None:
        """Discard the update."""

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Discard the update."""

    def dec(self, amount: Union[int, float] = 1) -> None:
        """Discard the update."""

    @property
    def value(self) -> float:
        """Always zero."""
        return 0.0


class NullHistogram:
    """The shared do-nothing histogram every disabled lookup returns."""

    __slots__ = ()
    name = ""
    help = ""
    buckets: tuple[float, ...] = ()

    def observe(self, value: Union[int, float]) -> None:
        """Discard the observation."""

    @property
    def sum(self) -> float:
        """Always zero."""
        return 0.0

    @property
    def count(self) -> int:
        """Always zero."""
        return 0

    def bucket_counts(self) -> tuple[int, ...]:
        """Always empty."""
        return ()


#: The process-wide no-op instruments.  Disabled telemetry hands these out for
#: *every* name, so the off path allocates nothing per call site — the no-op
#: fast-path tests pin the identity.
NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()

#: What a registry lookup can return (the null variants come from disabled
#: telemetry handles, never from a live registry).
AnyCounter = Union[Counter, NullCounter]
AnyGauge = Union[Gauge, NullGauge]
AnyHistogram = Union[Histogram, NullHistogram]

_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A named, get-or-create collection of live instruments.

    Lookups are idempotent: asking for the same name again returns the same
    instrument, and asking for an existing name as a *different* instrument
    kind (or a histogram with different buckets) raises — a silent type
    change would corrupt every consumer of the snapshot.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        bounds = DEFAULT_SECONDS_BUCKETS if buckets is None else tuple(buckets)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                created = Histogram(name, help=help, buckets=bounds)
                self._instruments[name] = created
                return created
            if not isinstance(existing, Histogram):
                raise ConfigurationError(
                    f"metric {name!r} is already registered as "
                    f"{type(existing).__name__.lower()}, not histogram"
                )
            if existing.buckets != tuple(float(bound) for bound in bounds):
                raise ConfigurationError(
                    f"histogram {name!r} is already registered with buckets "
                    f"{existing.buckets}, not {tuple(bounds)}"
                )
            return existing

    def _get_or_create(self, kind: type, name: str, help: str) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is None:
                created: _Instrument = kind(name, help=help)
                self._instruments[name] = created
                return created
            if type(existing) is not kind:
                raise ConfigurationError(
                    f"metric {name!r} is already registered as "
                    f"{type(existing).__name__.lower()}, not {kind.__name__.lower()}"
                )
            return existing

    def merge_delta(self, delta: WorkerStatsDelta) -> None:
        """Fold one worker's chunk delta into the ``worker.*`` instruments.

        Deterministic and order-independent: every field is added, so merging
        the same multiset of deltas in any interleaving (any worker count, any
        chunk completion order) yields the same registry state.  The usual
        registry conflict checks apply — a ``worker.*`` name already
        registered as a different kind, or the histogram registered with other
        buckets, raises instead of silently corrupting the totals — and
        :meth:`Histogram.merge_counts` re-validates the delta's bucket layout.
        """
        self.counter(
            "worker.chunks_completed", help="chunks finished inside worker processes"
        ).inc(delta.chunks)
        self.counter(
            "worker.trials_executed", help="trials executed inside worker processes"
        ).inc(delta.trials)
        self.counter(
            "worker.rounds_simulated", help="simulated rounds summed across worker trials"
        ).inc(delta.rounds)
        self.counter(
            "worker.scalar_trials", help="worker trials run on the scalar per-seed loop"
        ).inc(delta.scalar_trials)
        self.counter(
            "worker.batch_trials", help="worker trials run on the vectorized lockstep kernel"
        ).inc(delta.batch_trials)
        self.histogram(
            "worker.chunk_simulate_seconds",
            help="in-worker wall time per executed chunk",
            buckets=WORKER_SECONDS_BUCKETS,
        ).merge_counts(
            delta.simulate_seconds_buckets,
            delta.simulate_seconds_sum,
            delta.simulate_seconds_count,
        )

    def instruments(self) -> Iterator[_Instrument]:
        """Every registered instrument, in name order (stable exports)."""
        with self._lock:
            snapshot = dict(self._instruments)
        for name in sorted(snapshot):
            yield snapshot[name]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments
