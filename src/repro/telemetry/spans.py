"""Timing spans for the dispatch → execute → reduce → commit pipeline.

A span measures one scoped phase of orchestration with
:func:`time.perf_counter` and, on close, does two things:

* observes the duration in a per-span-name histogram
  (``span.<name>.seconds`` in the metrics registry), so snapshots carry the
  distribution;
* emits a :class:`~repro.telemetry.events.SpanCompleted` event carrying the
  duration, the nesting depth, and the enclosing span's name — which is how
  spans attach to the event stream without a separate trace format.

Spans nest naturally (``with telemetry.span("campaign.cell"):`` around
``with telemetry.span("campaign.commit"):``); the handle keeps the open-span
stack, so a completed event always names its parent.  The stack is an
orchestration-thread construct — spans are opened and closed by the driving
code (runner loops, the CLI), never inside worker processes or executor
callbacks.

The disabled path is the shared :data:`NULL_SPAN` singleton: entering and
exiting it does nothing and allocates nothing, which is what keeps
``with telemetry.span(...)`` affordable to leave in place unconditionally.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.telemetry import Telemetry


class Span:
    """One live timing scope (use via ``with telemetry.span(name, **attrs):``)."""

    __slots__ = ("name", "attributes", "_telemetry", "_start", "_depth", "_parent", "seconds")

    def __init__(self, telemetry: "Telemetry", name: str, attributes: dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self._telemetry = telemetry
        self._start: Optional[float] = None
        self._depth = 0
        self._parent: Optional[str] = None
        #: The measured duration, populated on exit (None while open).
        self.seconds: Optional[float] = None

    def annotate(self, **attributes: Any) -> None:
        """Attach extra attributes to the span (they ride the completion event)."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self._depth, self._parent = self._telemetry._push_span(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None, "span exited without being entered"
        self.seconds = time.perf_counter() - self._start
        self._telemetry._pop_span(self)


class NullSpan:
    """The shared do-nothing span disabled telemetry hands out."""

    __slots__ = ()
    name = ""
    seconds: Optional[float] = None

    def annotate(self, **attributes: Any) -> None:
        """Discard the attributes."""

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: The process-wide no-op span (disabled handles return this for every name).
NULL_SPAN = NullSpan()
