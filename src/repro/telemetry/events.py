"""Typed structured events and the buffered JSONL sink.

Every observable milestone of the execution stack is a frozen dataclass with
a pinned ``kind`` string: run/campaign/search lifecycle, per-chunk pool
dispatch, per-cell campaign commits, worker-crash recovery, the two fallback
paths (serial and scalar-instead-of-batch), optimizer generations, and
completed timing spans.  Events carry **monotonic** timestamps
(:func:`time.monotonic`, seconds since an arbitrary process-local origin):
deltas between two events of one process are meaningful; absolute values are
not, and wall-clock jumps can never reorder a stream.

The sink is line-delimited JSON (one event per line), buffered so that a
campaign committing thousands of cells does not pay a write syscall per
event.  Emission order is the stream order: each record gets a process-local
``seq`` number at emit time, so a consumer can detect truncation and merge
streams deterministically.

Events never feed back into execution: a simulation with a sink attached
produces byte-identical stores, checkpoints, and digests (pinned by the
golden-equivalence suite) — the stream is a one-way export.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, ClassVar, IO, Mapping, Optional, Union

from repro.exceptions import ConfigurationError


def _monotonic() -> float:
    return time.monotonic()


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: a ``kind`` discriminator plus a monotonic timestamp.

    Subclasses pin ``kind`` as a ClassVar; the timestamp is captured at
    construction (not at emit), so a span's completion event carries the
    moment the span closed even if the sink flushes much later.
    """

    kind: ClassVar[str] = "event"
    monotonic_s: float = field(default_factory=_monotonic, kw_only=True)

    def to_dict(self) -> dict[str, Any]:
        """The JSON-serializable record (``kind`` first, fields after)."""
        payload: dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


# -- run lifecycle (the `trials` path) ----------------------------------------


@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A multi-seed trial batch began."""

    kind: ClassVar[str] = "run-started"
    protocol: str
    workload: str
    trials: int
    workers: int
    batch: bool


@dataclass(frozen=True)
class RunCompleted(TelemetryEvent):
    """A multi-seed trial batch finished."""

    kind: ClassVar[str] = "run-completed"
    protocol: str
    workload: str
    trials: int
    seconds: float


# -- campaign lifecycle -------------------------------------------------------


@dataclass(frozen=True)
class CampaignStarted(TelemetryEvent):
    """A campaign run() invocation began executing its pending cells."""

    kind: ClassVar[str] = "campaign-started"
    campaign: str
    total_cells: int
    pending_cells: int
    reused_cells: int
    workers: int
    batch: bool


@dataclass(frozen=True)
class CellCommitted(TelemetryEvent):
    """One campaign cell's trials were committed atomically to the store."""

    kind: ClassVar[str] = "cell-committed"
    campaign: str
    cell_key: str
    trials: int
    seconds: float


@dataclass(frozen=True)
class CampaignCompleted(TelemetryEvent):
    """A campaign run() invocation finished (complete or capped)."""

    kind: ClassVar[str] = "campaign-completed"
    campaign: str
    executed: int
    reused: int
    remaining: int
    seconds: float
    cells_per_second: float


# -- search lifecycle ---------------------------------------------------------


@dataclass(frozen=True)
class SearchStarted(TelemetryEvent):
    """A strategy search run() invocation began."""

    kind: ClassVar[str] = "search-started"
    search: str
    optimizer: str
    population: int
    generations: int
    workers: int
    batch: bool


@dataclass(frozen=True)
class GenerationCompleted(TelemetryEvent):
    """One optimizer generation (warm start included) was fully processed."""

    kind: ClassVar[str] = "generation-completed"
    search: str
    generation: int
    executed: int
    reused: int
    best_score: Optional[float]
    seconds: float


@dataclass(frozen=True)
class BestCandidateImproved(TelemetryEvent):
    """A search candidate beat the best score seen so far.

    Carries the genome's human-readable description, so a live monitor (and
    anyone tailing the stream) can show *which* strategy currently leads, not
    just its score.
    """

    kind: ClassVar[str] = "best-candidate-improved"
    search: str
    generation: int
    index: int
    score: float
    strategy: str
    key: str


@dataclass(frozen=True)
class SearchCompleted(TelemetryEvent):
    """A strategy search run() invocation finished (complete or capped)."""

    kind: ClassVar[str] = "search-completed"
    search: str
    executed: int
    reused: int
    evaluations_total: int
    best_score: Optional[float]
    seconds: float
    evaluations_per_second: float


# -- execution-pool events ----------------------------------------------------


@dataclass(frozen=True)
class ChunkDispatched(TelemetryEvent):
    """One chunk of seeds (or configs) was submitted to the worker pool."""

    kind: ClassVar[str] = "chunk-dispatched"
    chunk_index: int
    size: int
    reduce: bool
    batch: bool
    inflight: int


@dataclass(frozen=True)
class WorkerCrashRecovered(TelemetryEvent):
    """A worker process died; the pool discarded its executor and will restart.

    ``pid``/``uptime_s`` identify which worker died and how long it had been
    alive (as observed by the pool), so repeated crashes of one short-lived
    worker read differently from a crash storm across the pool.  Both are
    ``None`` when the executor reaped its children before the pool could
    inspect them — detection is best-effort by nature.
    """

    kind: ClassVar[str] = "worker-crash-recovered"
    detail: str
    restarts: int
    pid: Optional[int] = None
    uptime_s: Optional[float] = None


@dataclass(frozen=True)
class ChunkRetried(TelemetryEvent):
    """Crashed chunks were re-dispatched on a fresh executor.

    One event per retry round: ``chunks`` counts how many chunks went back
    out together (a crash kills the whole executor, so every in-flight chunk
    fails and retries as a group), and ``attempt`` is the highest re-dispatch
    count among them (1 = first retry).
    """

    kind: ClassVar[str] = "chunk-retried"
    detail: str
    chunks: int
    attempt: int


@dataclass(frozen=True)
class FaultInjected(TelemetryEvent):
    """A fault-injection epoch was observed in one trial.

    Emitted per injection epoch when full per-round data is available
    (``round_index`` set, ``recovery_rounds`` for that epoch), or once per
    fault-injected trial in reduced paths (``round_index`` ``None``,
    ``recovery_rounds`` the trial's worst epoch).
    """

    kind: ClassVar[str] = "fault-injected"
    seed: int
    recovery_rounds: Optional[int]
    round_index: Optional[int] = None


@dataclass(frozen=True)
class SerialFallback(TelemetryEvent):
    """Unpicklable work degraded to in-process serial execution."""

    kind: ClassVar[str] = "serial-fallback"
    detail: Optional[str]


@dataclass(frozen=True)
class BatchFallback(TelemetryEvent):
    """A batch=True dispatch will run on the scalar loop (not batchable)."""

    kind: ClassVar[str] = "batch-fallback"
    reason: str


# -- spans --------------------------------------------------------------------


@dataclass(frozen=True)
class SpanCompleted(TelemetryEvent):
    """A timing span closed (see :mod:`repro.telemetry.spans`)."""

    kind: ClassVar[str] = "span-completed"
    name: str
    seconds: float
    depth: int
    parent: Optional[str]
    attributes: Mapping[str, Any]


#: Every event type, keyed by its pinned kind string (the on-disk schema —
#: renaming a kind is a breaking change for stream consumers).
EVENT_TYPES: dict[str, type[TelemetryEvent]] = {
    event_type.kind: event_type
    for event_type in (
        RunStarted,
        RunCompleted,
        CampaignStarted,
        CellCommitted,
        CampaignCompleted,
        SearchStarted,
        GenerationCompleted,
        BestCandidateImproved,
        SearchCompleted,
        ChunkDispatched,
        ChunkRetried,
        FaultInjected,
        WorkerCrashRecovered,
        SerialFallback,
        BatchFallback,
        SpanCompleted,
    )
}


class JsonlSink:
    """A buffered line-delimited JSON event sink.

    Records are serialized eagerly (so an event mutated later — impossible
    for the frozen types, but cheap insurance — cannot rewrite history) and
    buffered; the buffer is written out every ``buffer_size`` events, on
    :meth:`flush`, and on :meth:`close`.  Each record gains a monotonically
    increasing ``seq`` field at emit time.

    With ``max_bytes`` set, the stream rotates: once a flush would push the
    current file past the limit, it is renamed to ``<path>.1`` (replacing any
    previous rotation) and a fresh file starts — disk usage stays bounded at
    roughly twice ``max_bytes`` however long the run lasts.  ``seq`` keeps
    counting across rotations, so the surviving window
    (:func:`read_jsonl_events` stitches ``<path>.1`` + ``<path>``) is still
    provably gapless; only events rotated out more than once are gone.

    Emission and flushing take a small lock: a live monitor's HTTP thread may
    flush the sink (to serve ``/events``) while the run thread is emitting.
    """

    def __init__(
        self,
        path: Union[str, Path],
        buffer_size: int = 256,
        max_bytes: Optional[int] = None,
    ) -> None:
        if buffer_size < 1:
            raise ConfigurationError(f"sink buffer_size must be positive, got {buffer_size}")
        if max_bytes is not None and max_bytes < 1:
            raise ConfigurationError(f"sink max_bytes must be positive, got {max_bytes}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self._path.open("w", encoding="utf-8")
        self._buffer: list[str] = []
        self._buffer_size = buffer_size
        self._max_bytes = max_bytes
        self._written = 0
        self._rotations = 0
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        """Where the stream is written."""
        return self._path

    @property
    def rotated_path(self) -> Path:
        """Where the previous rotation lives (may not exist yet)."""
        return self._path.with_name(self._path.name + ".1")

    @property
    def rotations(self) -> int:
        """How many times the stream has rotated."""
        return self._rotations

    @property
    def emitted(self) -> int:
        """How many events have been emitted (buffered or written)."""
        return self._seq

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran."""
        return self._handle is None

    def emit(self, event: TelemetryEvent) -> None:
        """Append one event to the stream (buffered)."""
        record = event.to_dict()
        with self._lock:
            if self._handle is None:
                raise ConfigurationError(f"event sink {self._path} is closed")
            record["seq"] = self._seq
            self._seq += 1
            self._buffer.append(json.dumps(record, sort_keys=True, default=str))
            if len(self._buffer) >= self._buffer_size:
                self._flush_locked()

    @property
    def buffered(self) -> int:
        """Events currently waiting in the buffer."""
        return len(self._buffer)

    def flush(self) -> None:
        """Write the buffer out (no-op when empty or closed)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self._handle is None or not self._buffer:
            return
        # json.dumps defaults to ASCII-only output, so character length is
        # byte length and the rotation check needs no extra encode pass.
        payload = "\n".join(self._buffer) + "\n"
        if (
            self._max_bytes is not None
            and self._written > 0
            and self._written + len(payload) > self._max_bytes
        ):
            self._rotate_locked()
        self._handle.write(payload)
        self._handle.flush()
        self._written += len(payload)
        self._buffer.clear()

    def _rotate_locked(self) -> None:
        assert self._handle is not None
        self._handle.close()
        os.replace(self._path, self.rotated_path)
        self._handle = self._path.open("w", encoding="utf-8")
        self._written = 0
        self._rotations += 1

    def close(self) -> None:
        """Flush and close the stream (idempotent)."""
        with self._lock:
            if self._handle is None:
                return
            self._flush_locked()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl_events(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Load a JSONL event stream back as dict records, in ``seq`` order.

    A convenience for tests and post-hoc analysis.  When the sink rotated
    (a ``<path>.1`` sibling exists), the rotated file is stitched in front of
    the current one and the combined window may start past zero; either way
    the sequence numbers must be gapless and consecutive — an unrotated
    stream must still be exactly ``0 .. n-1``.
    """
    main = Path(path)
    rotated = main.with_name(main.name + ".1")
    sources = ([rotated] if rotated.exists() else []) + [main]
    records: list[dict[str, Any]] = []
    for source in sources:
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
    sequence = [record.get("seq") for record in records]
    start = 0
    if rotated.exists() and sequence and isinstance(sequence[0], int):
        start = sequence[0]
    if sequence != list(range(start, start + len(records))):
        raise ConfigurationError(
            f"event stream {path} is not a gapless single-process stream "
            f"(seq numbers {sequence[:10]}...)"
        )
    return records
