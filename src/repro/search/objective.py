"""Search objectives: how a candidate strategy is scored.

A :class:`SearchObjective` pins down everything about an evaluation *except*
the adversary: the protocol under test, the named workload providing the
activation pattern, the model parameters, the seed list, and the round cap.
Evaluating a genome decodes it, overrides the workload's adversary, runs the
configuration across all seeds through
:func:`~repro.engine.runner.run_trials` (optionally on a worker pool —
parallel batches are bit-identical to serial ones), and reduces the per-trial
outcomes to one scalar score that the optimizers *maximize*.

Scores are computed from the same scalars the campaign store persists
(:class:`~repro.campaigns.store.TrialRecord`), so a score recomputed from a
checkpoint is bit-identical to the score of the live evaluation — the
property that makes search resume exact.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.campaigns.spec import resolve_workload
from repro.campaigns.store import TrialRecord
from repro.engine.observers import TraceLevel
from repro.engine.plan import ExecutionPlan
from repro.engine.pool import ExecutionPool
from repro.engine.runner import interpolated_percentile, run_reduced_trials, run_trials
from repro.engine.simulator import SimulationConfig
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.params import ModelParameters
from repro.protocols.registry import PROTOCOL_FACTORIES, protocol_factory
from repro.search.space import FaultGenome, StrategyGenome

#: Version of the objective-description layout (part of every candidate key).
OBJECTIVE_SCHEMA_VERSION = 1

#: The scores an objective can maximize.  All treat an execution that never
#: synchronized as maximally disrupted (its latency counts as ``max_rounds``).
OBJECTIVE_METRICS = (
    "median_latency",   # median effective synchronization latency
    "mean_latency",     # mean effective synchronization latency
    "failure_rate",     # fraction of seeds that never synchronized
    "mean_rounds",      # mean number of simulated rounds
)


@dataclass(frozen=True)
class Evaluation:
    """The outcome of evaluating one genome against an objective.

    Attributes
    ----------
    genome:
        The evaluated strategy.
    records:
        One persisted-form :class:`~repro.campaigns.store.TrialRecord` per
        seed, in seed order.
    score:
        The objective's scalar (recomputable from ``records``).
    """

    genome: StrategyGenome
    records: tuple[TrialRecord, ...]
    score: float


@dataclass(frozen=True)
class SearchObjective:
    """A pinned evaluation configuration for adversary search.

    Attributes
    ----------
    protocol:
        Registered protocol name (see :data:`~repro.protocols.registry.PROTOCOL_FACTORIES`).
    workload:
        Registered workload name; only its *activation* is used — the
        adversary slot is overridden by the candidate strategy.
    frequencies, budget, participants:
        The model parameters ``(F, t, N)``.
    node_count:
        Devices the workload activates.
    seeds:
        Explicit seed tuple (an ``int`` count ``k`` normalizes to ``0 .. k−1``).
    max_rounds:
        Per-execution round cap (also the effective latency charged to an
        execution that never synchronized).
    metric:
        One of :data:`OBJECTIVE_METRICS`.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        evaluation (the environment the candidates are scored in).  Part of
        the evaluation identity when set; a :class:`FaultGenome` candidate's
        own plan takes precedence over it.
    """

    protocol: str = "trapdoor"
    workload: str = "quiet_start"
    frequencies: int = 8
    budget: int = 3
    participants: int = 64
    node_count: int = 8
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4)
    max_rounds: int = 20_000
    metric: str = "median_latency"
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        seeds = self.seeds
        object.__setattr__(
            self, "seeds", tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
        )
        if not self.seeds:
            raise ConfigurationError("a search objective needs at least one seed")
        if self.protocol not in PROTOCOL_FACTORIES:
            known = ", ".join(sorted(PROTOCOL_FACTORIES))
            raise ConfigurationError(f"unknown protocol {self.protocol!r}; known: {known}")
        if self.metric not in OBJECTIVE_METRICS:
            raise ConfigurationError(
                f"unknown objective metric {self.metric!r}; known: {', '.join(OBJECTIVE_METRICS)}"
            )
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be positive, got {self.max_rounds}")
        # Validates F/t/N eagerly, so a bad objective fails at construction.
        self.params

    @property
    def params(self) -> ModelParameters:
        """The ``(F, t, N)`` triple as validated model parameters."""
        return ModelParameters(
            frequencies=self.frequencies,
            disruption_budget=self.budget,
            participant_bound=self.participants,
        )

    # -- identity ---------------------------------------------------------

    def describe_dict(self) -> dict[str, Any]:
        """The full canonical description (spec persistence / round-tripping)."""
        return {**self.evaluation_dict(), "metric": self.metric}

    def evaluation_dict(self) -> dict[str, Any]:
        """The part of the description that determines *simulated outcomes*.

        Deliberately excludes ``metric``: it only changes how stored trial
        records are reduced to a score, never the records themselves.
        Candidate store keys hash this dict, so searches that differ only in
        their metric share every evaluation.  The ``faults`` key appears only
        when a plan is set, keeping every fault-free objective's identity —
        and its warm-started checkpoints — unchanged.
        """
        data: dict[str, Any] = {
            "schema": OBJECTIVE_SCHEMA_VERSION,
            "kind": "adversary-search-objective",
            "protocol": self.protocol,
            "workload": self.workload,
            "frequencies": self.frequencies,
            "budget": self.budget,
            "participants": self.participants,
            "node_count": self.node_count,
            "seeds": list(self.seeds),
            "max_rounds": self.max_rounds,
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    def describe(self) -> str:
        """Short label for banners and tables."""
        label = (
            f"{self.protocol} × {self.workload} × F={self.frequencies}, t={self.budget}, "
            f"N={self.participants}, n={self.node_count}, {len(self.seeds)} seeds, "
            f"maximize {self.metric}"
        )
        if self.faults is not None:
            label += f", {self.faults.describe()}"
        return label

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchObjective":
        """Rebuild an objective from :meth:`describe_dict` output."""
        schema = data.get("schema", OBJECTIVE_SCHEMA_VERSION)
        if schema != OBJECTIVE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"search objective schema {schema} is not supported "
                f"(this build writes schema {OBJECTIVE_SCHEMA_VERSION})"
            )
        faults = data.get("faults")
        return cls(
            protocol=data["protocol"],
            workload=data["workload"],
            frequencies=data["frequencies"],
            budget=data["budget"],
            participants=data["participants"],
            node_count=data["node_count"],
            seeds=tuple(data["seeds"]),
            max_rounds=data["max_rounds"],
            metric=data["metric"],
            faults=FaultPlan.from_dict(faults) if faults is not None else None,
        )

    # -- evaluation -------------------------------------------------------

    def config_for(self, genome: StrategyGenome) -> SimulationConfig:
        """The runnable configuration for one candidate strategy.

        A :class:`~repro.search.space.FaultGenome` carries its strategy in
        the fault plan rather than the adversary slot (its ``decode`` yields
        the quiet adversary), so its plan replaces the objective's own
        ``faults`` environment for that evaluation.
        """
        workload = resolve_workload(self.workload, self.node_count)
        faults = genome.plan if isinstance(genome, FaultGenome) else self.faults
        return SimulationConfig(
            params=self.params,
            protocol_factory=protocol_factory(self.protocol),
            activation=workload.activation,
            adversary=genome.decode(self.params),
            max_rounds=self.max_rounds,
            faults=faults,
        )

    def evaluate(
        self,
        genome: StrategyGenome,
        workers: int | None = None,
        pool: ExecutionPool | None = None,
        batch: bool = False,
        *,
        plan: ExecutionPlan | None = None,
    ) -> Evaluation:
        """Run a genome across every seed and score the outcome.

        Neither ``plan`` (how the seed batch executes — worker count, pool
        chunking, the vectorized lockstep kernel with scalar fallback) nor
        ``pool`` (a persistent :class:`~repro.engine.pool.ExecutionPool` the
        caller reuses across candidates — what
        :class:`~repro.search.runner.StrategySearch` holds for a whole
        search) ever changes results, so neither is part of any candidate
        identity.  ``workers``/``batch`` are the pre-plan spellings, kept as
        convenience aliases here (the deprecation lives on the public entry
        points one layer up).  On the pooled path workers reduce each trial
        to the persisted scalars in-process, so a search over thousands of
        candidates ships back only
        :class:`~repro.campaigns.store.TrialRecord`-shaped rows.
        """
        if plan is None:
            plan = ExecutionPlan(workers=workers if workers is not None else 1, batch=batch)
        if pool is not None or plan.batch:
            reduced = run_reduced_trials(
                self.config_for(genome),
                seeds=self.seeds,
                trace_level=TraceLevel.NONE,
                pool=pool,
                plan=plan,
            )
            records = tuple(TrialRecord.from_reduced(trial) for trial in reduced)
            return Evaluation(genome=genome, records=records, score=self.score_records(records))
        summary = run_trials(
            self.config_for(genome),
            seeds=self.seeds,
            trace_level=TraceLevel.NONE,
            plan=plan,
        )
        records = tuple(
            TrialRecord.from_result(seed, result)
            for seed, result in zip(summary.seeds, summary.results)
        )
        return Evaluation(genome=genome, records=records, score=self.score_records(records))

    def effective_latencies(self, records: Sequence[TrialRecord]) -> list[int]:
        """Per-trial worst-case latency, charging ``max_rounds`` to failures.

        The one place the "an execution that never synchronized counts as
        maximally disrupted" convention lives — scoring and the export/status
        read-backs both go through it.
        """
        return [
            record.max_sync_latency
            if record.synchronized and record.max_sync_latency is not None
            else self.max_rounds
            for record in records
        ]

    def score_records(self, records: Sequence[TrialRecord]) -> float:
        """The objective scalar, computed from persisted trial scalars only."""
        if not records:
            raise ConfigurationError("cannot score an empty record batch")
        effective = self.effective_latencies(records)
        if self.metric == "median_latency":
            value = interpolated_percentile(effective, 0.5)
            assert value is not None  # records is non-empty
            return value
        if self.metric == "mean_latency":
            return statistics.fmean(effective)
        if self.metric == "failure_rate":
            return sum(1 for record in records if not record.synchronized) / len(records)
        return statistics.fmean(record.rounds_simulated for record in records)
