"""The resumable search driver, plus status and export read-backs.

:class:`StrategySearch` runs the ask–evaluate–tell loop: each generation's
candidates are looked up in the checkpoint store first (content-hashed
dedup), only the missing ones are evaluated live (multi-seed, optionally on a
worker pool), and every fresh evaluation is committed atomically before the
next one starts.  Kill the process anywhere and re-run the same spec on the
same store: cached generations replay instantly, proposals re-derive from the
master seed, and the resumed search is bit-identical to an uninterrupted one
— same candidates, same scores, same best strategy.

:func:`search_status` and :func:`export_search` reconstruct a search's state
purely from the store (no live evaluation), which is what the CLI's
``search status`` / ``search export`` subcommands print.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.campaigns.store import ResultStore
from repro.engine.plan import ExecutionPlan, resolve_plan
from repro.engine.pool import ExecutionPool
from repro.exceptions import ExperimentError
from repro.search.checkpoint import SearchCheckpoint, SearchSpec
from repro.search.optimizers import CandidateOutcome, make_optimizer
from repro.search.space import StrategySpace
from repro.telemetry import Telemetry, as_telemetry
from repro.telemetry.events import (
    BestCandidateImproved,
    GenerationCompleted,
    SearchCompleted,
    SearchStarted,
)

logger = logging.getLogger("repro.search.runner")


@dataclass(frozen=True)
class SearchResult:
    """The outcome of one :meth:`StrategySearch.run` invocation.

    Attributes
    ----------
    spec:
        The search spec that ran.
    best:
        The best-scoring candidate seen (ties keep the earliest), or None
        when the run stopped before any evaluation.
    evaluations_total:
        Distinct candidates in the store after this invocation.
    executed:
        Candidates evaluated live by this invocation.
    reused:
        Candidate lookups served from the checkpoint store.
    generations_completed:
        Fully processed generations (including the warm start).
    complete:
        True once every generation of the spec has been processed.
    """

    spec: SearchSpec
    best: Optional[CandidateOutcome]
    evaluations_total: int
    executed: int
    reused: int
    generations_completed: int
    complete: bool

    def describe(self) -> str:
        """One-line progress summary for logs and the CLI."""
        state = "complete" if self.complete else "stopped (resume by re-running)"
        best = f"best score {self.best.score:g}" if self.best is not None else "no best yet"
        return (
            f"{self.generations_completed} generation(s), {self.evaluations_total} "
            f"evaluation(s) stored ({self.executed} executed now, {self.reused} reused); "
            f"{best}; {state}"
        )


class StrategySearch:
    """Runs a search spec against a checkpoint store.

    Parameters
    ----------
    spec:
        The declarative search description.
    store:
        The persistent result store evaluations checkpoint into.
    workers:
        Deprecated — pass ``plan=ExecutionPlan(workers=...)``.
    pool:
        Optional externally owned pool to share with other subsystems;
        overrides the plan's worker count for dispatch.  The search never
        shuts down a pool it was handed.
    pool_chunk:
        Deprecated — pass ``plan=ExecutionPlan(pool_chunk=...)``.
    batch:
        Deprecated — pass ``plan=ExecutionPlan(batch=True)``.
    plan:
        The :class:`~repro.engine.plan.ExecutionPlan` for every candidate's
        seed batch.  A parallel plan makes the search hold one persistent
        :class:`~repro.engine.pool.ExecutionPool` across *all* candidates
        and generations (instead of paying pool spin-up per candidate) with
        the plan's chunk size; ``plan.batch`` evaluates candidates on the
        vectorized lockstep kernel where their configurations are batchable
        (scalar fallback otherwise).  No plan ever changes scores or stored
        records.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  The search
        emits lifecycle events (search/generation start and completion),
        counts executed vs. reused evaluations, tracks the best score as a
        gauge, and times each live evaluation — all without affecting
        checkpoints or scores.

    Use as a context manager (or call :meth:`close`) to reclaim the search's
    own workers deterministically.
    """

    def __init__(
        self,
        spec: SearchSpec,
        store: ResultStore,
        workers: Optional[int] = None,
        pool: Optional["ExecutionPool"] = None,
        pool_chunk: Optional[int] = None,
        batch: bool = False,
        telemetry: Optional[Telemetry] = None,
        *,
        plan: Optional[ExecutionPlan] = None,
    ) -> None:
        self._spec = spec
        self._checkpoint = SearchCheckpoint(store, spec)
        self._plan = resolve_plan(
            plan, api="StrategySearch", workers=workers, pool_chunk=pool_chunk, batch=batch
        )
        self._batch = self._plan.batch
        self._owns_pool = pool is None and self._plan.parallel
        self._telemetry = as_telemetry(telemetry)
        self._pool = self._plan.pool(telemetry=self._telemetry) if self._owns_pool else pool
        self._metric_executed = self._telemetry.counter(
            "search.evaluations_executed", help="candidates evaluated live"
        )
        self._metric_reused = self._telemetry.counter(
            "search.evaluations_reused", help="candidate lookups served from the store"
        )
        self._metric_generations = self._telemetry.counter(
            "search.generations_completed", help="fully processed generations"
        )
        self._metric_best = self._telemetry.gauge(
            "search.best_score", help="best candidate score seen so far"
        )
        self._metric_rate = self._telemetry.gauge(
            "search.evaluations_per_second", help="live evaluation throughput of the last run"
        )

    @property
    def spec(self) -> SearchSpec:
        """The spec this search completes."""
        return self._spec

    @property
    def plan(self) -> ExecutionPlan:
        """The resolved execution plan this search follows."""
        return self._plan

    @property
    def pool(self) -> Optional["ExecutionPool"]:
        """The execution pool live evaluations dispatch on (None = serial)."""
        return self._pool

    def close(self) -> None:
        """Shut down the search's own pool (a shared ``pool=`` is left alone)."""
        if self._owns_pool and self._pool is not None:
            self._pool.shutdown()

    def __enter__(self) -> "StrategySearch":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(
        self,
        max_evaluations: Optional[int] = None,
        on_candidate: Optional[Callable[[CandidateOutcome], None]] = None,
    ) -> SearchResult:
        """Run (or resume) the search.

        Parameters
        ----------
        max_evaluations:
            Optional cap on *live* evaluations this invocation (cache hits are
            free) — the search budget can be spent incrementally across
            invocations, and an interrupt between two candidates is
            indistinguishable from hitting the cap.
        on_candidate:
            Optional callback invoked after each candidate is scored (used by
            the CLI for live status lines).
        """
        spec = self._spec
        objective = spec.objective
        self._checkpoint.register()
        space = StrategySpace(params=objective.params)
        optimizer = make_optimizer(spec.optimizer, spec.population)
        optimizer.bind(space, spec.master_seed, warm_start=spec.warm_start)

        telemetry = self._telemetry
        started = time.perf_counter()
        if telemetry.enabled:
            logger.info(
                "search %s: optimizer=%s population=%d generations=%d",
                spec.name,
                spec.optimizer,
                spec.population,
                spec.generations,
            )
            telemetry.emit(
                SearchStarted(
                    search=spec.name,
                    optimizer=spec.optimizer,
                    population=spec.population,
                    generations=spec.generations,
                    workers=self._pool.workers if self._pool is not None else 1,
                    batch=self._batch,
                )
            )

        best: Optional[CandidateOutcome] = None
        executed = 0
        reused = 0
        generations_completed = 0
        stopped = False
        for generation in range(spec.generations + 1):
            generation_started = time.perf_counter()
            generation_executed = 0
            outcomes: list[CandidateOutcome] = []
            for index, genome in enumerate(optimizer.ask(generation)):
                key = self._checkpoint.key_for(genome)
                records = self._checkpoint.stored_records(key)
                if records is None:
                    if max_evaluations is not None and executed >= max_evaluations:
                        stopped = True
                        break
                    with telemetry.span(
                        "search.evaluate", generation=generation, index=index
                    ):
                        evaluation = objective.evaluate(
                            genome, pool=self._pool, plan=self._plan.serial()
                        )
                    records = evaluation.records
                    self._checkpoint.record(genome, generation, key, records)
                    executed += 1
                    generation_executed += 1
                    self._metric_executed.inc()
                    was_reused = False
                else:
                    # Sharing a store across searches can serve a cache hit the
                    # campaign attribution does not cover yet — claim it so
                    # status/export read-backs see every candidate.
                    self._checkpoint.claim(key)
                    reused += 1
                    self._metric_reused.inc()
                    was_reused = True
                outcome = CandidateOutcome(
                    genome=genome,
                    key=key,
                    score=objective.score_records(records),
                    generation=generation,
                    index=index,
                    reused=was_reused,
                )
                outcomes.append(outcome)
                if best is None or outcome.score > best.score:
                    best = outcome
                    self._metric_best.set(outcome.score)
                    if telemetry.enabled:
                        # Lets a live monitor report *which* strategy leads,
                        # not just the best-score gauge's value.
                        telemetry.emit(
                            BestCandidateImproved(
                                search=spec.name,
                                generation=generation,
                                index=index,
                                score=outcome.score,
                                strategy=genome.describe(),
                                key=key,
                            )
                        )
                if on_candidate is not None:
                    on_candidate(outcome)
            if stopped:
                break
            optimizer.tell(generation, outcomes)
            generations_completed = generation + 1
            self._metric_generations.inc()
            if telemetry.enabled:
                telemetry.emit(
                    GenerationCompleted(
                        search=spec.name,
                        generation=generation,
                        executed=generation_executed,
                        reused=len(outcomes) - generation_executed,
                        best_score=best.score if best is not None else None,
                        seconds=time.perf_counter() - generation_started,
                    )
                )

        seconds = time.perf_counter() - started
        rate = executed / seconds if seconds > 0 else 0.0
        self._metric_rate.set(rate)
        evaluations_total = self._checkpoint.evaluation_count()
        if telemetry.enabled:
            telemetry.emit(
                SearchCompleted(
                    search=spec.name,
                    executed=executed,
                    reused=reused,
                    evaluations_total=evaluations_total,
                    best_score=best.score if best is not None else None,
                    seconds=seconds,
                    evaluations_per_second=rate,
                )
            )

        return SearchResult(
            spec=spec,
            best=best,
            evaluations_total=evaluations_total,
            executed=executed,
            reused=reused,
            generations_completed=generations_completed,
            complete=not stopped,
        )


def _scored_evaluations(checkpoint: SearchCheckpoint) -> list[dict[str, Any]]:
    """All stored evaluations as rows, in evaluation order, with scores."""
    objective = checkpoint.spec.objective
    rows = []
    for key, genome, generation, records in checkpoint.iter_evaluations():
        effective = objective.effective_latencies(records)
        rows.append(
            {
                "key": key,
                "kind": genome.kind,
                "strategy": genome.describe(),
                "genome": genome.to_dict(),
                "generation": generation,
                "score": objective.score_records(records),
                "trials": len(records),
                "failures": sum(1 for record in records if not record.synchronized),
                "max_effective_latency": max(effective),
            }
        )
    return rows


def search_status(store: ResultStore, name: str) -> dict[str, Any]:
    """A machine-readable status snapshot of one stored search."""
    checkpoint = SearchCheckpoint.load(store, name)
    spec = checkpoint.spec
    rows = _scored_evaluations(checkpoint)
    best = max(rows, key=lambda row: row["score"], default=None) if rows else None
    return {
        "search": name,
        "objective": spec.objective.describe(),
        "metric": spec.objective.metric,
        "optimizer": spec.optimizer,
        "population": spec.population,
        "generations": spec.generations,
        "master_seed": spec.master_seed,
        "evaluations": len(rows),
        "best_score": best["score"] if best else None,
        "best_strategy": best["strategy"] if best else None,
        "best_key": best["key"] if best else None,
    }


def export_search(
    store: ResultStore, name: str, path: str | Path, top: int = 10
) -> Path:
    """Write a search's spec, best strategy, and top-``top`` table as JSON.

    The best strategy's full genome description is included, so an exported
    strategy can be rebuilt with
    :func:`~repro.search.space.genome_from_dict` and replayed anywhere.
    """
    checkpoint = SearchCheckpoint.load(store, name)
    rows = _scored_evaluations(checkpoint)
    if not rows:
        raise ExperimentError(f"search {name!r} in store {store.path!r} has no evaluations yet")
    # Stable ranking: score descending, earliest evaluation wins ties.
    ranked = sorted(enumerate(rows), key=lambda pair: (-pair[1]["score"], pair[0]))
    ordered = [row for _index, row in ranked]
    document = {
        "search": name,
        "spec": checkpoint.spec.to_dict(),
        "evaluations": len(rows),
        "best": ordered[0],
        "top": ordered[: max(1, top)],
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
    return target
