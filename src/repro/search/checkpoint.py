"""Search persistence: spec pinning and candidate checkpoints in a ResultStore.

A search persists into the same SQLite
:class:`~repro.campaigns.store.ResultStore` campaigns use:

* the **search spec** (objective + optimizer + budgets + master seed) is
  registered as the campaign's ``spec_json``.  Re-opening the same search
  name with a different spec raises — one name always means one search, so a
  resume can never silently continue a *different* search;
* every **evaluated candidate** is one store cell whose key is the content
  hash of ``(objective description, genome description)`` and whose trial
  rows are the per-seed outcomes.  Re-proposed candidates (same genome, any
  generation, any process) dedup to a single evaluation, and a killed search
  resumes exactly where it stopped.

Scores are *not* persisted: they are recomputed from the stored trial
scalars through :meth:`~repro.search.objective.SearchObjective.score_records`,
which guarantees a resumed run sees bit-identical scores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.campaigns.spec import cell_key
from repro.campaigns.store import ResultStore, TrialRecord
from repro.exceptions import ConfigurationError
from repro.search.objective import SearchObjective
from repro.search.optimizers import OPTIMIZERS
from repro.search.space import StrategyGenome, genome_from_dict

#: Version of the persisted search-spec layout.
SEARCH_SCHEMA_VERSION = 1

#: The ``kind`` tag distinguishing search specs from campaign grids inside a
#: shared store (``campaign status`` uses it to skip grid-diffing them).
SEARCH_SPEC_KIND = "adversary-search"


def is_search_spec_json(spec_json: Optional[str]) -> bool:
    """True when a stored campaign ``spec_json`` describes an adversary search."""
    if not spec_json:
        return False
    try:
        data = json.loads(spec_json)
    except ValueError:
        return False
    return isinstance(data, dict) and data.get("kind") == SEARCH_SPEC_KIND


@dataclass(frozen=True)
class SearchSpec:
    """Everything that determines a search run, declaratively.

    Attributes
    ----------
    name:
        The search's name in the store (the campaign cells group under it).
    objective:
        The pinned evaluation configuration.
    optimizer:
        A registered optimizer name (see
        :data:`~repro.search.optimizers.OPTIMIZERS`).
    population:
        Candidates per optimizer generation.
    generations:
        Optimizer generations *after* the warm start (the search evaluates
        generations ``0 .. generations`` inclusive, with generation 0 being
        the warm start when enabled).
    master_seed:
        The single seed all proposal randomness derives from.
    warm_start:
        Whether generation 0 enumerates the registered hand-written jammers.
    """

    name: str
    objective: SearchObjective
    optimizer: str = "hill-climb"
    population: int = 8
    generations: int = 4
    master_seed: int = 0
    warm_start: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a search needs a non-empty name")
        if self.optimizer not in OPTIMIZERS:
            known = ", ".join(sorted(OPTIMIZERS))
            raise ConfigurationError(f"unknown optimizer {self.optimizer!r}; known: {known}")
        if self.population < 1:
            raise ConfigurationError(f"population must be positive, got {self.population}")
        if self.generations < 0:
            raise ConfigurationError(f"generations must be non-negative, got {self.generations}")

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable description of the search."""
        return {
            "schema": SEARCH_SCHEMA_VERSION,
            "kind": SEARCH_SPEC_KIND,
            "name": self.name,
            "objective": self.objective.describe_dict(),
            "optimizer": self.optimizer,
            "population": self.population,
            "generations": self.generations,
            "master_seed": self.master_seed,
            "warm_start": self.warm_start,
        }

    def to_json(self) -> str:
        """Canonical JSON form (stable across processes, used by the store)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        if data.get("kind") != SEARCH_SPEC_KIND:
            raise ConfigurationError(
                f"not an adversary-search spec (kind={data.get('kind')!r})"
            )
        schema = data.get("schema", SEARCH_SCHEMA_VERSION)
        if schema != SEARCH_SCHEMA_VERSION:
            raise ConfigurationError(
                f"search spec schema {schema} is not supported "
                f"(this build writes schema {SEARCH_SCHEMA_VERSION})"
            )
        return cls(
            name=data["name"],
            objective=SearchObjective.from_dict(data["objective"]),
            optimizer=data["optimizer"],
            population=data["population"],
            generations=data["generations"],
            master_seed=data["master_seed"],
            warm_start=data["warm_start"],
        )

    @classmethod
    def from_json(cls, text: str) -> "SearchSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))


class SearchCheckpoint:
    """One search's view of a result store: keys, lookups, and recording.

    Parameters
    ----------
    store:
        The (shared) campaign result store.
    spec:
        The search spec; registered on :meth:`register` and pinned by the
        store thereafter.
    """

    def __init__(self, store: ResultStore, spec: SearchSpec) -> None:
        self._store = store
        self._spec = spec

    @property
    def spec(self) -> SearchSpec:
        """The pinned search spec."""
        return self._spec

    @property
    def store(self) -> ResultStore:
        """The underlying result store."""
        return self._store

    @classmethod
    def load(cls, store: ResultStore, name: str) -> "SearchCheckpoint":
        """Open an existing search by name, rebuilding its spec from the store."""
        spec_json = store.spec_json_for(name)
        if not is_search_spec_json(spec_json):
            raise ConfigurationError(
                f"campaign {name!r} in store {store.path!r} is not an adversary search"
            )
        assert spec_json is not None
        return cls(store, SearchSpec.from_json(spec_json))

    def register(self) -> None:
        """Pin the spec in the store (raises if the name means a different spec)."""
        self._store.register_campaign(self._spec.name, self._spec.to_json())

    # -- candidate identity ----------------------------------------------

    def key_for(self, genome: StrategyGenome) -> str:
        """The content-hashed store key of one candidate evaluation.

        Covers the objective's *evaluation* description (everything that
        determines the simulated trial records — not the score metric) and
        the genome description, and nothing else, so identical candidates
        dedup across generations, optimizers, metrics, and searches sharing
        a store, while any change to the evaluation configuration changes
        every key.
        """
        return cell_key(self._key_fields(genome))

    def _key_fields(self, genome: StrategyGenome) -> dict[str, Any]:
        return {
            "kind": "search-evaluation",
            "objective": self._spec.objective.evaluation_dict(),
            "genome": genome.to_dict(),
        }

    # -- lookup / record --------------------------------------------------

    def stored_records(self, key: str) -> Optional[tuple[TrialRecord, ...]]:
        """The persisted trial records of a candidate, or None if unevaluated."""
        if not self._store.has_cell(key):
            return None
        return self._store.trial_records(key)

    def record(
        self,
        genome: StrategyGenome,
        generation: int,
        key: str,
        records: Sequence[TrialRecord],
    ) -> None:
        """Atomically checkpoint one evaluated candidate.

        The stored description carries the key fields plus display metadata
        (first proposing generation, genome label); the key is computed from
        the key fields only, so re-proposals in later generations dedup.
        """
        description = dict(self._key_fields(genome))
        description["generation"] = generation
        description["label"] = genome.describe()
        self._store.record_cell(self._spec.name, key, description, list(records))

    def claim(self, key: str) -> None:
        """Attribute an evaluation recorded by another search to this one."""
        self._store.add_cells_to_campaign(self._spec.name, [key])

    # -- read-back --------------------------------------------------------

    def evaluation_count(self) -> int:
        """Number of distinct candidates this search has evaluated."""
        return self._store.cell_count(self._spec.name)

    def iter_evaluations(
        self,
    ) -> Iterator[tuple[str, StrategyGenome, int, tuple[TrialRecord, ...]]]:
        """Yield ``(key, genome, generation, records)`` in evaluation order.

        Evaluation order is the store's insertion order, which for a single
        (possibly resumed) search matches the deterministic proposal order.
        """
        for key, description, records in self._store.iter_cells(self._spec.name):
            genome = genome_from_dict(description["genome"])
            yield key, genome, description.get("generation", 0), records
