"""Search optimizers: deterministic ask/tell strategy proposers.

Every optimizer follows the same protocol.  The driver calls
:meth:`StrategyOptimizer.ask` to get generation ``g``'s candidate genomes,
evaluates them (deduplicating against the checkpoint store), and feeds the
scored outcomes back through :meth:`StrategyOptimizer.tell`.  Three
properties make search runs exactly reproducible and resumable:

* **one master seed** — all randomness flows through per-``(generation,
  candidate)`` streams derived by hashing the master seed, never through
  shared mutable RNG state, so proposals do not depend on how many
  evaluations were served from cache;
* **generation 0 is the warm start** — when enabled, every optimizer's first
  generation is the registry of hand-written jammers
  (:meth:`~repro.search.space.StrategySpace.warm_start`), so the best-found
  strategy can never be worse than the best hand-written one;
* **state is a pure function of told outcomes** — resuming replays the
  stored evaluations through ``tell`` and lands in exactly the state an
  uninterrupted run would have.

Optimizers:

* :class:`RandomSearch` — a fresh sample of the space every generation.
* :class:`HillClimb` — (1+λ): λ mutations of the best genome told so far.
* :class:`CrossEntropyMethod` — per-(slot, frequency) inclusion
  probabilities over fixed-period oblivious schedules, updated towards the
  elite fraction each generation.
"""

from __future__ import annotations

import abc
import hashlib
import random
from dataclasses import dataclass
from typing import ClassVar, Sequence

from repro.exceptions import ConfigurationError
from repro.search.space import ObliviousGenome, StrategyGenome, StrategySpace


def derived_rng(master_seed: int, *tags: object) -> random.Random:
    """A dedicated random stream derived from the master seed and a tag path.

    Hashing (rather than offsetting) the seed keeps streams independent and
    makes each proposal a function of *which* candidate it is, not of how
    many RNG draws earlier candidates consumed.
    """
    text = ":".join(str(part) for part in (master_seed, *tags))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class CandidateOutcome:
    """One scored candidate, as fed back to the optimizer.

    Attributes
    ----------
    genome:
        The candidate strategy.
    key:
        Its content-hashed checkpoint key.
    score:
        The objective score (higher = more disruptive).
    generation:
        The generation the candidate was proposed in.
    index:
        Its position within the generation.
    reused:
        Whether the evaluation was served from the checkpoint store.
    """

    genome: StrategyGenome
    key: str
    score: float
    generation: int
    index: int
    reused: bool = False


class StrategyOptimizer(abc.ABC):
    """Base class: binds a space + master seed, handles the warm start."""

    #: Registry name of the optimizer (part of the persisted search spec).
    name: ClassVar[str]

    def __init__(self, population: int = 8) -> None:
        if population < 1:
            raise ConfigurationError(f"population must be positive, got {population}")
        self._population = population
        self._space: StrategySpace | None = None
        self._master_seed = 0
        self._warm_start = True

    @property
    def population(self) -> int:
        """Candidates proposed per (post-warm-start) generation."""
        return self._population

    def bind(self, space: StrategySpace, master_seed: int, warm_start: bool = True) -> None:
        """Attach the space and master seed before the first ``ask``."""
        self._space = space
        self._master_seed = master_seed
        self._warm_start = warm_start

    @property
    def space(self) -> StrategySpace:
        if self._space is None:
            raise ConfigurationError("optimizer must be bound to a space before use")
        return self._space

    def rng(self, *tags: object) -> random.Random:
        """A per-tag random stream under this optimizer's master seed."""
        return derived_rng(self._master_seed, self.name, *tags)

    def ask(self, generation: int) -> list[StrategyGenome]:
        """Generation ``g``'s candidates (generation 0 = warm start, if enabled)."""
        if generation == 0 and self._warm_start:
            return self.space.warm_start()
        return self._ask(generation)

    def tell(self, generation: int, outcomes: Sequence[CandidateOutcome]) -> None:
        """Feed a completed generation's scores back into the optimizer."""
        self._tell(generation, outcomes)

    @abc.abstractmethod
    def _ask(self, generation: int) -> list[StrategyGenome]:
        """Propose a non-warm-start generation."""

    def _tell(self, generation: int, outcomes: Sequence[CandidateOutcome]) -> None:
        """Default: stateless — subclasses override to learn from scores."""


class RandomSearch(StrategyOptimizer):
    """Pure random search: every generation is a fresh sample of the space."""

    name = "random"

    def _ask(self, generation: int) -> list[StrategyGenome]:
        return [
            self.space.sample(self.rng(generation, index))
            for index in range(self._population)
        ]


class HillClimb(StrategyOptimizer):
    """(1+λ) hill-climbing from the best genome told so far.

    Ties keep the incumbent (strict improvement replaces it), so the climb is
    deterministic regardless of proposal order quirks.
    """

    name = "hill-climb"

    def __init__(self, population: int = 8) -> None:
        super().__init__(population)
        self._best: CandidateOutcome | None = None

    @property
    def best(self) -> CandidateOutcome | None:
        """The incumbent the next generation mutates (None before any tell)."""
        return self._best

    def _ask(self, generation: int) -> list[StrategyGenome]:
        if self._best is None:
            # Nothing told yet (warm start disabled): explore randomly.
            return [
                self.space.sample(self.rng(generation, index))
                for index in range(self._population)
            ]
        return [
            self.space.mutate(self._best.genome, self.rng(generation, index))
            for index in range(self._population)
        ]

    def _tell(self, generation: int, outcomes: Sequence[CandidateOutcome]) -> None:
        for outcome in outcomes:
            if self._best is None or outcome.score > self._best.score:
                self._best = outcome


class CrossEntropyMethod(StrategyOptimizer):
    """Cross-entropy over fixed-period oblivious schedules.

    The distribution is one inclusion probability per (period slot,
    frequency).  Each generation samples exactly-``t``-sized disruption sets
    slot by slot (weighted, without replacement), then shifts the
    probabilities towards the frequency-inclusion rates of the elite
    fraction.  Genomes from other families (e.g. the warm start) are ignored
    by the update but still compete for best-found in the driver.
    """

    name = "cross-entropy"

    def __init__(
        self,
        population: int = 8,
        elite_fraction: float = 0.25,
        smoothing: float = 0.7,
    ) -> None:
        super().__init__(population)
        if not 0.0 < elite_fraction <= 1.0:
            raise ConfigurationError(f"elite_fraction must be in (0, 1], got {elite_fraction}")
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(f"smoothing must be in (0, 1], got {smoothing}")
        self._elite_fraction = elite_fraction
        self._smoothing = smoothing
        self._probabilities: list[list[float]] | None = None

    def _ensure_probabilities(self) -> list[list[float]]:
        if self._probabilities is None:
            params = self.space.params
            initial = min(0.95, max(0.05, params.disruption_budget / params.frequencies))
            self._probabilities = [
                [initial] * params.frequencies for _ in range(self.space.cem_period)
            ]
        return self._probabilities

    @property
    def probabilities(self) -> list[list[float]]:
        """The current per-(slot, frequency) inclusion probabilities."""
        return [row[:] for row in self._ensure_probabilities()]

    def _sample_slot(self, probabilities: list[float], rng: random.Random) -> tuple[int, ...]:
        """Weighted sampling of exactly ``t`` distinct frequencies for one slot."""
        budget = self.space.params.disruption_budget
        remaining = {
            frequency: max(probabilities[frequency - 1], 1e-9)
            for frequency in self.space.params.band.all_frequencies()
        }
        chosen: list[int] = []
        while remaining and len(chosen) < budget:
            total = sum(remaining.values())
            target = rng.random() * total
            cumulative = 0.0
            picked = None
            for frequency in sorted(remaining):
                cumulative += remaining[frequency]
                if cumulative >= target:
                    picked = frequency
                    break
            if picked is None:  # numeric edge: take the last one
                picked = max(remaining)
            chosen.append(picked)
            del remaining[picked]
        return tuple(sorted(chosen))

    def _ask(self, generation: int) -> list[StrategyGenome]:
        probabilities = self._ensure_probabilities()
        genomes: list[StrategyGenome] = []
        for index in range(self._population):
            rng = self.rng(generation, index)
            sets = tuple(self._sample_slot(row, rng) for row in probabilities)
            genomes.append(ObliviousGenome(period_sets=sets))
        return genomes

    def _tell(self, generation: int, outcomes: Sequence[CandidateOutcome]) -> None:
        probabilities = self._ensure_probabilities()
        period = self.space.cem_period
        eligible = [
            outcome
            for outcome in outcomes
            if isinstance(outcome.genome, ObliviousGenome)
            and len(outcome.genome.period_sets) == period
        ]
        if not eligible:
            return
        ranked = sorted(enumerate(eligible), key=lambda pair: (-pair[1].score, pair[0]))
        elite_count = max(1, round(self._elite_fraction * len(eligible)))
        elites = [outcome for _index, outcome in ranked[:elite_count]]
        for slot in range(period):
            for frequency in self.space.params.band.all_frequencies():
                rate = sum(
                    1 for outcome in elites if frequency in outcome.genome.period_sets[slot]
                ) / len(elites)
                blended = (1.0 - self._smoothing) * probabilities[slot][frequency - 1] + (
                    self._smoothing * rate
                )
                probabilities[slot][frequency - 1] = min(0.98, max(0.02, blended))


#: name -> optimizer class, the namespace the search spec and CLI use.
OPTIMIZERS: dict[str, type[StrategyOptimizer]] = {
    RandomSearch.name: RandomSearch,
    HillClimb.name: HillClimb,
    CrossEntropyMethod.name: CrossEntropyMethod,
}


def make_optimizer(name: str, population: int = 8) -> StrategyOptimizer:
    """Build a registered optimizer by name."""
    try:
        optimizer_class = OPTIMIZERS[name]
    except KeyError:
        known = ", ".join(sorted(OPTIMIZERS))
        raise ConfigurationError(f"unknown optimizer {name!r}; known: {known}") from None
    return optimizer_class(population=population)
