"""Adversarial strategy search.

The paper's Θ-bounds hold against a *worst-case* interference adversary, but
hand-written jammers only witness the lower bounds as well as our intuition.
This package treats jammer-vs-protocol as a game and *searches* for
disruption strategies that maximize synchronization latency (or failure
rate), reusing the parallel trial runner for evaluation and the campaign
result store for exact, deduplicated, resumable checkpointing.

Modules
-------
:mod:`repro.search.space`
    Searchable strategy genomes — bounded oblivious schedules, parametric
    registry jammers, and reactive policy tables — each decoding to a
    picklable :class:`~repro.adversary.base.InterferenceAdversary`.
:mod:`repro.search.objective`
    Multi-seed evaluation of a genome against a pinned protocol/workload
    configuration, with configurable latency / success / round-count scores.
:mod:`repro.search.optimizers`
    Seeded random search, (1+λ) hill-climbing, and a cross-entropy method,
    all deterministic from one master seed.
:mod:`repro.search.checkpoint`
    The search spec and its persistence into a campaign
    :class:`~repro.campaigns.store.ResultStore` (content-hashed candidate
    keys, per-candidate trial records, spec pinning for safe resume).
:mod:`repro.search.runner`
    The ask–evaluate–tell driver: dedups candidates against the store,
    checkpoints every evaluation, and resumes bit-identically after a kill.
"""

from repro.search.checkpoint import SearchCheckpoint, SearchSpec
from repro.search.objective import Evaluation, SearchObjective
from repro.search.optimizers import OPTIMIZERS, make_optimizer
from repro.search.runner import SearchResult, StrategySearch, export_search, search_status
from repro.search.space import StrategySpace, genome_from_dict, genome_key

__all__ = [
    "Evaluation",
    "OPTIMIZERS",
    "SearchCheckpoint",
    "SearchObjective",
    "SearchResult",
    "SearchSpec",
    "StrategySearch",
    "StrategySpace",
    "export_search",
    "genome_from_dict",
    "genome_key",
    "make_optimizer",
    "search_status",
]
