"""Searchable strategy genomes and the space that samples and mutates them.

A *genome* is a small, JSON-serializable description of a disruption
strategy.  Three families cover the adversary classes the paper reasons
about:

* :class:`ObliviousGenome` — a bounded periodic disruption schedule (one
  explicit set of ≤ ``t`` frequencies per slot), decoding to a
  :class:`~repro.adversary.oblivious.CyclicObliviousSchedule`.  This is the
  fully oblivious corner of the space, and the representation the
  cross-entropy optimizer works on.
* :class:`ParametricGenome` — a named jammer from the shared
  :mod:`adversary registry <repro.adversary.registry>` with optional
  constructor overrides (sweep step, burst duty cycle, ...).  The space's
  :meth:`~StrategySpace.warm_start` enumerates every registered jammer with
  default parameters, so a search always starts from — and can only improve
  on — the hand-written baselines.
* :class:`PolicyGenome` — a reactive policy table keyed on discretized
  :class:`~repro.adversary.base.AdversaryContext` features, decoding to a
  :class:`~repro.adversary.policy.PolicyJammer` (the adaptive corner).

Every genome round-trips through ``to_dict``/:func:`genome_from_dict` and has
a stable content-hashed :func:`genome_key`, which is what the checkpoint
layer dedups evaluations by.  Decoded adversaries are picklable (the parallel
runner ships them to worker processes) and carry a stable ``identity()``.
"""

from __future__ import annotations

import abc
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Any, ClassVar, Mapping

from repro.adversary.base import InterferenceAdversary
from repro.adversary.oblivious import CyclicObliviousSchedule
from repro.adversary.policy import HEAT_BUCKETS, POLICY_ACTIONS, PolicyJammer
from repro.adversary.registry import ADVERSARY_FACTORIES
from repro.adversary.registry import names as adversary_names
from repro.adversary.registry import resolve as resolve_adversary
from repro.exceptions import ConfigurationError
from repro.faults.plan import ChurnEvent, CorruptionEvent, FaultPlan
from repro.params import ModelParameters


def genome_key(genome: "StrategyGenome") -> str:
    """The stable content hash of a genome (16 hex digits of the SHA-256).

    Computed from the canonical JSON of :meth:`StrategyGenome.to_dict`, so it
    is identical across processes and machines — the property the store's
    dedup relies on.
    """
    canonical = json.dumps(genome.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class StrategyGenome(abc.ABC):
    """A searchable, serializable description of a disruption strategy."""

    #: Family tag used by the ``to_dict`` / :func:`genome_from_dict` round trip.
    kind: ClassVar[str]

    @abc.abstractmethod
    def decode(self, params: ModelParameters) -> InterferenceAdversary:
        """Build the picklable adversary this genome describes."""

    @abc.abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """A canonical JSON-serializable description (includes ``kind``)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Short human-readable label for status lines and tables."""

    @property
    def key(self) -> str:
        """The stable content-hashed identity of this genome."""
        return genome_key(self)


@dataclass(frozen=True)
class ObliviousGenome(StrategyGenome):
    """A bounded periodic oblivious schedule: one disruption set per slot.

    Attributes
    ----------
    period_sets:
        One tuple of frequencies per slot of the period; each is normalized
        to sorted order at construction.  Slot ``s`` is played in every round
        ``r`` with ``(r − 1) mod period == s``.
    """

    kind: ClassVar[str] = "oblivious"

    period_sets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        normalized = tuple(tuple(sorted(set(entry))) for entry in self.period_sets)
        object.__setattr__(self, "period_sets", normalized)
        if not normalized:
            raise ConfigurationError("an oblivious genome needs at least one period slot")

    def decode(self, params: ModelParameters) -> InterferenceAdversary:
        return CyclicObliviousSchedule([frozenset(entry) for entry in self.period_sets])

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "period_sets": [list(entry) for entry in self.period_sets]}

    def describe(self) -> str:
        return f"oblivious period-{len(self.period_sets)} schedule"


@dataclass(frozen=True)
class ParametricGenome(StrategyGenome):
    """A registered jammer name plus optional constructor overrides.

    Attributes
    ----------
    name:
        An :mod:`adversary registry <repro.adversary.registry>` name.
    overrides:
        Sorted ``(field, value)`` pairs passed to the constructor; empty
        means the hand-written default configuration.
    """

    kind: ClassVar[str] = "parametric"

    name: str
    overrides: tuple[tuple[str, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", tuple(sorted((str(k), int(v)) for k, v in self.overrides))
        )
        if self.name not in ADVERSARY_FACTORIES:
            known = ", ".join(adversary_names())
            raise ConfigurationError(f"unknown adversary {self.name!r}; known: {known}")

    def decode(self, params: ModelParameters) -> InterferenceAdversary:
        return resolve_adversary(self.name, **dict(self.overrides))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "name": self.name, "overrides": [list(p) for p in self.overrides]}

    def describe(self) -> str:
        if not self.overrides:
            return f"{self.name} jammer (defaults)"
        rendered = ", ".join(f"{field}={value}" for field, value in self.overrides)
        return f"{self.name} jammer ({rendered})"


@dataclass(frozen=True)
class PolicyGenome(StrategyGenome):
    """A reactive (phase × heat) → action policy table.

    Attributes
    ----------
    table:
        ``phase_period × HEAT_BUCKETS`` action names from
        :data:`~repro.adversary.policy.POLICY_ACTIONS`.
    phase_period:
        The period of the phase feature.
    """

    kind: ClassVar[str] = "policy"

    table: tuple[str, ...]
    phase_period: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "table", tuple(self.table))
        # Validation (lengths, action names) lives in PolicyJammer; decoding
        # eagerly here surfaces a malformed genome at construction time.
        PolicyJammer(table=self.table, phase_period=self.phase_period)

    def decode(self, params: ModelParameters) -> InterferenceAdversary:
        return PolicyJammer(table=self.table, phase_period=self.phase_period)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "table": list(self.table), "phase_period": self.phase_period}

    def describe(self) -> str:
        return f"reactive policy ({self.phase_period} phases)"


@dataclass(frozen=True)
class FaultGenome(StrategyGenome):
    """A fault-injection plan as a searchable strategy.

    The fourth family attacks *node state* instead of the spectrum: its plan
    (churn, Byzantine forgers, transient corruption — see
    :class:`~repro.faults.plan.FaultPlan`) is injected through
    ``SimulationConfig.faults`` by
    :meth:`~repro.search.objective.SearchObjective.config_for`, and
    :meth:`decode` yields the quiet ``none`` adversary so the radio layer is
    undisturbed.  Not part of the default :meth:`StrategySpace.sample` mix —
    fault search is opt-in via :attr:`StrategySpace.include_faults` because a
    fault plan sidesteps the disruption budget the paper's adversary model
    bounds.
    """

    kind: ClassVar[str] = "faults"

    plan: FaultPlan

    def __post_init__(self) -> None:
        if not isinstance(self.plan, FaultPlan):
            raise ConfigurationError(
                f"a fault genome wraps a FaultPlan, got {type(self.plan).__name__}"
            )
        if self.plan.empty:
            raise ConfigurationError("a fault genome needs a non-empty fault plan")

    def decode(self, params: ModelParameters) -> InterferenceAdversary:
        return resolve_adversary("none")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "plan": self.plan.to_dict()}

    def describe(self) -> str:
        return self.plan.describe()


_GENOME_CLASSES: dict[str, type[StrategyGenome]] = {
    ObliviousGenome.kind: ObliviousGenome,
    ParametricGenome.kind: ParametricGenome,
    PolicyGenome.kind: PolicyGenome,
    FaultGenome.kind: FaultGenome,
}


def genome_from_dict(data: Mapping[str, Any]) -> StrategyGenome:
    """Rebuild a genome from its ``to_dict`` form (checkpoint read-back)."""
    kind = data.get("kind")
    if kind not in _GENOME_CLASSES:
        known = ", ".join(sorted(_GENOME_CLASSES))
        raise ConfigurationError(f"unknown genome kind {kind!r}; known: {known}")
    if kind == ObliviousGenome.kind:
        return ObliviousGenome(period_sets=tuple(tuple(entry) for entry in data["period_sets"]))
    if kind == ParametricGenome.kind:
        return ParametricGenome(
            name=data["name"], overrides=tuple(tuple(pair) for pair in data["overrides"])
        )
    if kind == FaultGenome.kind:
        return FaultGenome(plan=FaultPlan.from_dict(data["plan"]))
    return PolicyGenome(table=tuple(data["table"]), phase_period=data["phase_period"])


@dataclass(frozen=True)
class StrategySpace:
    """The searchable space of genomes for one ``(F, t)`` configuration.

    All sampling and mutation is a deterministic function of the provided
    ``random.Random`` streams, so optimizers derived from one master seed
    explore the space reproducibly.

    Attributes
    ----------
    params:
        The model parameters the strategies are built for (``F`` bounds the
        frequencies, ``t`` bounds every disruption set).
    max_period:
        Largest period an oblivious genome may be sampled with.
    cem_period:
        The fixed period the cross-entropy optimizer's oblivious genomes use.
    phase_period:
        The phase period of sampled policy genomes.
    include_faults:
        When True, :meth:`sample` draws :class:`FaultGenome` candidates
        alongside the three adversary families.  Off by default: the default
        mix — and therefore every existing master-seeded search trajectory —
        is unchanged, and fault plans sidestep the paper's disruption budget,
        so mixing them into an adversary search must be a deliberate choice.
    fault_nodes:
        Node-id range sampled fault events target (ids at or above the
        evaluated workload's node count are silently inert, so one space can
        serve several node counts).
    fault_horizon:
        Latest round a sampled fault event may fire in.
    """

    params: ModelParameters
    max_period: int = 12
    cem_period: int = 8
    phase_period: int = 4
    include_faults: bool = False
    fault_nodes: int = 8
    fault_horizon: int = 80

    def __post_init__(self) -> None:
        if self.max_period < 1 or self.cem_period < 1 or self.phase_period < 1:
            raise ConfigurationError("space periods must all be positive")
        if self.fault_nodes < 1 or self.fault_horizon < 2:
            raise ConfigurationError("fault_nodes must be >= 1 and fault_horizon >= 2")

    # -- sampling ---------------------------------------------------------

    def warm_start(self) -> list[StrategyGenome]:
        """Every registered hand-written jammer with default parameters.

        Evaluating these first guarantees the search's best-found strategy is
        at least as disruptive as the best hand-written baseline.
        """
        return [ParametricGenome(name=name) for name in adversary_names()]

    def sample(self, rng: random.Random) -> StrategyGenome:
        """Draw one genome uniformly across the enabled families."""
        families = ("oblivious", "parametric", "policy")
        if self.include_faults:
            families = families + ("faults",)
        family = rng.choice(families)
        if family == "oblivious":
            return self.sample_oblivious(rng)
        if family == "parametric":
            return self.sample_parametric(rng)
        if family == "faults":
            return self.sample_faults(rng)
        return self.sample_policy(rng)

    def sample_oblivious(self, rng: random.Random, period: int | None = None) -> ObliviousGenome:
        """A random periodic schedule (full-budget sets, occasionally smaller)."""
        length = rng.randint(1, self.max_period) if period is None else period
        budget = self.params.disruption_budget
        frequencies = list(self.params.band.all_frequencies())
        sets = []
        for _slot in range(length):
            size = budget if rng.random() < 0.8 else rng.randint(0, budget)
            sets.append(tuple(sorted(rng.sample(frequencies, size))))
        return ObliviousGenome(period_sets=tuple(sets))

    def sample_parametric(self, rng: random.Random) -> ParametricGenome:
        """A random registered jammer, with each tunable field perturbed half the time."""
        name = rng.choice(adversary_names())
        overrides = []
        for field, (low, high, _default) in sorted(self._parameter_ranges(name).items()):
            if rng.random() < 0.5:
                overrides.append((field, rng.randint(low, high)))
        return ParametricGenome(name=name, overrides=tuple(overrides))

    def sample_policy(self, rng: random.Random) -> PolicyGenome:
        """A random (phase × heat) → action table."""
        table = tuple(
            rng.choice(POLICY_ACTIONS) for _ in range(self.phase_period * HEAT_BUCKETS)
        )
        return PolicyGenome(table=table, phase_period=self.phase_period)

    def sample_faults(self, rng: random.Random) -> FaultGenome:
        """A random non-empty fault plan over the space's node-id range.

        Every draw enables at least one fault family; churn events get
        distinct node ids (plans reject overlapping per-node windows).
        """
        horizon = self.fault_horizon
        while True:
            churn: list[ChurnEvent] = []
            churn_count = rng.randint(0, min(2, self.fault_nodes))
            for node_id in rng.sample(range(self.fault_nodes), churn_count):
                leave = rng.randint(2, horizon)
                rejoin = leave + rng.randint(2, horizon // 2) if rng.random() < 0.7 else None
                churn.append(ChurnEvent(node_id=node_id, leave_round=leave, rejoin_round=rejoin))
            byzantine_count = rng.choice((0, 0, 1))
            # Pinned to 1 for count 0, so an inactive Byzantine setting never
            # perturbs the plan's content hash.
            byzantine_start = rng.randint(1, horizon) if byzantine_count else 1
            corruption: list[CorruptionEvent] = []
            if rng.random() < 0.5:
                nodes = tuple(
                    sorted(rng.sample(range(self.fault_nodes), rng.randint(1, 2)))
                )
                corruption.append(
                    CorruptionEvent(round_index=rng.randint(2, horizon), node_ids=nodes)
                )
            plan = FaultPlan(
                churn=tuple(churn),
                byzantine_count=byzantine_count,
                byzantine_start_round=byzantine_start,
                corruption=tuple(corruption),
            )
            if not plan.empty:
                return FaultGenome(plan=plan)

    def _parameter_ranges(self, name: str) -> dict[str, tuple[int, int, int]]:
        """``field -> (low, high, default)`` for each tunable field of a jammer.

        ``default`` is the value the registered constructor effectively uses
        (``None`` sentinels resolve to the full budget), so mutation of a
        default-configured genome nudges from where the jammer actually is.
        """
        frequencies = self.params.frequencies
        budget = self.params.disruption_budget
        ranges: dict[str, dict[str, tuple[int, int, int]]] = {
            "random": {"strength": (min(1, budget), max(1, budget), max(1, budget))},
            "sweep": {"step": (1, max(1, frequencies - 1), 1)},
            "bursty": {"on_rounds": (1, 32, 8), "off_rounds": (0, 32, 8)},
            "low-band": {"prefix_width": (1, frequencies, max(1, budget))},
        }
        return ranges.get(name, {})

    # -- mutation ---------------------------------------------------------

    def mutate(self, genome: StrategyGenome, rng: random.Random) -> StrategyGenome:
        """One local edit of a genome (the hill-climber's neighbourhood)."""
        if isinstance(genome, ObliviousGenome):
            return self._mutate_oblivious(genome, rng)
        if isinstance(genome, ParametricGenome):
            return self._mutate_parametric(genome, rng)
        if isinstance(genome, PolicyGenome):
            return self._mutate_policy(genome, rng)
        if isinstance(genome, FaultGenome):
            return self._mutate_faults(genome, rng)
        raise ConfigurationError(f"cannot mutate genome of type {type(genome).__name__}")

    def _mutate_oblivious(self, genome: ObliviousGenome, rng: random.Random) -> ObliviousGenome:
        """Resample one slot of the period."""
        sets = list(genome.period_sets)
        slot = rng.randrange(len(sets))
        budget = self.params.disruption_budget
        frequencies = list(self.params.band.all_frequencies())
        size = budget if rng.random() < 0.8 else rng.randint(0, budget)
        sets[slot] = tuple(sorted(rng.sample(frequencies, size)))
        return ObliviousGenome(period_sets=tuple(sets))

    def _mutate_parametric(self, genome: ParametricGenome, rng: random.Random) -> StrategyGenome:
        """Nudge one tunable field; parameterless jammers hop to a fresh sample."""
        ranges = self._parameter_ranges(genome.name)
        if not ranges:
            return self.sample(rng)
        field = rng.choice(sorted(ranges))
        low, high, default = ranges[field]
        current = dict(genome.overrides)
        value = current.get(field, default)
        step = rng.choice((-2, -1, 1, 2))
        current[field] = min(high, max(low, value + step))
        return ParametricGenome(name=genome.name, overrides=tuple(sorted(current.items())))

    def _mutate_policy(self, genome: PolicyGenome, rng: random.Random) -> PolicyGenome:
        """Rewrite one table entry."""
        table = list(genome.table)
        index = rng.randrange(len(table))
        alternatives = [action for action in POLICY_ACTIONS if action != table[index]]
        table[index] = rng.choice(alternatives)
        return PolicyGenome(table=tuple(table), phase_period=genome.phase_period)

    def _mutate_faults(self, genome: FaultGenome, rng: random.Random) -> StrategyGenome:
        """Nudge one timing field of the plan; resample if the nudge is invalid."""
        plan = genome.plan
        choices = []
        if plan.churn:
            choices.append("churn")
        if plan.byzantine_count:
            choices.append("byzantine")
        if plan.corruption:
            choices.append("corruption")
        what = rng.choice(choices)
        step = rng.choice((-4, -1, 1, 4))
        try:
            if what == "byzantine":
                start = min(self.fault_horizon, max(1, plan.byzantine_start_round + step))
                mutated = FaultPlan(
                    churn=plan.churn,
                    byzantine_count=plan.byzantine_count,
                    byzantine_start_round=start,
                    corruption=plan.corruption,
                )
            elif what == "churn":
                events = list(plan.churn)
                index = rng.randrange(len(events))
                event = events[index]
                leave = max(1, event.leave_round + step)
                rejoin = event.rejoin_round
                if rejoin is not None:
                    rejoin = max(leave + 1, rejoin + step)
                events[index] = ChurnEvent(
                    node_id=event.node_id, leave_round=leave, rejoin_round=rejoin
                )
                mutated = FaultPlan(
                    churn=tuple(events),
                    byzantine_count=plan.byzantine_count,
                    byzantine_start_round=plan.byzantine_start_round,
                    corruption=plan.corruption,
                )
            else:
                events2 = list(plan.corruption)
                index = rng.randrange(len(events2))
                event2 = events2[index]
                events2[index] = CorruptionEvent(
                    round_index=max(1, event2.round_index + step), node_ids=event2.node_ids
                )
                mutated = FaultPlan(
                    churn=plan.churn,
                    byzantine_count=plan.byzantine_count,
                    byzantine_start_round=plan.byzantine_start_round,
                    corruption=tuple(events2),
                )
        except ConfigurationError:
            # The nudge produced an invalid plan (e.g. overlapping churn
            # windows) — hop to a fresh sample instead.
            return self.sample_faults(rng)
        return FaultGenome(plan=mutated)
