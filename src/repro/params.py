"""Model parameters shared by protocols, adversaries, and experiments.

The paper's model is parameterized by three quantities:

* ``F`` — the number of disjoint narrowband frequencies;
* ``t`` — the maximum number of frequencies the adversary may disrupt per
  round, with ``t < F``;
* ``N`` — an upper bound (possibly very loose) on the number of participating
  devices, with ``N ≥ F``.

:class:`ModelParameters` bundles and validates them and provides the derived
quantities that appear throughout the protocols and bounds (``F' = min(F, 2t)``,
``lg N``, ...).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.radio.frequencies import FrequencyBand


@dataclass(frozen=True)
class ModelParameters:
    """The ``(F, t, N)`` triple of the disrupted radio network model.

    Attributes
    ----------
    frequencies:
        Number of frequencies ``F`` (at least 1).
    disruption_budget:
        Adversary budget ``t`` with ``0 ≤ t < F``.
    participant_bound:
        Upper bound ``N`` on the number of participants, ``N ≥ 2``.
    """

    frequencies: int
    disruption_budget: int
    participant_bound: int

    def __post_init__(self) -> None:
        if self.frequencies < 1:
            raise ConfigurationError(f"F must be at least 1, got {self.frequencies}")
        if not 0 <= self.disruption_budget < self.frequencies:
            raise ConfigurationError(
                f"t must satisfy 0 <= t < F, got t={self.disruption_budget}, F={self.frequencies}"
            )
        if self.participant_bound < 2:
            raise ConfigurationError(
                f"N must be at least 2, got {self.participant_bound}"
            )

    @functools.cached_property
    def band(self) -> FrequencyBand:
        """The frequency band ``[1 .. F]``.

        Cached: protocols and adversaries consult the band every round, so
        handing out one stable instance (instead of building a fresh
        ``FrequencyBand`` per access) keeps band-derived caches effective on
        the simulation hot path.
        """
        return FrequencyBand(self.frequencies)

    @property
    def effective_frequencies(self) -> int:
        """The paper's ``F' = min(F, 2t)``, floored at 1 so ``t = 0`` still works.

        Both protocols restrict themselves to the first ``F'`` frequencies:
        using more than ``2t`` channels does not help, because the adversary
        can never disrupt more than half of ``2t`` channels.
        """
        return max(1, min(self.frequencies, 2 * self.disruption_budget))

    @property
    def log_participants(self) -> int:
        """``⌈lg N⌉`` — the number of epochs used by the protocols."""
        return max(1, math.ceil(math.log2(self.participant_bound)))

    @property
    def log_frequencies(self) -> int:
        """``⌈lg F⌉`` — the number of Good Samaritan super-epochs."""
        return max(1, math.ceil(math.log2(self.frequencies)))

    def with_budget(self, disruption_budget: int) -> "ModelParameters":
        """A copy of these parameters with a different disruption budget."""
        return ModelParameters(self.frequencies, disruption_budget, self.participant_bound)

    def describe(self) -> str:
        """Short label used in experiment tables."""
        return f"F={self.frequencies}, t={self.disruption_budget}, N={self.participant_bound}"
