"""The protocol interface the simulation engine drives.

A *synchronization protocol* is the per-node state machine of §3: every round
it chooses a frequency and whether to broadcast or listen, it reacts to what
it receives, and it outputs either a round number or ``⊥`` (``None``).

The engine instantiates one protocol object per node through a
:class:`ProtocolFactory` and interacts with it only through the small
interface defined here, so the same engine runs the Trapdoor protocol, the
Good Samaritan protocol, all baselines, and the application protocols.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.params import ModelParameters
from repro.radio.actions import RadioAction
from repro.radio.events import ReceptionOutcome
from repro.types import LocalRound, Role, SyncOutput


@dataclass
class ProtocolContext:
    """Per-node context handed to a protocol by the engine.

    Attributes
    ----------
    params:
        The model parameters ``(F, t, N)``.
    rng:
        The node's private random stream (derived deterministically from the
        simulation master seed and the node id).
    uid:
        The node's unique identifier, drawn at activation time.
    local_round:
        The node's activation age: 1 in the round it is activated, then
        incremented by the engine before each subsequent round.
    """

    params: ModelParameters
    rng: random.Random
    uid: int
    local_round: LocalRound = field(default=0)


class SynchronizationProtocol(abc.ABC):
    """Base class for all per-node protocol state machines.

    Subclasses receive their :class:`ProtocolContext` in ``__init__`` and must
    implement :meth:`choose_action`, :meth:`on_reception`, and
    :meth:`current_output`.  The engine guarantees the call order per round::

        choose_action() -> (network resolution) -> on_reception() -> current_output()

    with ``context.local_round`` already set for the round.
    """

    def __init__(self, context: ProtocolContext) -> None:
        self.context = context

    # -- lifecycle -------------------------------------------------------

    def on_activate(self) -> None:
        """Hook invoked once, in the node's first active round, before
        :meth:`choose_action`.  Default: no-op."""

    @abc.abstractmethod
    def choose_action(self) -> RadioAction:
        """Choose this round's frequency and broadcast/listen decision."""

    @abc.abstractmethod
    def on_reception(self, outcome: ReceptionOutcome) -> None:
        """React to the end-of-round reception outcome."""

    @abc.abstractmethod
    def current_output(self) -> SyncOutput:
        """The value output this round: a round number, or ``None`` for ⊥."""

    # -- reporting -------------------------------------------------------

    @property
    def role(self) -> Role:
        """The node's coarse role, for metrics and traces.  Default: contender."""
        return Role.CONTENDER

    @property
    def synchronized(self) -> bool:
        """True once the node outputs a non-⊥ value (and hence forever after)."""
        return self.current_output() is not None

    @property
    def is_leader(self) -> bool:
        """True if this node elected itself leader (if the protocol has leaders)."""
        return self.role is Role.LEADER


#: A callable building one protocol instance per node.  The engine calls it at
#: activation time with the node's freshly initialized context.
ProtocolFactory = Callable[[ProtocolContext], SynchronizationProtocol]


@dataclass(frozen=True)
class BoundProtocolFactory:
    """A picklable :data:`ProtocolFactory`: a protocol class bound to arguments.

    The parallel trial runner ships whole simulation configurations to worker
    processes, so factories must survive pickling — which closures don't.
    Every built-in ``Protocol.factory(...)`` classmethod returns one of these:
    calling it builds ``protocol_class(context, *args)``.
    """

    protocol_class: type[SynchronizationProtocol]
    args: tuple = ()

    def __call__(self, context: ProtocolContext) -> SynchronizationProtocol:
        return self.protocol_class(context, *self.args)


class SynchronizedOutputMixin:
    """Helper managing the output counter shared by every protocol.

    A protocol using this mixin calls :meth:`adopt_round_number` once, when it
    learns the numbering (from its own election or from a leader message).
    The mixin anchors the adopted value to the node's local round at adoption
    time and derives every later output from the local round counter, so the
    *synch commit* and *correctness* properties hold by construction.

    Subclasses must expose a ``context`` attribute (they all do, via
    :class:`SynchronizationProtocol`).
    """

    context: ProtocolContext
    _adopted_value: Optional[int] = None
    _adopted_local_round: Optional[int] = None

    def adopt_round_number(self, round_number: int) -> None:
        """Adopt ``round_number`` as the output for the *current* round.

        Subsequent rounds output ``round_number + 1``, ``round_number + 2``, …
        automatically.  Re-adoption is ignored once committed (synch commit).
        """
        if self._adopted_value is not None:
            return
        self._adopted_value = round_number
        self._adopted_local_round = self.context.local_round

    def current_output(self) -> SyncOutput:
        """The committed round number for the current round, or ``None`` (⊥)."""
        if self._adopted_value is None or self._adopted_local_round is None:
            return None
        return self._adopted_value + (self.context.local_round - self._adopted_local_round)
