"""Crash-tolerant Trapdoor variant (§8, "Fault-tolerance").

The concluding remarks sketch how to make the Trapdoor Protocol tolerate
crash failures:

* a node that has not heard from the leader for sufficiently long
  (``Ω(F²/(F−t) · log N)`` rounds) *restarts* its contention;
* a node *delays outputting* a round number until it has received
  sufficiently many messages from the leader, ensuring no node commits to a
  leader that died before establishing itself;
* (our addition, needed for late arrivals after a leader crash) nodes that
  have committed keep *assisting*: they re-broadcast the numbering with a
  small probability, so the numbering survives the death of its originator.

This module provides:

* :class:`FaultToleranceConfig` — the constants of the modification;
* :class:`FaultTolerantTrapdoorProtocol` — the modified protocol;
* :class:`CrashSchedule` / :func:`crashable` — a fail-silent crash injector
  that mutes a node (it stops broadcasting and ignores receptions) after a
  configured local round, which is how the ``fault_tolerance`` benchmark
  kills leaders.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ConfigurationError
from repro.protocols.base import (
    BoundProtocolFactory,
    ProtocolContext,
    ProtocolFactory,
    SynchronizationProtocol,
    SynchronizedOutputMixin,
)
from repro.protocols.numbering import RoundNumbering
from repro.protocols.timestamps import Timestamp
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.radio.actions import RadioAction, broadcast, listen
from repro.radio.events import ReceptionOutcome
from repro.radio.messages import ContenderMessage, LeaderMessage
from repro.types import Role, SyncOutput


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Constants of the crash-tolerant modification.

    Attributes
    ----------
    trapdoor:
        The underlying Trapdoor constants.
    silence_timeout_constant:
        A node restarts after ``⌈constant · F′²/(F′−t) · lg N⌉`` rounds without
        hearing a leader (the paper suggests ``Ω(F²/(F−t) · log N)``).
    commit_threshold:
        How many leader messages a node must receive before it outputs a round
        number ("delays outputting … until it has received sufficiently many
        messages from the leader").
    assist_probability:
        Probability with which committed nodes re-broadcast the numbering each
        round, keeping it alive after the leader crashes.
    """

    trapdoor: TrapdoorConfig = TrapdoorConfig()
    silence_timeout_constant: float = 4.0
    commit_threshold: int = 2
    assist_probability: float = 0.25

    def __post_init__(self) -> None:
        if self.silence_timeout_constant <= 0:
            raise ConfigurationError(
                f"silence_timeout_constant must be positive, got {self.silence_timeout_constant}"
            )
        if self.commit_threshold < 1:
            raise ConfigurationError(
                f"commit_threshold must be at least 1, got {self.commit_threshold}"
            )
        if not 0.0 <= self.assist_probability <= 1.0:
            raise ConfigurationError(
                f"assist_probability must be in [0, 1], got {self.assist_probability}"
            )

    def silence_timeout(self, schedule: TrapdoorSchedule) -> int:
        """The concrete restart timeout for a given schedule."""
        params = schedule.params
        f_prime = schedule.effective_frequencies
        denominator = max(1, f_prime - params.disruption_budget)
        return max(
            1,
            math.ceil(
                self.silence_timeout_constant
                * f_prime
                * f_prime
                / denominator
                * params.log_participants
            ),
        )


class _State(enum.Enum):
    CONTENDER = "contender"
    KNOCKED_OUT = "knocked_out"
    LEADER = "leader"
    COMMITTED = "committed"


class FaultTolerantTrapdoorProtocol(SynchronizedOutputMixin, SynchronizationProtocol):
    """The Trapdoor Protocol with restart-on-silence and delayed commitment.

    Parameters
    ----------
    context:
        The node's protocol context.
    config:
        Fault-tolerance constants.
    """

    def __init__(self, context: ProtocolContext, config: FaultToleranceConfig | None = None) -> None:
        super().__init__(context)
        self.config = config or FaultToleranceConfig()
        self.schedule = TrapdoorSchedule(context.params, self.config.trapdoor)
        self._band_width = self.schedule.effective_frequencies
        self._timeout = self.config.silence_timeout(self.schedule)
        self._state = _State.CONTENDER
        self._start_round = 1
        self._leader_messages_seen = 0
        self._last_leader_contact: int | None = None
        self._pending_numbering: RoundNumbering | None = None
        self._restarts = 0

    @classmethod
    def factory(cls, config: FaultToleranceConfig | None = None) -> ProtocolFactory:
        """A protocol factory for the fault-tolerant variant."""

        return BoundProtocolFactory(cls, (config,))

    # -- reporting ---------------------------------------------------------

    @property
    def role(self) -> Role:
        mapping = {
            _State.CONTENDER: Role.CONTENDER,
            _State.KNOCKED_OUT: Role.KNOCKED_OUT,
            _State.LEADER: Role.LEADER,
            _State.COMMITTED: Role.SYNCHRONIZED,
        }
        return mapping[self._state]

    @property
    def restart_count(self) -> int:
        """How many times this node restarted its contention."""
        return self._restarts

    @property
    def state_name(self) -> str:
        """The internal state name."""
        return self._state.value

    # -- per-round behaviour -------------------------------------------------

    def choose_action(self) -> RadioAction:
        rng = self.context.rng
        self._maybe_restart()

        protocol_round = self._protocol_round()
        if self._state is _State.CONTENDER and self.schedule.completed(protocol_round):
            self._become_leader()

        frequency = rng.randint(1, self._band_width)

        if self._state is _State.CONTENDER:
            probability = self.schedule.broadcast_probability(protocol_round)
            if rng.random() < probability:
                return broadcast(frequency, ContenderMessage(timestamp=self._my_timestamp()))
            return listen(frequency)

        if self._state is _State.LEADER:
            if rng.random() < self.config.trapdoor.leader_broadcast_probability:
                return broadcast(frequency, self._numbering_message())
            return listen(frequency)

        if self._state is _State.COMMITTED:
            if rng.random() < self.config.assist_probability:
                return broadcast(frequency, self._numbering_message())
            return listen(frequency)

        return listen(frequency)

    def on_reception(self, outcome: ReceptionOutcome) -> None:
        message = outcome.message
        if message is None:
            return
        if isinstance(message, LeaderMessage):
            self._on_leader_message(message)
            return
        if isinstance(message, ContenderMessage) and self._state is _State.CONTENDER:
            if message.timestamp > self._my_timestamp():
                self._state = _State.KNOCKED_OUT
                self._last_leader_contact = self.context.local_round

    def current_output(self) -> SyncOutput:
        # The mixin holds the committed counter; nothing is output before the
        # commit threshold is reached (the §8 "delay outputting" rule).
        return super().current_output()

    # -- internals ---------------------------------------------------------------

    def _protocol_round(self) -> int:
        return self.context.local_round - self._start_round + 1

    def _my_timestamp(self) -> Timestamp:
        # Rounds-active deliberately counts from activation (not from the last
        # restart): the earliest-activated survivor still wins ties, which is
        # what keeps re-elections converging on a single leader.
        return Timestamp(rounds_active=self.context.local_round, uid=self.context.uid)

    def _maybe_restart(self) -> None:
        if self._state not in (_State.KNOCKED_OUT,):
            return
        if self._last_leader_contact is None:
            self._last_leader_contact = self.context.local_round
            return
        if self.context.local_round - self._last_leader_contact > self._timeout:
            self._state = _State.CONTENDER
            self._start_round = self.context.local_round
            self._restarts += 1
            self._last_leader_contact = None

    def _become_leader(self) -> None:
        self._state = _State.LEADER
        if self._pending_numbering is not None:
            # Preserve a numbering learned from a previous (crashed) leader so
            # agreement survives re-election.
            self.adopt_round_number(self._pending_numbering.number_for(self.context.local_round))
        else:
            self.adopt_round_number(self.context.local_round)

    def _numbering_message(self) -> LeaderMessage:
        output = self.current_output()
        assert output is not None
        return LeaderMessage(leader_uid=self.context.uid, round_number=output)

    def _on_leader_message(self, message: LeaderMessage) -> None:
        if self._state is _State.LEADER:
            return
        self._leader_messages_seen += 1
        self._last_leader_contact = self.context.local_round
        if self._pending_numbering is None:
            self._pending_numbering = RoundNumbering.adopted_from_message(
                receiver_local_round=self.context.local_round,
                announced_number=message.round_number,
            )
        if self._state is not _State.COMMITTED:
            self._state = _State.KNOCKED_OUT
        if self._leader_messages_seen >= self.config.commit_threshold:
            self._state = _State.COMMITTED
            self.adopt_round_number(
                self._pending_numbering.number_for(self.context.local_round)
            )


# ---------------------------------------------------------------------------
# Crash injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashSchedule:
    """Which nodes fail-silent, and when (in *local* rounds).

    Attributes
    ----------
    crash_rounds:
        Mapping from node id to the local round after which the node is muted.
        Nodes not present never crash.
    """

    crash_rounds: Mapping[int, int]

    def crash_round_for(self, node_id: int) -> int | None:
        """The crash round of ``node_id``, or ``None`` if it never crashes."""
        return self.crash_rounds.get(node_id)


class MutedProtocol(SynchronizationProtocol):
    """A fail-silent wrapper: after ``mute_after`` local rounds the node stops
    broadcasting and ignores everything it hears.

    The muted node keeps outputting (its clock keeps ticking), which models a
    device that left the network rather than one whose memory was wiped; what
    matters for the experiments is that it stops *transmitting* — in
    particular, a muted leader no longer announces the numbering.
    """

    def __init__(self, inner: SynchronizationProtocol, mute_after: int) -> None:
        super().__init__(inner.context)
        if mute_after < 1:
            raise ConfigurationError(f"mute_after must be >= 1, got {mute_after}")
        self.inner = inner
        self.mute_after = mute_after

    @property
    def muted(self) -> bool:
        """True once the node has crashed (fail-silent)."""
        return self.context.local_round > self.mute_after

    @property
    def role(self) -> Role:
        return self.inner.role

    def on_activate(self) -> None:
        self.inner.on_activate()

    def choose_action(self) -> RadioAction:
        if self.muted:
            return listen(self.context.rng.randint(1, self.context.params.frequencies))
        return self.inner.choose_action()

    def on_reception(self, outcome: ReceptionOutcome) -> None:
        if self.muted:
            return
        self.inner.on_reception(outcome)

    def current_output(self) -> SyncOutput:
        return self.inner.current_output()


@dataclass
class CrashableProtocolFactory:
    """A picklable crash-injecting :data:`~repro.protocols.base.ProtocolFactory`.

    Because protocols do not know their engine-side node id, the crash
    schedule is applied by activation order: the ``i``-th activated node gets
    the crash round registered for id ``i``.  This matches how the benchmarks
    construct their activation schedules (node ids are activation ranks).

    The activation counter is *per execution*: the simulator calls
    :meth:`fresh` before every run, so reusing one factory across a
    multi-seed batch applies the crash schedule to every trial (a shared
    counter would silently stop crashing nodes after the first execution),
    and a parallel batch behaves identically to a serial one.
    """

    inner_factory: ProtocolFactory
    schedule: CrashSchedule
    _next_index: int = 0

    def fresh(self) -> "CrashableProtocolFactory":
        """A copy with the activation counter reset (one per execution)."""
        return CrashableProtocolFactory(self.inner_factory, self.schedule)

    def __call__(self, context: ProtocolContext) -> SynchronizationProtocol:
        node_index = self._next_index
        self._next_index += 1
        inner = self.inner_factory(context)
        crash_round = self.schedule.crash_round_for(node_index)
        if crash_round is None:
            return inner
        return MutedProtocol(inner, crash_round)


def crashable(inner_factory: ProtocolFactory, schedule: CrashSchedule) -> ProtocolFactory:
    """Wrap a protocol factory with fail-silent crash injection."""
    return CrashableProtocolFactory(inner_factory, schedule)
