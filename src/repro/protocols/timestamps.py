"""Re-export of :mod:`repro.timestamps` under its historical location.

Timestamps are used both by the radio message definitions and by the
protocols, so the implementation lives at the top level of the package; this
module keeps the ``repro.protocols.timestamps`` import path working.
"""

from repro.timestamps import DEFAULT_UID_RANGE_MULTIPLIER, Timestamp, draw_uid

__all__ = ["DEFAULT_UID_RANGE_MULTIPLIER", "Timestamp", "draw_uid"]
