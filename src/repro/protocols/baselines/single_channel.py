"""Single-channel ALOHA baseline.

What happens if a protocol ignores the multi-frequency structure entirely and
runs a slotted-ALOHA style contention on frequency 1?  It uses the Trapdoor's
epoch-doubling broadcast probabilities (so the contention resolution itself is
sound), but because every message rides on one channel, an adversary with any
budget ``t ≥ 1`` that chooses to sit on that channel silences the protocol
forever.  The ``baselines`` benchmark runs it against both a random jammer
(sometimes survives) and the fixed-band jammer (never survives), illustrating
why frequency diversity is not optional in the disrupted model.
"""

from __future__ import annotations

from repro.protocols.base import BoundProtocolFactory, ProtocolContext
from repro.protocols.baselines.base import ContentionBaseline
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.radio.actions import RadioAction, broadcast, listen


class SingleChannelAlohaProtocol(ContentionBaseline):
    """Epoch-doubling contention confined to frequency 1.

    Parameters
    ----------
    context:
        The node's protocol context.
    channel:
        The single frequency everything runs on (default 1).
    victory_rounds:
        Contention horizon; defaults to the Trapdoor schedule's total length so
        the comparison against the Trapdoor protocol is apples-to-apples.
    """

    def __init__(
        self,
        context: ProtocolContext,
        channel: int = 1,
        victory_rounds: int | None = None,
    ) -> None:
        # Build the Trapdoor schedule just for its probability ladder/horizon.
        self._schedule = TrapdoorSchedule(context.params, TrapdoorConfig())
        super().__init__(
            context,
            victory_rounds=victory_rounds or self._schedule.total_rounds,
        )
        self.channel = context.params.band.validate(channel)

    @classmethod
    def factory(cls, channel: int = 1, victory_rounds: int | None = None):
        """A protocol factory for the single-channel baseline."""

        return BoundProtocolFactory(cls, (channel, victory_rounds))

    def contender_action(self) -> RadioAction:
        rng = self.context.rng
        probability = self._schedule.broadcast_probability(self.context.local_round)
        if rng.random() < probability:
            return broadcast(self.channel, self.identity_message())
        return listen(self.channel)

    def listening_frequency(self) -> int:
        return self.channel

    def leader_frequency(self) -> int:
        return self.channel
