"""Baseline protocols the paper's contributions are compared against."""

from repro.protocols.baselines.base import ContentionBaseline, default_victory_rounds
from repro.protocols.baselines.decay_wakeup import DecayWakeupProtocol
from repro.protocols.baselines.round_robin import RoundRobinSweepProtocol
from repro.protocols.baselines.single_channel import SingleChannelAlohaProtocol
from repro.protocols.baselines.uniform_wakeup import UniformWakeupProtocol

__all__ = [
    "ContentionBaseline",
    "default_victory_rounds",
    "DecayWakeupProtocol",
    "RoundRobinSweepProtocol",
    "SingleChannelAlohaProtocol",
    "UniformWakeupProtocol",
]
