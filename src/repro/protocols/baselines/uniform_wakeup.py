"""Fixed-probability wake-up baseline.

The simplest randomized contention strategy from the wake-up literature (§4):
every round, broadcast with a *fixed* probability ``p`` on a uniformly random
frequency.  Without the paper's epoch-doubling structure the choice of ``p``
must be guessed against the unknown number of participants ``n``: if ``p`` is
too high relative to ``1/n`` the channel collides constantly; if it is too
low, progress is slow.  The ``baselines`` benchmark sweeps ``n`` to show this
mismatch, which is exactly the pathology the Trapdoor epochs remove.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.protocols.base import BoundProtocolFactory, ProtocolContext
from repro.protocols.baselines.base import ContentionBaseline
from repro.radio.actions import RadioAction, broadcast, listen


class UniformWakeupProtocol(ContentionBaseline):
    """Contend with a fixed broadcast probability on a random frequency.

    Parameters
    ----------
    context:
        The node's protocol context.
    broadcast_probability:
        The fixed per-round broadcast probability ``p``.
    victory_rounds:
        Contention horizon (see :class:`ContentionBaseline`).
    """

    def __init__(
        self,
        context: ProtocolContext,
        broadcast_probability: float = 0.1,
        victory_rounds: int | None = None,
    ) -> None:
        super().__init__(context, victory_rounds=victory_rounds)
        if not 0.0 < broadcast_probability <= 1.0:
            raise ConfigurationError(
                f"broadcast_probability must be in (0, 1], got {broadcast_probability}"
            )
        self.broadcast_probability = broadcast_probability

    @classmethod
    def factory(cls, broadcast_probability: float = 0.1, victory_rounds: int | None = None):
        """A protocol factory with the given fixed broadcast probability."""

        return BoundProtocolFactory(cls, (broadcast_probability, victory_rounds))

    def contender_action(self) -> RadioAction:
        rng = self.context.rng
        frequency = rng.randint(1, self.context.params.frequencies)
        if rng.random() < self.broadcast_probability:
            return broadcast(frequency, self.identity_message())
        return listen(frequency)
