"""Exponential-decay wake-up baseline.

A classical contention-resolution idea (decay-style backoff): cycle through
broadcast probabilities ``1/2, 1/4, 1/8, …, 1/N`` and restart the cycle.  At
some point in every cycle the probability is within a factor of two of the
ideal ``1/n``, so a successful uncontested broadcast happens reasonably soon —
but the cycle wastes a ``lg N`` factor compared to knowing ``n``, and nothing
in the strategy handles disrupted frequencies: all channels are used
uniformly regardless of ``t``.
"""

from __future__ import annotations

from repro.protocols.base import BoundProtocolFactory, ProtocolContext
from repro.protocols.baselines.base import ContentionBaseline
from repro.radio.actions import RadioAction, broadcast, listen


class DecayWakeupProtocol(ContentionBaseline):
    """Cycle broadcast probabilities ``1/2, 1/4, …, 1/N`` on random frequencies.

    Parameters
    ----------
    context:
        The node's protocol context.
    victory_rounds:
        Contention horizon (see :class:`~repro.protocols.baselines.base.ContentionBaseline`).
    """

    def __init__(self, context: ProtocolContext, victory_rounds: int | None = None) -> None:
        super().__init__(context, victory_rounds=victory_rounds)
        self._cycle_length = context.params.log_participants

    @classmethod
    def factory(cls, victory_rounds: int | None = None):
        """A protocol factory for the decay baseline."""

        return BoundProtocolFactory(cls, (victory_rounds,))

    def current_probability(self) -> float:
        """The decay probability for the node's current local round."""
        phase = (self.context.local_round - 1) % self._cycle_length
        return 0.5 ** (phase + 1)

    def contender_action(self) -> RadioAction:
        rng = self.context.rng
        frequency = rng.randint(1, self.context.params.frequencies)
        if rng.random() < self.current_probability():
            return broadcast(frequency, self.identity_message())
        return listen(frequency)
