"""Shared machinery for the baseline protocols.

The baselines exist to show what the Trapdoor Protocol's structure (epoch
doubling, the ``F′`` band restriction, the extended final epoch) buys.  They
all share the same leader-election skeleton:

* every node contends by occasionally broadcasting a
  :class:`~repro.radio.messages.ContenderMessage` with its
  ``(rounds_active, uid)`` timestamp;
* a contender that hears a contender with a larger timestamp is knocked out
  and only listens from then on;
* a contender that survives ``victory_rounds`` rounds declares itself leader,
  adopts its own numbering, and broadcasts
  :class:`~repro.radio.messages.LeaderMessage`s with probability 1/2;
* anyone hearing a leader message adopts the numbering.

What differs between baselines is *how* a contender picks its frequency and
broadcast probability each round — exactly the part the paper engineers
carefully.  Concrete baselines override :meth:`ContentionBaseline.contender_action`.

Because the baselines have no analytically justified stopping rule, their
``victory_rounds`` default is deliberately generous; the benchmark tables
report both their latency *and* their agreement/unique-leader rates, which is
where naive stopping rules fall over.
"""

from __future__ import annotations

import enum
import math

from repro.exceptions import ConfigurationError
from repro.protocols.base import ProtocolContext, SynchronizationProtocol, SynchronizedOutputMixin
from repro.protocols.timestamps import Timestamp
from repro.radio.actions import RadioAction, broadcast, listen
from repro.radio.events import ReceptionOutcome
from repro.radio.messages import ContenderMessage, LeaderMessage
from repro.types import Role


class _State(enum.Enum):
    CONTENDER = "contender"
    KNOCKED_OUT = "knocked_out"
    LEADER = "leader"
    SYNCHRONIZED = "synchronized"


def default_victory_rounds(context: ProtocolContext, constant: float = 6.0) -> int:
    """A generous default contention horizon: ``⌈constant · F/(F−t) · lg N⌉`` rounds."""
    params = context.params
    denominator = max(1, params.frequencies - params.disruption_budget)
    return max(
        1,
        math.ceil(constant * params.frequencies / denominator * params.log_participants),
    )


class ContentionBaseline(SynchronizedOutputMixin, SynchronizationProtocol):
    """Leader-election skeleton shared by all baseline protocols.

    Parameters
    ----------
    context:
        The node's protocol context.
    victory_rounds:
        Rounds a contender must survive before declaring itself leader.
        ``None`` uses :func:`default_victory_rounds`.
    leader_broadcast_probability:
        Probability with which the leader announces its numbering each round.
    """

    def __init__(
        self,
        context: ProtocolContext,
        victory_rounds: int | None = None,
        leader_broadcast_probability: float = 0.5,
    ) -> None:
        super().__init__(context)
        if victory_rounds is not None and victory_rounds < 1:
            raise ConfigurationError(f"victory_rounds must be positive, got {victory_rounds}")
        if not 0.0 < leader_broadcast_probability <= 1.0:
            raise ConfigurationError(
                "leader_broadcast_probability must be in (0, 1], got "
                f"{leader_broadcast_probability}"
            )
        self.victory_rounds = victory_rounds or default_victory_rounds(context)
        self.leader_broadcast_probability = leader_broadcast_probability
        self._state = _State.CONTENDER

    # -- what concrete baselines customize -------------------------------------

    def contender_action(self) -> RadioAction:
        """The frequency / broadcast decision of a still-contending node.

        Concrete baselines must return either a listen action or a broadcast
        action carrying :meth:`identity_message`.
        """
        raise NotImplementedError

    def listening_frequency(self) -> int:
        """Where knocked-out and synchronized nodes listen (default: whole band)."""
        return self.context.rng.randint(1, self.context.params.frequencies)

    def leader_frequency(self) -> int:
        """Where a leader announces its numbering (default: whole band)."""
        return self.context.rng.randint(1, self.context.params.frequencies)

    # -- shared skeleton ---------------------------------------------------------

    @property
    def role(self) -> Role:
        mapping = {
            _State.CONTENDER: Role.CONTENDER,
            _State.KNOCKED_OUT: Role.KNOCKED_OUT,
            _State.LEADER: Role.LEADER,
            _State.SYNCHRONIZED: Role.SYNCHRONIZED,
        }
        return mapping[self._state]

    @property
    def state_name(self) -> str:
        """The internal state name (contender / knocked_out / leader / synchronized)."""
        return self._state.value

    def identity_message(self) -> ContenderMessage:
        """The contender message this node broadcasts while contending."""
        return ContenderMessage(timestamp=self.my_timestamp())

    def my_timestamp(self) -> Timestamp:
        """The node's current ``(rounds_active, uid)`` timestamp."""
        return Timestamp(rounds_active=self.context.local_round, uid=self.context.uid)

    def choose_action(self) -> RadioAction:
        rng = self.context.rng
        if self._state is _State.CONTENDER and self.context.local_round > self.victory_rounds:
            self._state = _State.LEADER
            self.adopt_round_number(self.context.local_round)
        if self._state is _State.CONTENDER:
            return self.contender_action()
        if self._state is _State.LEADER:
            frequency = self.leader_frequency()
            if rng.random() < self.leader_broadcast_probability:
                output = self.current_output()
                assert output is not None
                return broadcast(
                    frequency, LeaderMessage(leader_uid=self.context.uid, round_number=output)
                )
            return listen(frequency)
        return listen(self.listening_frequency())

    def on_reception(self, outcome: ReceptionOutcome) -> None:
        message = outcome.message
        if message is None:
            return
        if isinstance(message, LeaderMessage):
            if self._state is not _State.LEADER:
                self._state = _State.SYNCHRONIZED
                self.adopt_round_number(message.round_number)
            return
        if isinstance(message, ContenderMessage) and self._state is _State.CONTENDER:
            if message.timestamp > self.my_timestamp():
                self._state = _State.KNOCKED_OUT
