"""Deterministic round-robin sweep baseline.

A deterministic strawman: node ``u`` broadcasts whenever
``(local_round + uid) mod slots == 0`` (a crude uid-based TDMA slotting) and
sweeps its frequency deterministically through the band.  Determinism removes
collisions only if uids happen to fall in distinct slot classes, and a sweep
is trivially predictable — a sweep jammer aligned with it prevents all
communication.  Its redeeming quality is simplicity; its failure modes
motivate the randomized structure of the paper's protocols.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.protocols.base import BoundProtocolFactory, ProtocolContext
from repro.protocols.baselines.base import ContentionBaseline
from repro.radio.actions import RadioAction, broadcast, listen


class RoundRobinSweepProtocol(ContentionBaseline):
    """Deterministic uid-slotted broadcasts on a sweeping frequency.

    Parameters
    ----------
    context:
        The node's protocol context.
    slots:
        The slotting modulus; a node broadcasts once every ``slots`` rounds.
    victory_rounds:
        Contention horizon (see :class:`~repro.protocols.baselines.base.ContentionBaseline`).
    """

    def __init__(
        self,
        context: ProtocolContext,
        slots: int = 8,
        victory_rounds: int | None = None,
    ) -> None:
        super().__init__(context, victory_rounds=victory_rounds)
        if slots < 1:
            raise ConfigurationError(f"slots must be positive, got {slots}")
        self.slots = slots

    @classmethod
    def factory(cls, slots: int = 8, victory_rounds: int | None = None):
        """A protocol factory for the round-robin baseline."""

        return BoundProtocolFactory(cls, (slots, victory_rounds))

    def my_slot(self) -> int:
        """The slot class this node's uid falls in."""
        return self.context.uid % self.slots

    def current_frequency(self) -> int:
        """The deterministic sweep position for the node's current round."""
        frequencies = self.context.params.frequencies
        return (self.context.local_round + self.context.uid) % frequencies + 1

    def contender_action(self) -> RadioAction:
        frequency = self.current_frequency()
        if self.context.local_round % self.slots == self.my_slot():
            return broadcast(frequency, self.identity_message())
        return listen(frequency)

    def listening_frequency(self) -> int:
        return self.current_frequency()
