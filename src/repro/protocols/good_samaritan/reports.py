"""Samaritan success bookkeeping.

A good samaritan's job (§7.1, "Becoming the leader") is to observe which
contenders get messages through during the critical epoch and to report those
counts back, so contenders can tell whether they have "won" even when the
adversary jams everything they listen on.

:class:`SuccessLedger` is the samaritan-side data structure: it counts
*countable* receptions per contender uid (countable = critical epoch, neither
party's round was special, both nodes were activated in the same round) and
produces the report mapping embedded in outgoing
:class:`~repro.radio.messages.SamaritanMessage`s.
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping


class SuccessLedger:
    """Counts countable contender receptions within one critical epoch."""

    def __init__(self) -> None:
        self._counts: Counter[int] = Counter()
        self._epoch_key: tuple[int, int] | None = None

    def ensure_epoch(self, super_epoch: int, epoch: int) -> None:
        """Reset the ledger when a new critical epoch starts.

        The ledger is scoped to a single ``(super_epoch, epoch)`` pair so that
        successes counted in super-epoch ``k`` never satisfy the (larger)
        threshold of super-epoch ``k+1``.
        """
        key = (super_epoch, epoch)
        if key != self._epoch_key:
            self._counts.clear()
            self._epoch_key = key

    def record(self, contender_uid: int) -> int:
        """Record one countable reception from ``contender_uid``; returns its new count."""
        self._counts[contender_uid] += 1
        return self._counts[contender_uid]

    def count(self, contender_uid: int) -> int:
        """The current count for ``contender_uid``."""
        return self._counts[contender_uid]

    def report(self) -> Mapping[int, int]:
        """A snapshot of all counts, suitable for embedding in a message."""
        return dict(self._counts)

    def best(self) -> tuple[int, int] | None:
        """The ``(uid, count)`` pair with the highest count, or ``None`` if empty."""
        if not self._counts:
            return None
        uid, count = self._counts.most_common(1)[0]
        return uid, count

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __len__(self) -> int:
        return len(self._counts)
