"""The Good Samaritan Protocol (§7).

The protocol has an *optimistic* portion — ``lg F`` super-epochs that finish
quickly when all nodes woke up together and the actual disruption ``t'`` is
small — and a *fallback* portion, a modified Trapdoor protocol with long
epochs, that guarantees termination in every execution.

Roles and transitions
---------------------
* A node starts as a **contender**.  A contender that receives a message from
  another contender is *downgraded* to a **good samaritan** (timestamps are
  ignored in the optimistic portion).
* A **samaritan** that receives a message from another samaritan is knocked
  out and becomes **passive**.
* Samaritans record which contenders reach them during the *critical epoch*
  (epoch ``lg N + 1`` of each super-epoch) in rounds that are not special for
  either party and where both nodes were activated in the same round; they
  embed those counts in their own broadcasts.
* A contender that learns it achieved the success threshold becomes
  **leader**, declares the round numbering, and broadcasts it every round with
  probability 1/2 on the special-round frequency distribution.
* A node that exits the last super-epoch unsynchronized enters the fallback:
  each round it flips a coin and either plays a round of the modified Trapdoor
  protocol (timestamps knock contenders out again) or a special Good Samaritan
  round.  A fallback contender that survives all fallback epochs becomes
  leader.
* Any node that receives a :class:`~repro.radio.messages.LeaderMessage`
  immediately adopts the numbering.
"""

from __future__ import annotations

import enum

from repro.protocols.base import (
    BoundProtocolFactory,
    ProtocolContext,
    SynchronizationProtocol,
    SynchronizedOutputMixin,
)
from repro.protocols.good_samaritan.config import GoodSamaritanConfig
from repro.protocols.good_samaritan.reports import SuccessLedger
from repro.protocols.good_samaritan.schedule import GoodSamaritanSchedule, SchedulePosition
from repro.protocols.timestamps import Timestamp
from repro.radio.actions import RadioAction, broadcast, listen
from repro.radio.events import ReceptionOutcome
from repro.radio.messages import ContenderMessage, LeaderMessage, SamaritanMessage
from repro.types import Frequency, Role


class _State(enum.Enum):
    CONTENDER = "contender"
    SAMARITAN = "samaritan"
    PASSIVE = "passive"
    LEADER = "leader"
    SYNCHRONIZED = "synchronized"


class GoodSamaritanProtocol(SynchronizedOutputMixin, SynchronizationProtocol):
    """Per-node state machine of the Good Samaritan Protocol.

    Parameters
    ----------
    context:
        The node's protocol context (provided by the engine).
    config:
        Protocol constants; defaults to the paper's structure.
    """

    def __init__(self, context: ProtocolContext, config: GoodSamaritanConfig | None = None) -> None:
        super().__init__(context)
        self.config = config or GoodSamaritanConfig()
        self.schedule = GoodSamaritanSchedule(context.params, self.config)
        self._state = _State.CONTENDER
        self._ledger = SuccessLedger()
        self._this_round_special = False
        self._leader_via_fallback = False
        self._downgrade_round: int | None = None

    # -- factory -----------------------------------------------------------

    @classmethod
    def factory(cls, config: GoodSamaritanConfig | None = None):
        """A :data:`~repro.protocols.base.ProtocolFactory` building this protocol."""

        return BoundProtocolFactory(cls, (config,))

    # -- protocol interface --------------------------------------------------

    @property
    def role(self) -> Role:
        mapping = {
            _State.CONTENDER: Role.CONTENDER,
            _State.SAMARITAN: Role.SAMARITAN,
            _State.PASSIVE: Role.PASSIVE,
            _State.LEADER: Role.LEADER,
            _State.SYNCHRONIZED: Role.SYNCHRONIZED,
        }
        return mapping[self._state]

    def choose_action(self) -> RadioAction:
        rng = self.context.rng
        local_round = self.context.local_round
        self._this_round_special = False

        if self._state is _State.LEADER:
            return self._leader_action()
        if self._state in (_State.PASSIVE, _State.SYNCHRONIZED):
            return listen(self._monitoring_frequency())

        position = self.schedule.position_of_round(local_round)
        if position is not None:
            return self._optimistic_action(position)
        return self._fallback_action(local_round)

    def on_reception(self, outcome: ReceptionOutcome) -> None:
        message = outcome.message
        if message is None:
            return
        if isinstance(message, LeaderMessage):
            self._adopt_from_leader(message)
            return
        if self._state is _State.CONTENDER:
            self._contender_reception(message)
        elif self._state is _State.SAMARITAN:
            self._samaritan_reception(message)

    # -- introspection (tests, metrics) ---------------------------------------

    @property
    def state_name(self) -> str:
        """The internal state name."""
        return self._state.value

    @property
    def became_leader_via_fallback(self) -> bool:
        """True if the node won through the modified Trapdoor fallback."""
        return self._leader_via_fallback

    @property
    def downgrade_round(self) -> int | None:
        """The local round this node was downgraded to samaritan, if it was."""
        return self._downgrade_round

    @property
    def success_ledger(self) -> SuccessLedger:
        """The samaritan-side success ledger (exposed for tests)."""
        return self._ledger

    @property
    def in_fallback(self) -> bool:
        """True once this node's local round lies in the fallback portion."""
        return self.schedule.in_fallback(self.context.local_round)

    # -- optimistic portion -----------------------------------------------------

    def _optimistic_action(self, position: SchedulePosition) -> RadioAction:
        rng = self.context.rng
        prefix = self.schedule.prefix_width(position.super_epoch)
        frequencies = self.context.params.frequencies

        if position.epoch <= self.context.params.log_participants:
            # Regular epochs: half the time the super-epoch prefix, half the
            # time the whole band; broadcast with the epoch's probability.
            if rng.random() < self.config.local_band_probability:
                frequency = rng.randint(1, prefix)
            else:
                frequency = rng.randint(1, frequencies)
            probability = self.schedule.broadcast_probability(position.epoch)
            if rng.random() < probability:
                return broadcast(frequency, self._identity_message(special=False))
            return listen(frequency)

        # Critical and report epochs: half the rounds are special.
        if rng.random() < self.config.special_round_probability:
            self._this_round_special = True
            frequency = self._special_frequency()
            if rng.random() < 0.5:
                return broadcast(frequency, self._identity_message(special=True))
            return listen(frequency)

        frequency = rng.randint(1, prefix)
        probability = self.schedule.broadcast_probability(position.epoch)
        if rng.random() < probability:
            return broadcast(frequency, self._identity_message(special=False))
        return listen(frequency)

    def _contender_reception(self, message) -> None:
        if isinstance(message, ContenderMessage):
            # Optimistic portion: any contender message downgrades, timestamps
            # ignored.  Fallback portion: timestamps decide (modified Trapdoor).
            if self.in_fallback:
                if message.timestamp > self._my_timestamp():
                    self._state = _State.PASSIVE
            else:
                self._state = _State.SAMARITAN
                self._downgrade_round = self.context.local_round
            return
        if isinstance(message, SamaritanMessage):
            self._maybe_become_leader(message)

    def _samaritan_reception(self, message) -> None:
        if isinstance(message, SamaritanMessage):
            # A samaritan hearing another samaritan is knocked out.
            self._state = _State.PASSIVE
            return
        if isinstance(message, ContenderMessage):
            self._maybe_record_success(message)

    def _maybe_record_success(self, message: ContenderMessage) -> None:
        position = self.schedule.position_of_round(self.context.local_round)
        if position is None or position.epoch != self.schedule.critical_epoch:
            return
        if message.special or self._this_round_special:
            return
        if message.timestamp.rounds_active != self.context.local_round:
            # The contender was not activated in the same round as this samaritan.
            return
        self._ledger.ensure_epoch(position.super_epoch, position.epoch)
        self._ledger.record(message.timestamp.uid)

    def _maybe_become_leader(self, message: SamaritanMessage) -> None:
        count = message.reports.get(self.context.uid, 0)
        if count <= 0:
            return
        position = self.schedule.position_of_round(self.context.local_round)
        if position is None:
            return
        threshold = self.schedule.success_threshold(position.super_epoch)
        if count >= threshold:
            self._become_leader(via_fallback=False)

    # -- fallback portion ----------------------------------------------------------

    def _fallback_action(self, local_round: int) -> RadioAction:
        rng = self.context.rng
        fallback = self.schedule.fallback_position_of_round(local_round)
        assert fallback is not None  # in_fallback is implied by the caller

        if self._state is _State.CONTENDER and fallback.completed:
            self._become_leader(via_fallback=True)
            return self._leader_action()

        if rng.random() < 0.5:
            # A special Good Samaritan round.
            self._this_round_special = True
            frequency = self._special_frequency()
            if self._state is _State.CONTENDER and rng.random() < 0.5:
                return broadcast(frequency, self._identity_message(special=True))
            if self._state is _State.SAMARITAN and rng.random() < 0.5:
                return broadcast(frequency, self._identity_message(special=True))
            return listen(frequency)

        # A modified Trapdoor round: uniform frequency over the whole band,
        # broadcast with the fallback epoch's probability (contenders only).
        frequency = rng.randint(1, self.context.params.frequencies)
        if self._state is _State.CONTENDER:
            probability = self.schedule.fallback_broadcast_probability(fallback.epoch)
            if rng.random() < probability:
                return broadcast(frequency, self._identity_message(special=False))
        return listen(frequency)

    # -- leader / synchronized ---------------------------------------------------

    def _leader_action(self) -> RadioAction:
        rng = self.context.rng
        frequency = self._special_frequency()
        if rng.random() < self.config.leader_broadcast_probability:
            output = self.current_output()
            assert output is not None
            return broadcast(frequency, LeaderMessage(leader_uid=self.context.uid, round_number=output))
        return listen(frequency)

    def _monitoring_frequency(self) -> Frequency:
        """Where passive / synchronized nodes listen for leader messages."""
        rng = self.context.rng
        if rng.random() < 0.5:
            return self._special_frequency()
        return rng.randint(1, self.context.params.frequencies)

    def _become_leader(self, via_fallback: bool) -> None:
        self._state = _State.LEADER
        self._leader_via_fallback = via_fallback
        self.adopt_round_number(self.context.local_round)

    def _adopt_from_leader(self, message: LeaderMessage) -> None:
        if self._state is _State.LEADER:
            return
        self._state = _State.SYNCHRONIZED
        self.adopt_round_number(message.round_number)

    # -- helpers --------------------------------------------------------------------

    def _my_timestamp(self) -> Timestamp:
        return Timestamp(rounds_active=self.context.local_round, uid=self.context.uid)

    def _identity_message(self, special: bool):
        position = self.schedule.position_of_round(self.context.local_round)
        epoch = position.epoch if position is not None else 0
        if self._state is _State.SAMARITAN:
            return SamaritanMessage(
                timestamp=self._my_timestamp(),
                reports=self._ledger.report(),
                special=special,
            )
        return ContenderMessage(timestamp=self._my_timestamp(), special=special, epoch=epoch)

    def _special_frequency(self) -> Frequency:
        """Draw a frequency from the special-round distribution.

        Choose ``d`` uniformly from ``[1 .. lg F]`` and then a frequency
        uniformly from ``[1 .. 2^d]`` (clamped to the band).
        """
        rng = self.context.rng
        log_f = self.context.params.log_frequencies
        d = rng.randint(1, log_f)
        width = min(2**d, self.context.params.frequencies)
        return rng.randint(1, width)
