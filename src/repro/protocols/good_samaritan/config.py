"""Configuration of the Good Samaritan Protocol (§7).

As with the Trapdoor Protocol, the paper fixes the structure of the protocol
but leaves multiplicative constants inside Θ(·).  :class:`GoodSamaritanConfig`
exposes them, plus the interpretation knobs documented in DESIGN.md §6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.params import ModelParameters


@dataclass(frozen=True)
class GoodSamaritanConfig:
    """Tunable constants of the Good Samaritan Protocol.

    Attributes
    ----------
    epoch_constant:
        Constant ``c`` in the epoch length ``s(k) = ⌈c · 2^k · (lg N)³⌉``
        (Figure 2).
    success_divisor:
        A contender must learn of at least ``s(k) / (2^k · success_divisor)``
        successful rounds in its critical epoch to become leader; the paper
        uses ``2^6 = 64``.
    fallback_multiplier:
        The fallback (modified Trapdoor) epoch length is
        ``fallback_multiplier ×`` the longest optimistic epoch; the paper
        requires "at least four times as long".
    leader_broadcast_probability:
        Probability with which a leader broadcasts its numbering each round.
    local_band_probability:
        Probability of choosing the super-epoch prefix ``[1 .. 2^k]`` rather
        than the whole band in epochs ``1 .. lg N`` (the paper uses 1/2).
    special_round_probability:
        Probability that a round of the last two epochs is designated
        *special* (the paper uses 1/2).
    """

    epoch_constant: float = 0.5
    success_divisor: int = 64
    fallback_multiplier: float = 4.0
    leader_broadcast_probability: float = 0.5
    local_band_probability: float = 0.5
    special_round_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.epoch_constant <= 0:
            raise ConfigurationError(f"epoch_constant must be positive, got {self.epoch_constant}")
        if self.success_divisor < 1:
            raise ConfigurationError(
                f"success_divisor must be at least 1, got {self.success_divisor}"
            )
        if self.fallback_multiplier <= 0:
            raise ConfigurationError(
                f"fallback_multiplier must be positive, got {self.fallback_multiplier}"
            )
        for name in (
            "leader_broadcast_probability",
            "local_band_probability",
            "special_round_probability",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{name} must be in (0, 1], got {value}")

    def validate_against(self, params: ModelParameters) -> None:
        """Check the §7 standing assumption ``t ≤ F/2``.

        The paper notes the protocol "can be modified to work for any constant
        fraction of F"; we keep the original assumption and surface it early.
        """
        if params.disruption_budget > params.frequencies // 2:
            raise ConfigurationError(
                "the Good Samaritan protocol assumes t <= F/2 "
                f"(got t={params.disruption_budget}, F={params.frequencies})"
            )
