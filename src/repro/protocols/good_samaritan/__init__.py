"""The Good Samaritan Protocol (paper §7)."""

from repro.protocols.good_samaritan.config import GoodSamaritanConfig
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.good_samaritan.reports import SuccessLedger
from repro.protocols.good_samaritan.schedule import (
    FallbackPosition,
    GoodSamaritanSchedule,
    SchedulePosition,
)

__all__ = [
    "GoodSamaritanConfig",
    "GoodSamaritanProtocol",
    "SuccessLedger",
    "FallbackPosition",
    "GoodSamaritanSchedule",
    "SchedulePosition",
]
