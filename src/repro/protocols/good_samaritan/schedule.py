"""The Good Samaritan super-epoch / epoch structure (Figure 2 of the paper).

Each node proceeds through ``lg F`` *super-epochs*.  Super-epoch ``k``
consists of ``lg N + 2`` epochs, each of ``s(k) = Θ(2^k · log³ N)`` rounds.
In epoch ``e ≤ lg N`` the broadcast probability is ``2^e / 2N``; the final two
epochs (the *critical* epoch ``lg N + 1`` and the *report* epoch ``lg N + 2``)
use probability 1/2 and may designate rounds as *special*.  A node exiting the
last super-epoch unsynchronized falls back to a modified Trapdoor protocol
whose epochs are at least four times longer than the longest optimistic epoch.

:class:`GoodSamaritanSchedule` materializes this structure for concrete
parameters; the ``fig2`` benchmark renders it as the paper's Figure 2, and the
protocol queries it every round through :meth:`position_of_round`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.params import ModelParameters
from repro.protocols.good_samaritan.config import GoodSamaritanConfig


@dataclass(frozen=True)
class SchedulePosition:
    """Where one local round falls inside the optimistic portion.

    Attributes
    ----------
    super_epoch:
        1-based super-epoch index ``k`` (``1 .. lg F``).
    epoch:
        1-based epoch index within the super-epoch (``1 .. lg N + 2``).
    round_in_epoch:
        1-based round index within the epoch.
    """

    super_epoch: int
    epoch: int
    round_in_epoch: int


@dataclass(frozen=True)
class FallbackPosition:
    """Where one local round falls inside the fallback (modified Trapdoor) portion.

    Attributes
    ----------
    epoch:
        1-based fallback epoch index (``1 .. lg N``); rounds beyond the last
        fallback epoch report the last epoch.
    round_in_epoch:
        1-based round index within the fallback epoch.
    completed:
        True if the node has finished every fallback epoch (and may become
        leader).
    """

    epoch: int
    round_in_epoch: int
    completed: bool


class GoodSamaritanSchedule:
    """The concrete Good Samaritan round structure for given parameters.

    Parameters
    ----------
    params:
        Model parameters ``(F, t, N)``.
    config:
        Protocol constants.
    """

    def __init__(self, params: ModelParameters, config: GoodSamaritanConfig | None = None) -> None:
        self._params = params
        self._config = config or GoodSamaritanConfig()
        self._config.validate_against(params)
        self._log_n = params.log_participants
        self._log_f = params.log_frequencies
        self._epochs_per_super = self._log_n + 2
        self._epoch_lengths = tuple(
            self._epoch_length(k) for k in range(1, self._log_f + 1)
        )
        self._super_epoch_lengths = tuple(
            length * self._epochs_per_super for length in self._epoch_lengths
        )
        self._optimistic_total = sum(self._super_epoch_lengths)
        self._fallback_epoch_length = max(
            1, math.ceil(self._config.fallback_multiplier * self._epoch_lengths[-1])
        )
        self._fallback_total = self._fallback_epoch_length * self._log_n

    def _epoch_length(self, super_epoch: int) -> int:
        log_n = self._log_n
        return max(
            1, math.ceil(self._config.epoch_constant * (2**super_epoch) * log_n**3)
        )

    # -- structure ----------------------------------------------------------

    @property
    def params(self) -> ModelParameters:
        """The model parameters the schedule was built for."""
        return self._params

    @property
    def config(self) -> GoodSamaritanConfig:
        """The constants the schedule was built with."""
        return self._config

    @property
    def super_epoch_count(self) -> int:
        """``lg F`` — the number of super-epochs."""
        return self._log_f

    @property
    def epochs_per_super_epoch(self) -> int:
        """``lg N + 2`` — epochs per super-epoch."""
        return self._epochs_per_super

    @property
    def critical_epoch(self) -> int:
        """The index of the critical epoch (``lg N + 1``)."""
        return self._log_n + 1

    @property
    def report_epoch(self) -> int:
        """The index of the report epoch (``lg N + 2``)."""
        return self._log_n + 2

    @property
    def optimistic_rounds(self) -> int:
        """Total rounds of the optimistic portion (all super-epochs)."""
        return self._optimistic_total

    @property
    def fallback_epoch_length(self) -> int:
        """Length of one fallback (modified Trapdoor) epoch."""
        return self._fallback_epoch_length

    @property
    def fallback_rounds(self) -> int:
        """Total rounds of the fallback portion before a survivor becomes leader."""
        return self._fallback_total

    @property
    def total_rounds(self) -> int:
        """Optimistic plus fallback rounds (the worst-case trajectory)."""
        return self._optimistic_total + self._fallback_total

    def epoch_length(self, super_epoch: int) -> int:
        """``s(k)`` — the epoch length of super-epoch ``k``."""
        if not 1 <= super_epoch <= self._log_f:
            raise ConfigurationError(
                f"super-epoch must be in [1..{self._log_f}], got {super_epoch}"
            )
        return self._epoch_lengths[super_epoch - 1]

    def prefix_width(self, super_epoch: int) -> int:
        """The width of the low-frequency prefix ``[1 .. 2^k]`` used in super-epoch ``k``."""
        if not 1 <= super_epoch <= self._log_f:
            raise ConfigurationError(
                f"super-epoch must be in [1..{self._log_f}], got {super_epoch}"
            )
        return min(2**super_epoch, self._params.frequencies)

    def broadcast_probability(self, epoch: int) -> float:
        """Broadcast probability of epoch ``e`` (``2^e / 2N`` capped at 1/2)."""
        if epoch < 1:
            raise ConfigurationError(f"epoch must be >= 1, got {epoch}")
        if epoch > self._log_n:
            return 0.5
        return min(0.5, (2.0**epoch) / (2.0 * self._params.participant_bound))

    def success_threshold(self, super_epoch: int) -> int:
        """Successful rounds a contender needs in its critical epoch of super-epoch ``k``.

        The paper's rule is ``s(k) / 2^{k+6}``; the divisor ``2^6`` is the
        configurable ``success_divisor``.
        """
        length = self.epoch_length(super_epoch)
        threshold = length / ((2**super_epoch) * self._config.success_divisor)
        return max(1, math.ceil(threshold))

    def expected_adaptive_super_epoch(self, actual_disruption: int) -> int:
        """The super-epoch ``lg(2t')`` by which good executions should finish."""
        if actual_disruption < 0:
            raise ConfigurationError(
                f"actual disruption must be non-negative, got {actual_disruption}"
            )
        target = max(2, 2 * actual_disruption)
        return min(self._log_f, max(1, math.ceil(math.log2(target))))

    def adaptive_round_bound(self, actual_disruption: int) -> int:
        """Rounds to the end of super-epoch ``lg(2t')`` — the Theorem 18 good-case bound."""
        last = self.expected_adaptive_super_epoch(actual_disruption)
        return sum(self._super_epoch_lengths[:last])

    # -- per-round queries ----------------------------------------------------

    def position_of_round(self, local_round: int) -> SchedulePosition | None:
        """The optimistic-portion position of a local round, or ``None`` if in fallback."""
        if local_round < 1:
            raise ConfigurationError(f"local round must be >= 1, got {local_round}")
        remaining = local_round
        for k, super_length in enumerate(self._super_epoch_lengths, start=1):
            if remaining <= super_length:
                epoch_length = self._epoch_lengths[k - 1]
                epoch = (remaining - 1) // epoch_length + 1
                round_in_epoch = (remaining - 1) % epoch_length + 1
                return SchedulePosition(super_epoch=k, epoch=epoch, round_in_epoch=round_in_epoch)
            remaining -= super_length
        return None

    def fallback_position_of_round(self, local_round: int) -> FallbackPosition | None:
        """The fallback-portion position of a local round, or ``None`` if still optimistic."""
        if local_round <= self._optimistic_total:
            return None
        offset = local_round - self._optimistic_total
        epoch = (offset - 1) // self._fallback_epoch_length + 1
        round_in_epoch = (offset - 1) % self._fallback_epoch_length + 1
        if epoch > self._log_n:
            return FallbackPosition(epoch=self._log_n, round_in_epoch=round_in_epoch, completed=True)
        return FallbackPosition(epoch=epoch, round_in_epoch=round_in_epoch, completed=False)

    def in_fallback(self, local_round: int) -> bool:
        """True once a node has exhausted the optimistic portion."""
        return local_round > self._optimistic_total

    def fallback_broadcast_probability(self, epoch: int) -> float:
        """Broadcast probability of fallback epoch ``e`` (same ladder as Trapdoor)."""
        return self.broadcast_probability(min(epoch, self._log_n))

    # -- Figure 2 ---------------------------------------------------------------

    def special_frequency_distribution(self, super_epoch: int) -> dict[int, float]:
        """The per-frequency selection probability in special rounds of super-epoch ``k``.

        This is the closed form printed in Figure 2:
        ``P[f] = (2^{⌊lg(F/f)⌋+1} − 1) / (2 F lg F) + 1/2^{k+1}`` restricted to the
        prefix for the ``1/2^{k+1}`` term — we compute it from the generative
        process (choose ``d`` uniform in ``[1 .. lg F]``, then ``f`` uniform in
        ``[1 .. 2^d]``) mixed 50/50 with the prefix-uniform non-special choice,
        which is the distribution the protocol actually samples from in the
        last two epochs.
        """
        frequencies = self._params.frequencies
        log_f = self._log_f
        prefix = self.prefix_width(super_epoch)
        distribution = {f: 0.0 for f in range(1, frequencies + 1)}
        # Non-special half: uniform over the prefix [1 .. 2^k].
        for f in range(1, prefix + 1):
            distribution[f] += 0.5 / prefix
        # Special half: d uniform in [1 .. lg F], then f uniform in [1 .. 2^d].
        for d in range(1, log_f + 1):
            width = min(2**d, frequencies)
            for f in range(1, width + 1):
                distribution[f] += 0.5 / (log_f * width)
        return distribution

    def describe_rows(self) -> list[dict[str, object]]:
        """Rows for the Figure 2 table: one row per super-epoch."""
        rows = []
        for k in range(1, self._log_f + 1):
            rows.append(
                {
                    "super_epoch": k,
                    "epochs": self._epochs_per_super,
                    "epoch_length": self.epoch_length(k),
                    "prefix_width": self.prefix_width(k),
                    "critical_epoch": self.critical_epoch,
                    "success_threshold": self.success_threshold(k),
                    "super_epoch_rounds": self._super_epoch_lengths[k - 1],
                }
            )
        return rows

    def theoretical_adaptive_bound(self, actual_disruption: int) -> float:
        """``t' · log³N`` — the Theorem 18 good-execution bound without its constant."""
        return max(1, actual_disruption) * float(self._log_n**3)

    def theoretical_worst_case_bound(self) -> float:
        """``F · log³N`` — the Theorem 18 all-executions bound without its constant."""
        return self._params.frequencies * float(self._log_n**3)
