"""The named protocol registry.

Campaign specs, the CLI, and any other declarative surface refer to protocols
by short names ("trapdoor", "good-samaritan", ...).  This registry is the one
place those names are bound to factory constructors, so a name means the same
protocol everywhere and a campaign cell's identity can be derived from the
name alone.

Each registry value is a zero-argument callable returning a *fresh* protocol
factory (the built-in factories are picklable
:class:`~repro.protocols.base.BoundProtocolFactory` objects, which is what
lets campaign cells run on worker processes).
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ConfigurationError
from repro.protocols.base import ProtocolFactory
from repro.protocols.baselines.decay_wakeup import DecayWakeupProtocol
from repro.protocols.baselines.round_robin import RoundRobinSweepProtocol
from repro.protocols.baselines.single_channel import SingleChannelAlohaProtocol
from repro.protocols.baselines.uniform_wakeup import UniformWakeupProtocol
from repro.protocols.fault_tolerant import FaultTolerantTrapdoorProtocol
from repro.protocols.good_samaritan.protocol import GoodSamaritanProtocol
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

#: name -> zero-argument constructor of a fresh (picklable) protocol factory.
PROTOCOL_FACTORIES: dict[str, Callable[[], ProtocolFactory]] = {
    "trapdoor": lambda: TrapdoorProtocol.factory(),
    "good-samaritan": lambda: GoodSamaritanProtocol.factory(),
    "fault-tolerant-trapdoor": lambda: FaultTolerantTrapdoorProtocol.factory(),
    "uniform-wakeup": lambda: UniformWakeupProtocol.factory(),
    "decay-wakeup": lambda: DecayWakeupProtocol.factory(),
    "single-channel": lambda: SingleChannelAlohaProtocol.factory(),
    "round-robin": lambda: RoundRobinSweepProtocol.factory(),
}


def protocol_factory(name: str) -> ProtocolFactory:
    """Build a fresh factory for a registered protocol name."""
    try:
        constructor = PROTOCOL_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOL_FACTORIES))
        raise ConfigurationError(f"unknown protocol {name!r}; known: {known}") from None
    return constructor()
