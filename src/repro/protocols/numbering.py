"""Round numbering schemes.

Once a leader is elected it "chooses a numbering scheme for the rounds"
(§6.1).  The natural choice — and the one we implement — is that the leader
declares the current round to be its own activation age, so the global round
number equals the number of rounds the earliest-activated winner has been
alive.  The scheme is propagated in :class:`~repro.radio.messages.LeaderMessage`
objects that carry the number assigned to the round of transmission; a
receiver adopts it immediately.

:class:`RoundNumbering` is a tiny helper protocols use to convert between
their local round counter and the global numbering once it is known.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RoundNumbering:
    """An affine mapping from a node's local round counter to global round numbers.

    Attributes
    ----------
    local_round:
        A local round of the node holding this numbering ...
    global_number:
        ... and the global round number assigned to that same round.
    """

    local_round: int
    global_number: int

    def __post_init__(self) -> None:
        if self.local_round < 1:
            raise ConfigurationError(
                f"local round must be >= 1, got {self.local_round}"
            )

    def number_for(self, local_round: int) -> int:
        """The global round number of the given local round."""
        return self.global_number + (local_round - self.local_round)

    @classmethod
    def declared_by_leader(cls, leader_local_round: int) -> "RoundNumbering":
        """The numbering a new leader declares: global number := its activation age."""
        return cls(local_round=leader_local_round, global_number=leader_local_round)

    @classmethod
    def adopted_from_message(cls, receiver_local_round: int, announced_number: int) -> "RoundNumbering":
        """The numbering a receiver adopts from a leader message received this round."""
        return cls(local_round=receiver_local_round, global_number=announced_number)
