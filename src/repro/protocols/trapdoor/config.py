"""Configuration of the Trapdoor Protocol (§6).

The paper specifies the protocol up to constant factors ("Θ(·) rounds per
epoch").  :class:`TrapdoorConfig` makes those constants explicit so that
experiments can trade running time against error probability, and so the
ablation benchmarks can switch individual design choices off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.params import ModelParameters


@dataclass(frozen=True)
class TrapdoorConfig:
    """Tunable constants of the Trapdoor Protocol.

    Attributes
    ----------
    epoch_constant:
        The constant in the regular epoch length
        ``⌈epoch_constant · F′/(F′−t) · lg N⌉`` (Figure 1).
    final_epoch_constant:
        The constant in the final epoch length
        ``⌈final_epoch_constant · F′²/(F′−t) · lg N⌉``.
    leader_broadcast_probability:
        Probability with which an elected leader broadcasts its numbering
        message each round (the paper uses 1/2).
    use_effective_band:
        If True (paper behaviour), contenders restrict themselves to the first
        ``F′ = min(F, 2t)`` frequencies; if False they use the whole band —
        the ``ablation_fprime`` benchmark flips this switch.
    use_extended_final_epoch:
        If True (paper behaviour), the last epoch is lengthened to
        ``Θ(F′²/(F′−t) · lg N)``; if False every epoch has the regular length —
        the ``ablation_final_epoch`` benchmark flips this switch.
    synchronized_nodes_assist:
        Optional extension (not in the paper): nodes that adopted the
        numbering from the leader re-broadcast it with probability 1/2,
        accelerating dissemination in large networks.  Off by default to stay
        faithful to §6.
    """

    epoch_constant: float = 2.0
    final_epoch_constant: float = 2.0
    leader_broadcast_probability: float = 0.5
    use_effective_band: bool = True
    use_extended_final_epoch: bool = True
    synchronized_nodes_assist: bool = False

    def __post_init__(self) -> None:
        if self.epoch_constant <= 0:
            raise ConfigurationError(f"epoch_constant must be positive, got {self.epoch_constant}")
        if self.final_epoch_constant <= 0:
            raise ConfigurationError(
                f"final_epoch_constant must be positive, got {self.final_epoch_constant}"
            )
        if not 0.0 < self.leader_broadcast_probability <= 1.0:
            raise ConfigurationError(
                "leader_broadcast_probability must be in (0, 1], got "
                f"{self.leader_broadcast_probability}"
            )

    def effective_frequencies(self, params: ModelParameters) -> int:
        """The number of frequencies contenders use: ``F′`` or ``F`` (ablation)."""
        if self.use_effective_band:
            return params.effective_frequencies
        return params.frequencies
