"""The Trapdoor Protocol (§6).

Every node starts as a *contender* and proceeds through the ``lg N`` epochs of
the :class:`~repro.protocols.trapdoor.epochs.TrapdoorSchedule`.  In each round
a contender picks a uniformly random frequency in ``[1 .. F′]`` and broadcasts
a :class:`~repro.radio.messages.ContenderMessage` carrying its
``(rounds_active, uid)`` timestamp with the epoch's probability, otherwise it
listens.  A contender that hears a contender with a **larger** timestamp falls
through the trapdoor: it is *knocked out* and from then on only listens on a
random frequency in ``[1 .. F′]``.  A contender that survives all epochs
becomes the *leader*, declares the round numbering, and thereafter broadcasts
:class:`~repro.radio.messages.LeaderMessage`s with probability 1/2 on a random
frequency in ``[1 .. F′]``.  Any node that hears a leader message adopts the
numbering immediately.
"""

from __future__ import annotations

import enum

from repro.protocols.base import (
    BoundProtocolFactory,
    ProtocolContext,
    SynchronizationProtocol,
    SynchronizedOutputMixin,
)
from repro.protocols.timestamps import Timestamp
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule
from repro.radio.actions import RadioAction, broadcast, listen
from repro.radio.events import ReceptionOutcome
from repro.radio.messages import ContenderMessage, LeaderMessage
from repro.types import Role


class _State(enum.Enum):
    CONTENDER = "contender"
    KNOCKED_OUT = "knocked_out"
    LEADER = "leader"
    SYNCHRONIZED = "synchronized"


class TrapdoorProtocol(SynchronizedOutputMixin, SynchronizationProtocol):
    """Per-node state machine of the Trapdoor Protocol.

    Parameters
    ----------
    context:
        The node's protocol context (provided by the engine).
    config:
        Protocol constants; defaults to the paper's structure.
    """

    def __init__(self, context: ProtocolContext, config: TrapdoorConfig | None = None) -> None:
        super().__init__(context)
        self.config = config or TrapdoorConfig()
        self.schedule = TrapdoorSchedule(context.params, self.config)
        self._state = _State.CONTENDER
        self._band_width = self.schedule.effective_frequencies
        self._knocked_out_by: Timestamp | None = None

    # -- factory -----------------------------------------------------------

    @classmethod
    def factory(cls, config: TrapdoorConfig | None = None):
        """A :data:`~repro.protocols.base.ProtocolFactory` building this protocol."""

        return BoundProtocolFactory(cls, (config,))

    # -- protocol interface -------------------------------------------------

    @property
    def role(self) -> Role:
        if self._state is _State.LEADER:
            return Role.LEADER
        if self._state is _State.SYNCHRONIZED:
            return Role.SYNCHRONIZED
        if self._state is _State.KNOCKED_OUT:
            return Role.KNOCKED_OUT
        return Role.CONTENDER

    def choose_action(self) -> RadioAction:
        rng = self.context.rng
        local_round = self.context.local_round

        if self._state is _State.CONTENDER and self.schedule.completed(local_round):
            self._become_leader()

        frequency = rng.randint(1, self._band_width)

        if self._state is _State.CONTENDER:
            probability = self.schedule.broadcast_probability(local_round)
            if rng.random() < probability:
                message = ContenderMessage(
                    timestamp=self._my_timestamp(),
                    epoch=self._current_epoch_index(local_round),
                )
                return broadcast(frequency, message)
            return listen(frequency)

        if self._state is _State.LEADER:
            if rng.random() < self.config.leader_broadcast_probability:
                return broadcast(frequency, self._leader_message())
            return listen(frequency)

        if self._state is _State.SYNCHRONIZED and self.config.synchronized_nodes_assist:
            output = self.current_output()
            if output is not None and rng.random() < 0.5:
                return broadcast(frequency, LeaderMessage(leader_uid=self.context.uid, round_number=output))
            return listen(frequency)

        # Knocked out (or synchronized without the assist extension): listen.
        return listen(frequency)

    def on_reception(self, outcome: ReceptionOutcome) -> None:
        message = outcome.message
        if message is None:
            return
        if isinstance(message, LeaderMessage):
            self._adopt_from_leader(message)
            return
        if isinstance(message, ContenderMessage) and self._state is _State.CONTENDER:
            if message.timestamp > self._my_timestamp():
                self._state = _State.KNOCKED_OUT
                self._knocked_out_by = message.timestamp

    # -- introspection (used by tests and metrics) ---------------------------

    @property
    def state_name(self) -> str:
        """The internal state name (contender / knocked_out / leader / synchronized)."""
        return self._state.value

    @property
    def knocked_out_by(self) -> Timestamp | None:
        """The timestamp that knocked this node out, if any."""
        return self._knocked_out_by

    # -- internals ------------------------------------------------------------

    def _my_timestamp(self) -> Timestamp:
        return Timestamp(rounds_active=self.context.local_round, uid=self.context.uid)

    def _current_epoch_index(self, local_round: int) -> int:
        epoch = self.schedule.epoch_of_round(local_round)
        return epoch.index if epoch is not None else self.schedule.epoch_count

    def _become_leader(self) -> None:
        self._state = _State.LEADER
        # The leader numbers rounds by its own activation age.
        self.adopt_round_number(self.context.local_round)

    def _leader_message(self) -> LeaderMessage:
        output = self.current_output()
        assert output is not None  # leaders always have a committed number
        return LeaderMessage(leader_uid=self.context.uid, round_number=output)

    def _adopt_from_leader(self, message: LeaderMessage) -> None:
        if self._state is _State.LEADER:
            # A second leader hearing the first adopts nothing; uniqueness is
            # guaranteed w.h.p. by the analysis, and the checker will flag
            # disagreement if it ever happens with unlucky constants.
            return
        if self._state is not _State.SYNCHRONIZED:
            self._state = _State.SYNCHRONIZED
        self.adopt_round_number(message.round_number)
