"""The Trapdoor Protocol (paper §6)."""

from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import EpochSpec, TrapdoorSchedule
from repro.protocols.trapdoor.protocol import TrapdoorProtocol

__all__ = ["TrapdoorConfig", "EpochSpec", "TrapdoorSchedule", "TrapdoorProtocol"]
