"""The Trapdoor Protocol epoch schedule (Figure 1 of the paper).

A contender proceeds through ``lg N`` epochs.  The first ``lg N − 1`` epochs
have length ``Θ(F′/(F′−t) · lg N)``; the final epoch has length
``Θ(F′²/(F′−t) · lg N)``.  The broadcast probability in epoch ``e`` is
``2^e / (2N)`` — i.e. ``1/N, 2/N, …, 1/4, 1/2``.

:class:`TrapdoorSchedule` materializes that structure for concrete parameters
and answers the two questions the protocol asks every round: *which epoch am I
in?* and *what is my broadcast probability?*  The ``fig1`` benchmark renders
the schedule as the paper's Figure 1 table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.params import ModelParameters
from repro.protocols.trapdoor.config import TrapdoorConfig


@dataclass(frozen=True)
class EpochSpec:
    """One epoch of the Trapdoor schedule.

    Attributes
    ----------
    index:
        1-based epoch number.
    length:
        Number of rounds in the epoch.
    broadcast_probability:
        Probability with which a contender broadcasts in each round of the epoch.
    is_final:
        Whether this is the (extended) final epoch.
    """

    index: int
    length: int
    broadcast_probability: float
    is_final: bool


class TrapdoorSchedule:
    """The concrete epoch schedule for given model parameters.

    Parameters
    ----------
    params:
        Model parameters ``(F, t, N)``.
    config:
        Trapdoor constants.
    """

    def __init__(self, params: ModelParameters, config: TrapdoorConfig | None = None) -> None:
        self._params = params
        self._config = config or TrapdoorConfig()
        self._epochs = self._build()
        self._total_rounds = sum(epoch.length for epoch in self._epochs)

    def _build(self) -> tuple[EpochSpec, ...]:
        params, config = self._params, self._config
        f_prime = config.effective_frequencies(params)
        budget = params.disruption_budget
        if f_prime <= budget:
            # Only possible in the ablation that forces the full band off; the
            # regular construction guarantees F' > t.
            raise ConfigurationError(
                f"effective band F'={f_prime} must exceed the disruption budget t={budget}"
            )
        log_n = params.log_participants
        epoch_count = max(1, log_n)

        regular_length = max(
            1, math.ceil(config.epoch_constant * f_prime / (f_prime - budget) * log_n)
        )
        final_length = max(
            1,
            math.ceil(
                config.final_epoch_constant * f_prime * f_prime / (f_prime - budget) * log_n
            ),
        )
        if not config.use_extended_final_epoch:
            final_length = regular_length

        epochs = []
        for index in range(1, epoch_count + 1):
            is_final = index == epoch_count
            probability = min(0.5, (2.0**index) / (2.0 * params.participant_bound))
            epochs.append(
                EpochSpec(
                    index=index,
                    length=final_length if is_final else regular_length,
                    broadcast_probability=probability,
                    is_final=is_final,
                )
            )
        return tuple(epochs)

    # -- structure ---------------------------------------------------------

    @property
    def params(self) -> ModelParameters:
        """The model parameters the schedule was built for."""
        return self._params

    @property
    def config(self) -> TrapdoorConfig:
        """The constants the schedule was built with."""
        return self._config

    @property
    def epochs(self) -> tuple[EpochSpec, ...]:
        """All epochs, in order."""
        return self._epochs

    @property
    def epoch_count(self) -> int:
        """The number of epochs (``lg N``)."""
        return len(self._epochs)

    @property
    def total_rounds(self) -> int:
        """Total number of rounds a contender spends before becoming leader."""
        return self._total_rounds

    @property
    def effective_frequencies(self) -> int:
        """The number of frequencies contenders use (``F′`` unless ablated)."""
        return self._config.effective_frequencies(self._params)

    def epoch_of_round(self, local_round: int) -> EpochSpec | None:
        """The epoch containing the given 1-based contender round.

        Returns ``None`` if the round lies beyond the last epoch (the
        contender should already be a leader by then).
        """
        if local_round < 1:
            raise ConfigurationError(f"local round must be >= 1, got {local_round}")
        remaining = local_round
        for epoch in self._epochs:
            if remaining <= epoch.length:
                return epoch
            remaining -= epoch.length
        return None

    def broadcast_probability(self, local_round: int) -> float:
        """The broadcast probability of the epoch containing ``local_round``.

        Rounds beyond the schedule use the final epoch's probability.
        """
        epoch = self.epoch_of_round(local_round)
        return epoch.broadcast_probability if epoch is not None else self._epochs[-1].broadcast_probability

    def completed(self, local_round: int) -> bool:
        """True once a contender has completed every epoch (and becomes leader)."""
        return local_round > self._total_rounds

    def theoretical_round_bound(self) -> float:
        """The Theorem 10 upper-bound formula evaluated for these parameters.

        ``O(F/(F−t)·log²N + F·t/(F−t)·log N)`` — returned without the hidden
        constant, for use by the scaling experiments.
        """
        params = self._params
        frequencies = params.frequencies
        budget = params.disruption_budget
        log_n = params.log_participants
        denominator = max(1, frequencies - budget)
        return (frequencies / denominator) * log_n * log_n + (
            frequencies * budget / denominator
        ) * log_n

    def describe_rows(self) -> list[dict[str, object]]:
        """Rows for the Figure 1 table: epoch number, length, broadcast probability."""
        return [
            {
                "epoch": epoch.index,
                "length": epoch.length,
                "broadcast_probability": epoch.broadcast_probability,
                "final": epoch.is_final,
            }
            for epoch in self._epochs
        ]
