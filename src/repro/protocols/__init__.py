"""Synchronization protocols: the paper's contributions and the baselines."""

from repro.protocols.base import (
    ProtocolContext,
    ProtocolFactory,
    SynchronizationProtocol,
    SynchronizedOutputMixin,
)
from repro.protocols.baselines import (
    ContentionBaseline,
    DecayWakeupProtocol,
    RoundRobinSweepProtocol,
    SingleChannelAlohaProtocol,
    UniformWakeupProtocol,
)
from repro.protocols.fault_tolerant import (
    CrashSchedule,
    FaultToleranceConfig,
    FaultTolerantTrapdoorProtocol,
    MutedProtocol,
    crashable,
)
from repro.protocols.good_samaritan import (
    GoodSamaritanConfig,
    GoodSamaritanProtocol,
    GoodSamaritanSchedule,
)
from repro.protocols.numbering import RoundNumbering
from repro.protocols.timestamps import Timestamp, draw_uid
from repro.protocols.trapdoor import TrapdoorConfig, TrapdoorProtocol, TrapdoorSchedule

__all__ = [
    "ProtocolContext",
    "ProtocolFactory",
    "SynchronizationProtocol",
    "SynchronizedOutputMixin",
    "ContentionBaseline",
    "DecayWakeupProtocol",
    "RoundRobinSweepProtocol",
    "SingleChannelAlohaProtocol",
    "UniformWakeupProtocol",
    "CrashSchedule",
    "FaultToleranceConfig",
    "FaultTolerantTrapdoorProtocol",
    "MutedProtocol",
    "crashable",
    "GoodSamaritanConfig",
    "GoodSamaritanProtocol",
    "GoodSamaritanSchedule",
    "RoundNumbering",
    "Timestamp",
    "draw_uid",
    "TrapdoorConfig",
    "TrapdoorProtocol",
    "TrapdoorSchedule",
]
