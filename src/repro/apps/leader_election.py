"""Leader election as a by-product of wireless synchronization.

Both of the paper's protocols elect a unique leader on the way to establishing
the round numbering (§8, "Broader implications": "our protocols elect a unique
leader as a sub-problem").  This module extracts that by-product from a
finished execution and exposes it in the form applications want: who leads,
who follows, and whether the election was clean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.results import SimulationResult
from repro.engine.trace import ExecutionTrace
from repro.types import NodeId, Role


@dataclass(frozen=True)
class ElectionOutcome:
    """The leader-election view of a finished execution.

    Attributes
    ----------
    leaders:
        Node ids that ever acted as leader, in order of first appearance.
    followers:
        Node ids that synchronized without becoming leader.
    election_round:
        Global round in which the first leader appeared, or ``None``.
    clean:
        True if exactly one leader was ever elected.
    """

    leaders: tuple[NodeId, ...]
    followers: tuple[NodeId, ...]
    election_round: int | None
    clean: bool

    @property
    def leader(self) -> NodeId | None:
        """The unique leader if the election was clean, else ``None``."""
        return self.leaders[0] if self.clean and self.leaders else None


def extract_election(trace: ExecutionTrace) -> ElectionOutcome:
    """Derive the election outcome from an execution trace."""
    trace.require_complete("extract_election")
    leaders: list[NodeId] = []
    election_round: int | None = None
    for record in trace:
        for node_id in record.leader_nodes():
            if node_id not in leaders:
                leaders.append(node_id)
                if election_round is None:
                    election_round = record.global_round
    followers = tuple(
        node_id
        for node_id in trace.node_ids
        if node_id not in leaders and trace.sync_round_of(node_id) is not None
    )
    return ElectionOutcome(
        leaders=tuple(leaders),
        followers=followers,
        election_round=election_round,
        clean=len(leaders) == 1,
    )


def election_from_result(result: SimulationResult) -> ElectionOutcome:
    """Convenience wrapper for :func:`extract_election` on a simulation result."""
    if result.trace is None:
        raise ValueError(
            "election_from_result requires a trace; "
            "run the simulation with TraceLevel.FULL"
        )
    return extract_election(result.trace)


def leadership_tenure(trace: ExecutionTrace, node_id: NodeId) -> int:
    """The number of rounds ``node_id`` spent in the leader role."""
    trace.require_complete("leadership_tenure")
    return sum(1 for record in trace if record.roles.get(node_id) is Role.LEADER)
