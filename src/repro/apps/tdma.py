"""TDMA slot assignment on top of a shared round numbering.

Once rounds are globally numbered, a group of ``n`` devices can avoid
collisions entirely by time-division: device ``i`` transmits only in rounds
``r`` with ``r mod n == slot(i)``.  This module provides the slot arithmetic
and a small conflict checker; the ``tdma`` example wires it to a finished
synchronization run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class TdmaSchedule:
    """A TDMA schedule mapping device uids to slots of a shared round cycle.

    Attributes
    ----------
    slots:
        Mapping from device uid to its slot index in ``[0 .. cycle_length)``.
    cycle_length:
        The cycle length (usually the number of devices).
    """

    slots: Mapping[int, int]
    cycle_length: int

    def __post_init__(self) -> None:
        if self.cycle_length < 1:
            raise ConfigurationError(f"cycle length must be positive, got {self.cycle_length}")
        for uid, slot in self.slots.items():
            if not 0 <= slot < self.cycle_length:
                raise ConfigurationError(
                    f"slot {slot} of device {uid} outside [0..{self.cycle_length})"
                )

    @classmethod
    def round_robin(cls, uids: Sequence[int]) -> "TdmaSchedule":
        """Assign slots by sorted uid order — the canonical deterministic assignment.

        Every device can compute this locally from the set of uids (collected,
        for example, during the maintenance rounds the paper mentions), so no
        extra coordination is needed.
        """
        if not uids:
            raise ConfigurationError("need at least one device")
        unique = sorted(set(uids))
        if len(unique) != len(uids):
            raise ConfigurationError("device uids must be unique")
        return cls(slots={uid: index for index, uid in enumerate(unique)}, cycle_length=len(unique))

    def slot_of(self, uid: int) -> int:
        """The slot of a device (raises ``KeyError`` for unknown uids)."""
        return self.slots[uid]

    def may_transmit(self, uid: int, round_number: int) -> bool:
        """True if ``uid`` owns the slot of the given shared round number."""
        if round_number < 0:
            raise ConfigurationError(f"round number must be non-negative, got {round_number}")
        return round_number % self.cycle_length == self.slots[uid]

    def transmitters_in_round(self, round_number: int) -> tuple[int, ...]:
        """All uids allowed to transmit in a round (at most one per slot)."""
        return tuple(
            sorted(uid for uid in self.slots if self.may_transmit(uid, round_number))
        )

    def is_collision_free(self, round_range: range) -> bool:
        """True if no round in the range has two permitted transmitters.

        This holds by construction when every device has a distinct slot; the
        checker exists to validate hand-built schedules.
        """
        return all(len(self.transmitters_in_round(r)) <= 1 for r in round_range)

    def next_transmission_round(self, uid: int, not_before: int) -> int:
        """The first round ``≥ not_before`` in which ``uid`` may transmit."""
        if not_before < 0:
            raise ConfigurationError(f"not_before must be non-negative, got {not_before}")
        slot = self.slots[uid]
        offset = (slot - not_before) % self.cycle_length
        return not_before + offset
