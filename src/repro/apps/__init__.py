"""Applications built on a shared round numbering (paper §1 and §8)."""

from repro.apps.counting import (
    CountingWindow,
    announcement_slot,
    recommended_window_length,
    simulate_counting_window,
    undercount_probability,
    windows_to_count_all,
)
from repro.apps.frequency_hopping import FrequencyHopper
from repro.apps.group_key import GroupKeySchedule
from repro.apps.leader_election import (
    ElectionOutcome,
    election_from_result,
    extract_election,
    leadership_tenure,
)
from repro.apps.tdma import TdmaSchedule

__all__ = [
    "CountingWindow",
    "announcement_slot",
    "recommended_window_length",
    "simulate_counting_window",
    "undercount_probability",
    "windows_to_count_all",
    "FrequencyHopper",
    "GroupKeySchedule",
    "ElectionOutcome",
    "election_from_result",
    "extract_election",
    "leadership_tenure",
    "TdmaSchedule",
]
