"""Participant counting in numbered rounds.

The paper lists "count the currently participating devices" among the
maintenance protocols a shared round numbering enables (§1).  This module
implements the simplest such protocol on top of synchronized rounds: during a
designated counting window each device announces itself with a collision-
avoiding random backoff keyed to the shared round number, and every device
that hears the announcements ends up with (a lower bound on) the participant
count.

Because the repository's focus is the synchronization layer, the counting
protocol runs *after* synchronization on a quiet band: it assumes the shared
round numbering is already in place and demonstrates what it is for.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class CountingWindow:
    """A maintenance window in the shared round numbering.

    Attributes
    ----------
    period:
        The window recurs every ``period`` rounds (the paper's "every round r
        such that r mod k = 0").
    length:
        How many rounds each window lasts.
    """

    period: int
    length: int

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be positive, got {self.period}")
        if not 1 <= self.length <= self.period:
            raise ConfigurationError(
                f"length must be in [1..period], got {self.length} (period {self.period})"
            )

    def is_counting_round(self, round_number: int) -> bool:
        """True if the shared round number falls inside a counting window."""
        if round_number < 0:
            raise ConfigurationError(f"round number must be non-negative, got {round_number}")
        return round_number % self.period < self.length

    def window_index(self, round_number: int) -> int:
        """Which occurrence of the window a round belongs to."""
        return round_number // self.period

    def slot_within_window(self, round_number: int) -> int | None:
        """The 0-based slot inside the window, or ``None`` outside it."""
        if not self.is_counting_round(round_number):
            return None
        return round_number % self.period


def announcement_slot(uid: int, window_index: int, window_length: int, seed: int = 0) -> int:
    """The deterministic pseudorandom slot a device announces in.

    All devices use the same hash construction, so a device can also predict
    *other* devices' slots once it knows their uids — useful for building the
    TDMA schedule of :mod:`repro.apps.tdma` afterwards.
    """
    if window_length < 1:
        raise ConfigurationError(f"window length must be positive, got {window_length}")
    rng = random.Random((seed, uid, window_index).__hash__())
    return rng.randrange(window_length)


def simulate_counting_window(
    uids: Sequence[int],
    window_index: int,
    window_length: int,
    seed: int = 0,
) -> tuple[int, ...]:
    """Which devices announce without collision in one counting window.

    Devices that pick the same slot collide and are not counted this window;
    repeated windows (with different indices) count them eventually.
    """
    if len(set(uids)) != len(uids):
        raise ConfigurationError("device uids must be unique")
    slots: dict[int, list[int]] = {}
    for uid in uids:
        slot = announcement_slot(uid, window_index, window_length, seed)
        slots.setdefault(slot, []).append(uid)
    counted = [occupants[0] for occupants in slots.values() if len(occupants) == 1]
    return tuple(sorted(counted))


def windows_to_count_all(
    uids: Sequence[int],
    window_length: int,
    seed: int = 0,
    max_windows: int = 1_000,
) -> int:
    """How many counting windows are needed until every device has been heard once."""
    remaining = set(uids)
    for window_index in range(max_windows):
        if not remaining:
            return window_index
        counted = simulate_counting_window(sorted(remaining), window_index, window_length, seed)
        remaining -= set(counted)
    raise ConfigurationError(
        f"{len(remaining)} devices still uncounted after {max_windows} windows"
    )


def recommended_window_length(expected_devices: int) -> int:
    """A window length giving each device a constant success probability per window.

    With ``L ≈ e·n`` slots a device announces alone with probability about
    ``(1 − 1/L)^{n−1} ≈ e^{-1/e}``; we round up to the next power of two for
    convenient slotting.
    """
    if expected_devices < 1:
        raise ConfigurationError(f"expected_devices must be positive, got {expected_devices}")
    target = max(2, math.ceil(math.e * expected_devices))
    return 2 ** math.ceil(math.log2(target))


def undercount_probability(device_count: int, window_length: int) -> float:
    """Probability a specific device collides in one window (is not counted)."""
    if device_count < 1:
        raise ConfigurationError(f"device_count must be positive, got {device_count}")
    if window_length < 1:
        raise ConfigurationError(f"window_length must be positive, got {window_length}")
    return 1.0 - (1.0 - 1.0 / window_length) ** (device_count - 1)
