"""Toy group-key agreement driven by the shared round numbering.

The paper cites group-key establishment (its companion work, "Secure
communication over radio channels") as one of the maintenance protocols a
shared round numbering enables.  Reproducing that paper is out of scope; this
module provides a deliberately simple stand-in that demonstrates the
*interface*: once rounds are numbered, the group can run a deterministic
key-evolution schedule — every device derives the same per-epoch key from the
group secret and the shared round number, and re-keys at the same instant.

The construction is a hash chain, not a cryptographic contribution; it exists
so the examples can show a complete "synchronize, then coordinate" pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class GroupKeySchedule:
    """Derives per-epoch group keys from a shared secret and the round number.

    Attributes
    ----------
    group_secret:
        The initial shared secret (distributed out of band or via the key
        agreement protocol of the companion paper).
    rekey_period:
        The key changes every ``rekey_period`` shared rounds.
    """

    group_secret: bytes
    rekey_period: int

    def __post_init__(self) -> None:
        if not self.group_secret:
            raise ConfigurationError("the group secret must be non-empty")
        if self.rekey_period < 1:
            raise ConfigurationError(f"rekey period must be positive, got {self.rekey_period}")

    def epoch_of_round(self, round_number: int) -> int:
        """The key epoch a shared round number belongs to."""
        if round_number < 0:
            raise ConfigurationError(f"round number must be non-negative, got {round_number}")
        return round_number // self.rekey_period

    def key_for_epoch(self, epoch: int) -> bytes:
        """The group key of a key epoch (a hash chain over the secret)."""
        if epoch < 0:
            raise ConfigurationError(f"epoch must be non-negative, got {epoch}")
        digest = hashlib.sha256(self.group_secret)
        digest.update(b"wireless-sync-group-key")
        digest.update(str(epoch).encode("utf-8"))
        return digest.digest()

    def key_for_round(self, round_number: int) -> bytes:
        """The group key in force at a shared round number."""
        return self.key_for_epoch(self.epoch_of_round(round_number))

    def keys_match(self, my_round: int, their_round: int) -> bool:
        """Whether two devices with these round numbers derive the same key.

        Synchronized devices (equal round numbers) always match; devices whose
        clocks differ only match while they happen to sit in the same key
        epoch, which is exactly the failure mode synchronization removes.
        """
        return self.key_for_round(my_round) == self.key_for_round(their_round)
