"""Pseudorandom frequency hopping on top of a shared round numbering.

The introduction motivates synchronization with Bluetooth-style frequency
hopping: once every device agrees on the round number, they can all derive
the same pseudorandom hop sequence and meet on the same channel every round —
without any further coordination messages.

:class:`FrequencyHopper` is that derivation.  Two devices that share the round
number (and the group key / seed) always compute the same frequency; a device
with a stale or wrong round number lands on the wrong channel, which is how
the example scripts visualize the value of synchronization.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.radio.frequencies import FrequencyBand
from repro.types import Frequency


@dataclass(frozen=True)
class FrequencyHopper:
    """Derives a pseudorandom hop sequence from a shared seed and round number.

    Attributes
    ----------
    band:
        The frequency band to hop over.
    seed:
        A shared group secret / session identifier.  All devices of the group
        must use the same value.
    avoid:
        Frequencies to exclude from the hop set (e.g. channels known to carry
        persistent interference).  Must leave at least one usable frequency.
    """

    band: FrequencyBand
    seed: int
    avoid: frozenset[Frequency] = frozenset()

    def __post_init__(self) -> None:
        usable = [f for f in self.band if f not in self.avoid]
        if not usable:
            raise ConfigurationError("the avoid set excludes every frequency in the band")

    def usable_frequencies(self) -> tuple[Frequency, ...]:
        """The frequencies the hop sequence draws from."""
        return tuple(f for f in self.band if f not in self.avoid)

    def frequency_for_round(self, round_number: int) -> Frequency:
        """The hop frequency for a given shared round number."""
        if round_number < 0:
            raise ConfigurationError(f"round number must be non-negative, got {round_number}")
        usable = self.usable_frequencies()
        digest = hashlib.sha256(f"{self.seed}:{round_number}".encode("utf-8")).digest()
        index = int.from_bytes(digest[:8], "big") % len(usable)
        return usable[index]

    def hop_sequence(self, start_round: int, length: int) -> tuple[Frequency, ...]:
        """The hop frequencies for ``length`` consecutive rounds."""
        if length < 0:
            raise ConfigurationError(f"length must be non-negative, got {length}")
        return tuple(self.frequency_for_round(start_round + offset) for offset in range(length))

    def rendezvous_rate(self, other_round_offset: int, start_round: int, length: int) -> float:
        """Fraction of rounds two devices meet if one is off by ``other_round_offset`` rounds.

        With offset 0 (synchronized) the rate is 1.0; with a non-zero offset the
        devices hop independently and meet only by chance (≈ 1/|usable|).
        """
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length}")
        matches = 0
        for offset in range(length):
            mine = self.frequency_for_round(start_round + offset)
            theirs = self.frequency_for_round(start_round + offset + other_round_offset)
            if mine == theirs:
                matches += 1
        return matches / length
