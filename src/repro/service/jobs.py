"""Service-side job records and the admission-controlled priority queue.

A :class:`Job` wraps one accepted :class:`~repro.service.protocol.JobRequest`
with everything the service tracks about it: lifecycle state, a cooperative
cancellation flag (checked at cell/candidate commit boundaries, so a
cancelled job always leaves a clean resumable prefix), the buffered progress
records streamed to ``watch`` subscribers, and timestamps.

The :class:`JobQueue` is deliberately tiny and thread-safe rather than
asyncio-native: the asyncio front end enqueues from the event-loop thread and
the executor thread blocks on :meth:`JobQueue.pop`, so a plain
:class:`threading.Condition` is the whole coordination story.  Admission
control is a hard bound on *queued* jobs (running and finished ones are
free): past the bound, :meth:`JobQueue.offer` raises :class:`AdmissionError`
and the client gets an immediate refusal instead of unbounded buffering —
per-submission coordination stays O(1) no matter how many clients pile on.
Priorities are ``(-priority, seq)`` ordered: higher priority first,
submission order within a priority.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

from repro.exceptions import ReproError
from repro.service.protocol import JobRequest


class AdmissionError(ReproError):
    """The queue refused a submission (admission control bound reached)."""


class JobCancelled(ReproError):
    """Raised inside the executor at a commit boundary of a cancelled job."""


class JobState(str, Enum):
    """Lifecycle of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the job can never run again under this id."""
        return self in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One accepted submission and everything the service tracks about it.

    The ``events`` buffer and ``subscribers`` set are owned by the service's
    event-loop thread (the executor publishes into them via
    ``call_soon_threadsafe``), which serializes buffer appends against
    ``watch`` subscriptions without a lock.  Scalar fields (``state``,
    timestamps, ``error``, ``result``) are written by one thread at a time
    and read freely — torn reads are impossible for attribute rebinding.
    """

    id: str
    seq: int
    request: JobRequest
    state: JobState = JobState.QUEUED
    submitted_unix_s: float = field(default_factory=time.time)
    started_unix_s: Optional[float] = None
    finished_unix_s: Optional[float] = None
    error: Optional[str] = None
    result: Optional[dict[str, Any]] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    events: list[dict[str, Any]] = field(default_factory=list)
    subscribers: set[Any] = field(default_factory=set)

    @property
    def sort_key(self) -> tuple[int, int]:
        """Queue order: higher priority first, then submission order."""
        return (-self.request.priority, self.seq)

    def summary(self) -> dict[str, Any]:
        """The job as one JSON-shaped row (the ``jobs`` op / service status)."""
        return {
            "job": self.id,
            "kind": self.request.kind,
            "name": self.request.name,
            "store": self.request.store,
            "state": self.state.value,
            "priority": self.request.priority,
            "limit": self.request.limit,
            "submitted_unix_s": self.submitted_unix_s,
            "started_unix_s": self.started_unix_s,
            "finished_unix_s": self.finished_unix_s,
            "error": self.error,
            "result": self.result,
        }


class JobQueue:
    """A bounded, priority-ordered, thread-safe job queue.

    Parameters
    ----------
    max_queued:
        Admission bound on jobs waiting to run (``None`` = unbounded).  The
        running job does not count — a bound of 1 means "one waiting while
        one runs".
    """

    def __init__(self, max_queued: Optional[int] = None) -> None:
        if max_queued is not None and max_queued < 1:
            raise AdmissionError(f"max_queued must be positive, got {max_queued}")
        self._max_queued = max_queued
        self._waiting: list[Job] = []
        self._closed = False
        self._condition = threading.Condition()

    def offer(self, job: Job) -> None:
        """Admit a job, or refuse with :class:`AdmissionError` (queue full/closed)."""
        with self._condition:
            if self._closed:
                raise AdmissionError("the service is shutting down; submission refused")
            if self._max_queued is not None and len(self._waiting) >= self._max_queued:
                raise AdmissionError(
                    f"admission refused: {len(self._waiting)} job(s) already queued "
                    f"(bound {self._max_queued}); retry later or raise --max-queued"
                )
            self._waiting.append(job)
            self._waiting.sort(key=lambda item: item.sort_key)
            self._condition.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block for the highest-priority queued job; ``None`` on close/timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while not self._waiting:
                if self._closed:
                    return None
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return None
                self._condition.wait(timeout=remaining)
            return self._waiting.pop(0)

    def withdraw(self, job: Job) -> bool:
        """Remove a still-queued job (cancellation); False if it already left."""
        with self._condition:
            try:
                self._waiting.remove(job)
            except ValueError:
                return False
            return True

    def close(self) -> None:
        """Refuse future offers and wake every blocked :meth:`pop` with ``None``."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def depth(self) -> int:
        """Jobs currently waiting."""
        with self._condition:
            return len(self._waiting)
