"""The campaign service: async job submission over the shared execution stack.

One public surface, three layers:

- :mod:`repro.service.protocol` — the schema-versioned wire format
  (:class:`JobRequest`, ``repro.service.job/v1``);
- :mod:`repro.service.server` — :class:`CampaignService`, the asyncio NDJSON
  front end, priority queue with admission control, single-executor byte-
  identical job execution, and the RunMonitor-compatible HTTP status facade;
- :mod:`repro.service.client` — :class:`ServiceClient`, the blocking client
  the ``repro client`` CLI and tests drive.
"""

from repro.service.client import ServiceClient, ServiceError, connect_from_announce, read_announce
from repro.service.jobs import AdmissionError, Job, JobCancelled, JobQueue, JobState
from repro.service.protocol import JOB_KINDS, JOB_SCHEMA, JobRequest
from repro.service.server import SERVICE_SCHEMA, CampaignService

__all__ = [
    "AdmissionError",
    "CampaignService",
    "Job",
    "JobCancelled",
    "JobQueue",
    "JobRequest",
    "JobState",
    "JOB_KINDS",
    "JOB_SCHEMA",
    "SERVICE_SCHEMA",
    "ServiceClient",
    "ServiceError",
    "connect_from_announce",
    "read_announce",
]
