"""A blocking line-protocol client for the campaign service.

:class:`ServiceClient` speaks the service's newline-delimited-JSON protocol
over one TCP connection: every request is one JSON line, every response one
JSON line back (``watch`` streams many).  It is deliberately synchronous —
the asyncio lives on the server; clients are scripts, tests, and the
``repro client`` CLI, none of which want an event loop.

Connection endpoints come either from an explicit ``host``/``port`` or from
the announce file a service started with ``--announce`` (or ``port=0``)
writes — see :func:`connect_from_announce`.
"""

from __future__ import annotations

import json
import random
import socket
import time
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.exceptions import ConfigurationError, ReproError
from repro.service.protocol import JobRequest


class ServiceError(ReproError):
    """The service answered ``ok: false`` (the message is the server's).

    The full response line is kept on :attr:`response`, so callers can read
    machine markers like ``refused: "admission"`` (back-pressure, retry
    later) without parsing the human-facing message.
    """

    def __init__(self, message: str, response: Optional[dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.response: dict[str, Any] = response if response is not None else {}


class ServiceClient:
    """One NDJSON conversation with a running :class:`CampaignService`.

    Usable as a context manager; the connection is one socket reused across
    requests, so a client sees its own requests answered in order.

    ``connect_retries`` re-attempts the initial TCP connect with jittered
    exponential backoff (base ``connect_backoff`` seconds, doubling per
    attempt), absorbing the race where the service process is up but has not
    bound its port yet.  The default of zero keeps connect failures
    immediate for interactive use.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        *,
        connect_retries: int = 0,
        connect_backoff: float = 0.2,
    ) -> None:
        if connect_retries < 0:
            raise ConfigurationError(
                f"connect_retries must be non-negative, got {connect_retries}"
            )
        if connect_backoff <= 0:
            raise ConfigurationError(
                f"connect_backoff must be positive, got {connect_backoff:g}"
            )
        self._sock = self._connect(host, port, timeout, connect_retries, connect_backoff)
        self._file = self._sock.makefile("rwb")

    @staticmethod
    def _connect(
        host: str, port: int, timeout: float, retries: int, backoff: float
    ) -> socket.socket:
        for attempt in range(retries + 1):
            try:
                return socket.create_connection((host, port), timeout=timeout)
            except OSError:
                if attempt >= retries:
                    raise
                # Full jitter keeps a stampede of clients from re-knocking in
                # lockstep; the cap only bounds the *base*, not total wait.
                delay = backoff * (2**attempt)
                time.sleep(delay * (0.5 + random.random() / 2))
        raise AssertionError("unreachable")  # pragma: no cover

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the wire ----------------------------------------------------------

    def request(self, doc: dict[str, Any]) -> dict[str, Any]:
        """One request line out, one response line back (raises on ``ok: false``)."""
        self._send(doc)
        return self._expect_ok(self._readline())

    def _send(self, doc: dict[str, Any]) -> None:
        self._file.write(json.dumps(doc).encode("utf-8") + b"\n")
        self._file.flush()

    def _readline(self) -> dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServiceError("the service closed the connection")
        return json.loads(line)

    @staticmethod
    def _expect_ok(response: dict[str, Any]) -> dict[str, Any]:
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "service refused the request"), response=response
            )
        return response

    # -- ops ---------------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        """Service liveness + queue depth."""
        return self.request({"op": "ping"})

    def submit(self, request: JobRequest, wait: bool = False) -> dict[str, Any]:
        """Submit one job; with ``wait=True``, watch it to completion.

        Returns the submit response (``job``, ``state``); when waiting, the
        terminal ``job-finished`` record is merged in under ``"finished"``.
        """
        response = self.request({"op": "submit", "request": request.to_dict()})
        if wait:
            final = None
            for record in self.watch(response["job"]):
                final = record
            response = dict(response)
            response["finished"] = final
        return response

    def jobs(self) -> list[dict[str, Any]]:
        """Every job the service knows about."""
        return self.request({"op": "jobs"})["jobs"]

    def status(self, job: Optional[str] = None) -> dict[str, Any]:
        """A job's status document (RunMonitor schema), or the service's."""
        doc: dict[str, Any] = {"op": "status"}
        if job is not None:
            doc["job"] = job
        return self.request(doc)["status"]

    def watch(self, job: str) -> Iterator[dict[str, Any]]:
        """Yield a job's progress records (backlog, then live) until final.

        The stream ends with the record whose ``final`` field is true — for
        a completed job that is the ``job-finished`` record carrying the
        result summary.  A watch owns its connection until that record
        arrives; issue concurrent ops (e.g. a cancel) over a second client.
        """
        self._send({"op": "watch", "job": job})
        self._expect_ok(self._readline())
        while True:
            line = self._readline()
            record = line.get("event")
            if record is None:
                raise ServiceError(f"malformed watch line: {line}")
            yield record
            if record.get("final"):
                return

    def cancel(self, job: str) -> dict[str, Any]:
        """Cancel a job (queued → withdrawn now; running → next commit)."""
        return self.request({"op": "cancel", "job": job})

    def store_status(self, store: str) -> dict[str, Any]:
        """Read-only store query served from the WAL store mid-run."""
        return self.request({"op": "store-status", "store": store})

    def shutdown(self) -> dict[str, Any]:
        """Ask the service to stop gracefully (running job stays resumable)."""
        return self.request({"op": "shutdown"})


def read_announce(path: str | Path, timeout: float = 10.0) -> dict[str, Any]:
    """Read a service announce file, waiting up to ``timeout`` for it to appear.

    Services started with ``port=0`` bind an ephemeral port and only then
    write the file, so 'wait for the file' is the startup handshake.
    """
    target = Path(path)
    deadline = time.monotonic() + timeout
    while True:
        if target.exists():
            try:
                doc = json.loads(target.read_text())
            except (OSError, json.JSONDecodeError):
                doc = None
            if isinstance(doc, dict) and "port" in doc:
                return doc
        if time.monotonic() >= deadline:
            raise ConfigurationError(
                f"no service announce file at {target} after {timeout:g}s "
                "(is the service running with --announce?)"
            )
        time.sleep(0.05)


def connect_from_announce(
    path: str | Path,
    timeout: float = 10.0,
    *,
    connect_retries: int = 0,
    connect_backoff: float = 0.2,
) -> ServiceClient:
    """A connected client from an announce file (the ``--connect`` path)."""
    doc = read_announce(path, timeout=timeout)
    return ServiceClient(
        str(doc.get("host", "127.0.0.1")),
        int(doc["port"]),
        connect_retries=connect_retries,
        connect_backoff=connect_backoff,
    )
