"""The campaign service's wire schema: schema-versioned job requests.

A :class:`JobRequest` is the one unit of work a client can submit: a campaign
grid or a strategy search, as the *same* canonical dict the Python API
round-trips (:meth:`~repro.campaigns.spec.CampaignSpec.to_dict` /
:meth:`~repro.search.checkpoint.SearchSpec.to_dict`), plus the
:class:`~repro.engine.plan.ExecutionPlan` describing how it should execute —
the wire schema and the Python API are one surface, so anything runnable from
Python is submittable over the wire and vice versa.

Requests are validated *at admission*: :meth:`JobRequest.from_dict` parses
the embedded spec through the real spec constructors, so a malformed grid is
refused with a :class:`~repro.exceptions.ConfigurationError` before it ever
reaches the queue, not discovered mid-run by the executor.

Everything here is plain JSON-shaped data — no live handles — because a
request crosses a socket, lands in a queue, and may be re-submitted verbatim
to resume a cancelled job (exact resume is the store's diff-and-checkpoint
contract; an identical request simply completes the missing suffix).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.campaigns.spec import CampaignSpec
from repro.engine.plan import ExecutionPlan
from repro.exceptions import ConfigurationError
from repro.search.checkpoint import SearchSpec

#: Schema tag on every serialized job request.  Bump on breaking change —
#: the service refuses requests whose schema it cannot read.
JOB_SCHEMA = "repro.service.job/v1"

#: The work kinds the service executes.
JOB_KINDS = ("campaign", "search")


@dataclass(frozen=True)
class JobRequest:
    """One schema-versioned unit of submittable work.

    Attributes
    ----------
    kind:
        ``"campaign"`` or ``"search"``.
    spec:
        The canonical spec dict (``CampaignSpec.to_dict()`` /
        ``SearchSpec.to_dict()`` output) — validated eagerly.
    store:
        Result-store path the job writes to.  Relative paths resolve against
        the service's run directory, so clients need not know the server's
        filesystem layout.
    plan:
        The job's :class:`~repro.engine.plan.ExecutionPlan` (embedded in the
        wire form as its JSON dict).
    priority:
        Queue priority — higher runs first; ties run in submission order.
    limit:
        Optional work cap for this submission (``max_cells`` for campaigns,
        ``max_evaluations`` for searches); resubmit to continue.
    """

    kind: str
    spec: Mapping[str, Any]
    store: str
    plan: ExecutionPlan = field(default_factory=ExecutionPlan)
    priority: int = 0
    limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {self.kind!r}; known: {', '.join(JOB_KINDS)}"
            )
        if not isinstance(self.store, str) or not self.store.strip():
            raise ConfigurationError("a job request needs a non-empty store path")
        if self.limit is not None and self.limit < 1:
            raise ConfigurationError(f"job limit must be positive, got {self.limit}")
        # Admission-time validation: parsing through the real constructors
        # rejects malformed grids/objectives before they reach the queue.
        self.parsed_spec()

    # -- parsed views ------------------------------------------------------

    def parsed_spec(self) -> Union[CampaignSpec, SearchSpec]:
        """The embedded spec as its real object (raises on a malformed one)."""
        if self.kind == "campaign":
            return CampaignSpec.from_dict(self.spec)
        return SearchSpec.from_dict(self.spec)

    @property
    def name(self) -> str:
        """The campaign/search name inside the store."""
        name = self.spec.get("name")
        return str(name) if name is not None else "unnamed"

    # -- construction helpers ---------------------------------------------

    @classmethod
    def for_campaign(
        cls,
        spec: CampaignSpec,
        store: str,
        plan: Optional[ExecutionPlan] = None,
        priority: int = 0,
        limit: Optional[int] = None,
    ) -> "JobRequest":
        """A campaign request from a live spec object."""
        return cls(
            kind="campaign",
            spec=spec.to_dict(),
            store=store,
            plan=plan if plan is not None else ExecutionPlan(),
            priority=priority,
            limit=limit,
        )

    @classmethod
    def for_search(
        cls,
        spec: SearchSpec,
        store: str,
        plan: Optional[ExecutionPlan] = None,
        priority: int = 0,
        limit: Optional[int] = None,
    ) -> "JobRequest":
        """A search request from a live spec object."""
        return cls(
            kind="search",
            spec=spec.to_dict(),
            store=store,
            plan=plan if plan is not None else ExecutionPlan(),
            priority=priority,
            limit=limit,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The request as a JSON-shaped dict (schema-tagged)."""
        return {
            "schema": JOB_SCHEMA,
            "kind": self.kind,
            "spec": dict(self.spec),
            "store": self.store,
            "plan": self.plan.to_dict(),
            "priority": self.priority,
            "limit": self.limit,
        }

    def to_json(self) -> str:
        """The request as canonical JSON text."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRequest":
        """Rebuild (and fully validate) a request from :meth:`to_dict` output."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a job request must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ConfigurationError(
                f"unsupported job-request schema {schema!r} (this build reads {JOB_SCHEMA!r})"
            )
        missing = [name for name in ("kind", "spec", "store") if name not in data]
        if missing:
            raise ConfigurationError(
                f"job request is missing fields: {', '.join(missing)}"
            )
        plan_data = data.get("plan")
        plan = ExecutionPlan.from_dict(plan_data) if plan_data is not None else ExecutionPlan()
        priority = data.get("priority", 0)
        if not isinstance(priority, int):
            raise ConfigurationError(f"job priority must be an integer, got {priority!r}")
        return cls(
            kind=data["kind"],
            spec=data["spec"],
            store=data["store"],
            plan=plan,
            priority=priority,
            limit=data.get("limit"),
        )

    @classmethod
    def from_json(cls, text: str) -> "JobRequest":
        """Rebuild a request from :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"job request is not valid JSON: {error}") from error
        return cls.from_dict(data)
