"""The campaign service: an async job front end over the execution stack.

:class:`CampaignService` accepts :class:`~repro.service.protocol.JobRequest`
submissions from many concurrent clients over a newline-delimited-JSON TCP
protocol, queues them with admission control and per-job priorities, and
executes them **one at a time** on a single executor thread backed by one
shared :class:`~repro.engine.pool.ExecutionPool`.  Running jobs serially is
not a simplification — it is the byte-identity guarantee: every store a
service job produces is the store the direct CLI run would have produced,
because there is never a second writer interleaving cells.

Three threads, one loop::

    asyncio loop thread ── start_server(), one coroutine per client,
    │                      owns every Job.events buffer and subscriber set
    executor thread ────── JobQueue.pop() → run campaign/search via the
    │                      ordinary runners; publishes progress through
    │                      loop.call_soon_threadsafe (never touches buffers
    │                      directly)
    HTTP facade thread ─── optional ThreadingHTTPServer serving /status and
                           /jobs/<id>/status in the RunMonitor snapshot
                           schema, so ``repro monitor watch`` works
                           unchanged against a service job

Per job the service materializes a directory ``run_dir/jobs/<id>/`` holding
``request.json`` (the verbatim submission — resubmit it to resume a
cancelled job), ``events.jsonl`` (the job's full telemetry stream), and
``status.json`` (live :class:`~repro.telemetry.monitor.RunMonitor`
snapshots).  Progress streamed to ``watch`` subscribers is tapped straight
off the job's telemetry event bus — cells committed, generations completed,
best-candidate improvements — so the wire stream and the on-disk record are
the same events.

Cancellation is cooperative and exact: the cancel flag is only checked in
the runners' ``on_cell`` / ``on_candidate`` callbacks, which fire *after*
each checkpoint commit.  A cancelled job therefore always leaves a clean
committed prefix, and resubmitting the identical request completes exactly
the missing suffix (the store's diff-and-checkpoint contract).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Optional

from repro.campaigns.runner import CampaignRunner
from repro.campaigns.store import ResultStore
from repro.engine.plan import ExecutionPlan
from repro.engine.pool import ExecutionPool
from repro.exceptions import ConfigurationError, ReproError
from repro.search.runner import StrategySearch
from repro.service.jobs import AdmissionError, Job, JobCancelled, JobQueue, JobState
from repro.service.protocol import JobRequest
from repro.telemetry import Telemetry
from repro.telemetry.events import JsonlSink
from repro.telemetry.monitor import STATUS_SCHEMA, RunMonitor

#: Schema tag on every service-level status document.
SERVICE_SCHEMA = "repro.service.status/v1"

#: Monitor configuration per job kind — identical to what the direct CLI
#: commands wire up, so a service job's status.json and a CLI run's are the
#: same document shape with the same metric names.
_MONITOR_WIRING = {
    "campaign": {
        "unit": "cells",
        "done_metrics": ("campaign.cells_committed", "campaign.cells_reused"),
        "best_metric": None,
    },
    "search": {
        "unit": "evaluations",
        "done_metrics": ("search.evaluations_executed", "search.evaluations_reused"),
        "best_metric": "search.best_score",
    },
}


def _empty_status(unit: str, state: str, job_id: str, kind: str) -> dict[str, Any]:
    """A schema-complete status document for a job with no monitor snapshot yet.

    Carries every field :func:`repro.telemetry.monitor.validate_status`
    requires, so queued jobs are watchable through the exact same tooling as
    running ones.
    """
    return {
        "schema": STATUS_SCHEMA,
        "final": False,
        "unit": unit,
        "job": job_id,
        "kind": kind,
        "state": state,
        "written_unix_s": time.time(),
        "elapsed_s": 0.0,
        "progress": {"done": 0, "total": None, "fraction": None},
        "throughput": {"ewma_per_s": None, "eta_s": None},
        "workers": {},
        "recent_events": [],
        "metrics": {},
    }


class CampaignService:
    """The async campaign/search job service.

    Parameters
    ----------
    run_dir:
        Root directory for service state: per-job directories land under
        ``run_dir/jobs/``, and relative job store paths resolve against
        ``run_dir`` (clients need not know the server's filesystem).
    host, port:
        TCP bind address for the NDJSON protocol (``port=0`` picks an
        ephemeral port; read :attr:`port` after :meth:`start`).
    plan:
        The *service* :class:`~repro.engine.plan.ExecutionPlan`: when
        parallel, the service starts one shared
        :class:`~repro.engine.pool.ExecutionPool` reused by every job (worker
        processes stay warm across jobs).  When serial (the default), each
        job's own plan decides its execution — a parallel job plan then spins
        up a pool for just that job.
    max_queued:
        Admission bound on *waiting* jobs (the running job is free);
        submissions past the bound are refused immediately.
    monitor_interval:
        Snapshot cadence of each job's :class:`~repro.telemetry.monitor.RunMonitor`.
    http_port:
        When not ``None``, also serve the read-only HTTP facade
        (``/status``, ``/jobs``, ``/jobs/<id>/status``) on this port
        (``0`` = ephemeral; read :attr:`http_port` after :meth:`start`).
    telemetry:
        Optional *service-level* :class:`~repro.telemetry.Telemetry` handle:
        receives the shared pool's worker metrics and crash/fallback events
        (per-job telemetry is always separate, one stream per job).
    announce_path:
        When set, :meth:`start` writes ``{"host", "port", "http_port"}`` JSON
        here once bound — how scripts using ``port=0`` find the service.
    """

    def __init__(
        self,
        run_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        plan: Optional[ExecutionPlan] = None,
        max_queued: Optional[int] = 8,
        monitor_interval: float = 0.5,
        http_port: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        announce_path: str | Path | None = None,
    ) -> None:
        self._run_dir = Path(run_dir)
        self._host = host
        self._requested_port = port
        self._plan = plan if plan is not None else ExecutionPlan()
        self._queue = JobQueue(max_queued=max_queued)
        self._monitor_interval = monitor_interval
        self._requested_http_port = http_port
        self._telemetry = telemetry
        self._announce_path = Path(announce_path) if announce_path is not None else None

        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._seq = 0
        self._started_unix_s: Optional[float] = None

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._executor_thread: Optional[threading.Thread] = None
        self._http_server: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._pool: Optional[ExecutionPool] = None
        self._stopping = threading.Event()
        self.port: Optional[int] = None
        self.http_port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "CampaignService":
        """Bind, spin up the loop/executor/facade threads, and return self."""
        if self._loop_thread is not None:
            raise ConfigurationError("this service has already been started")
        self._run_dir.mkdir(parents=True, exist_ok=True)
        (self._run_dir / "jobs").mkdir(exist_ok=True)
        self._pool = self._plan.pool(telemetry=self._telemetry)

        ready = threading.Event()
        failure: list[BaseException] = []
        self._loop_thread = threading.Thread(
            target=self._run_loop, args=(ready, failure), name="repro-service-loop", daemon=True
        )
        self._loop_thread.start()
        ready.wait(timeout=10.0)
        if failure:
            raise ConfigurationError(f"service failed to bind {self._host}:{self._requested_port}: {failure[0]}")
        if self.port is None:
            raise ConfigurationError("service loop thread never became ready")

        self._executor_thread = threading.Thread(
            target=self._run_executor, name="repro-service-executor", daemon=True
        )
        self._executor_thread.start()

        if self._requested_http_port is not None:
            handler = partial(_ServiceRequestHandler, self)
            self._http_server = ThreadingHTTPServer(
                (self._host, self._requested_http_port), handler
            )
            self._http_server.daemon_threads = True
            self.http_port = self._http_server.server_address[1]
            self._http_thread = threading.Thread(
                target=self._http_server.serve_forever, name="repro-service-http", daemon=True
            )
            self._http_thread.start()

        if self._announce_path is not None:
            doc = {"host": self._host, "port": self.port, "http_port": self.http_port}
            tmp = self._announce_path.with_suffix(self._announce_path.suffix + ".tmp")
            tmp.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc))
            tmp.replace(self._announce_path)
        return self

    def stop(self) -> None:
        """Graceful shutdown: refuse new work, stop the running job at its
        next commit boundary (it stays exactly resumable), drain, tear down.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._queue.close()
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.state is JobState.RUNNING:
                job.cancel_event.set()
        if self._executor_thread is not None:
            self._executor_thread.join(timeout=60.0)
        if self._loop is not None and self._loop.is_running():
            future = asyncio.run_coroutine_threadsafe(self._shutdown_async(), self._loop)
            try:
                future.result(timeout=10.0)
            except Exception:
                pass
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)
        if self._http_server is not None:
            self._http_server.shutdown()
            self._http_server.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the service begins shutting down (True once it has).

        What ``repro serve`` parks on: a client ``shutdown`` op (or
        :meth:`stop` from any thread) releases it.
        """
        return self._stopping.wait(timeout)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- the asyncio front end --------------------------------------------

    def _run_loop(self, ready: threading.Event, failure: list[BaseException]) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def _bind() -> None:
            try:
                self._server = await asyncio.start_server(
                    self._handle_client, self._host, self._requested_port
                )
                self.port = self._server.sockets[0].getsockname()[1]
                self._started_unix_s = time.time()
            except OSError as error:
                failure.append(error)
            finally:
                ready.set()

        loop.run_until_complete(_bind())
        if not failure:
            try:
                loop.run_forever()
            finally:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
        loop.close()

    async def _shutdown_async(self) -> None:
        """Stop accepting connections and release every watch subscriber."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        sentinel = {"kind": "service-stopping", "final": True}
        for job in jobs:
            for queue in list(job.subscribers):
                queue.put_nowait(sentinel)

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One NDJSON request/response conversation per connection."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    await self._send(writer, {"ok": False, "error": f"invalid JSON: {error}"})
                    continue
                op = request.get("op") if isinstance(request, dict) else None
                if op == "watch":
                    await self._op_watch(writer, request)
                    continue
                response = self._dispatch(op, request)
                await self._send(writer, response)
                if op == "shutdown" and response.get("ok"):
                    # stop() joins this loop's thread, so it must run elsewhere.
                    threading.Thread(target=self.stop, daemon=True).start()
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter, doc: dict[str, Any]) -> None:
        writer.write(json.dumps(doc).encode("utf-8") + b"\n")
        await writer.drain()

    def _dispatch(self, op: Optional[str], request: dict[str, Any]) -> dict[str, Any]:
        """Route one non-streaming op; all errors become ``ok: false`` lines."""
        handlers = {
            "ping": self._op_ping,
            "submit": self._op_submit,
            "jobs": self._op_jobs,
            "status": self._op_status,
            "cancel": self._op_cancel,
            "store-status": self._op_store_status,
            "shutdown": lambda _request: {"ok": True, "stopping": True},
        }
        handler = handlers.get(op or "")
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}; known: {', '.join(sorted(handlers))}"}
        try:
            return handler(request)
        except AdmissionError as error:
            return {"ok": False, "error": str(error), "refused": "admission"}
        except ReproError as error:
            return {"ok": False, "error": str(error)}
        except Exception as error:  # a service must answer, not disconnect
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    # -- ops ---------------------------------------------------------------

    def _op_ping(self, _request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "service": SERVICE_SCHEMA,
            "jobs": len(self._jobs),
            "queued": self._queue.depth,
        }

    def _op_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        payload = request.get("request")
        if payload is None:
            raise ConfigurationError('submit needs a "request" field holding the job request')
        job = self.submit(JobRequest.from_dict(payload))
        return {"ok": True, "job": job.id, "state": job.state.value}

    def _op_jobs(self, _request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "jobs": self.jobs_summary()}

    def jobs_summary(self) -> list[dict[str, Any]]:
        """Every job as one JSON row, in submission order."""
        with self._jobs_lock:
            return [job.summary() for job in self._jobs.values()]

    def _op_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job")
        if job_id is None:
            return {"ok": True, "status": self.service_status()}
        return {"ok": True, "status": self.job_status(job_id)}

    def _op_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job")
        if job_id is None:
            raise ConfigurationError('cancel needs a "job" field')
        job = self._job(job_id)
        cancelled = self.cancel(job)
        return {"ok": True, "job": job.id, "state": job.state.value, "cancelled": cancelled}

    def _op_store_status(self, request: dict[str, Any]) -> dict[str, Any]:
        store_arg = request.get("store")
        if store_arg is None:
            raise ConfigurationError('store-status needs a "store" field')
        path = self.resolve_store(str(store_arg))
        if not path.exists():
            # ResultStore(path) would *create* the database; a read-only
            # query must not conjure empty stores on the server.
            raise ConfigurationError(f"no store at {path}")
        with ResultStore(str(path)) as store:
            campaigns = [
                {"campaign": name, "completed": store.cell_count(name)}
                for name in store.campaign_names()
            ]
        return {"ok": True, "store": str(path), "campaigns": campaigns}

    async def _op_watch(self, writer: asyncio.StreamWriter, request: dict[str, Any]) -> None:
        """Stream a job's buffered + live progress records as NDJSON lines.

        Runs on the loop thread, which owns every job's event buffer — the
        replay-then-subscribe handoff is therefore race-free: no record can
        land between the buffer snapshot and the subscription.
        """
        job_id = request.get("job")
        job = self._jobs.get(job_id) if job_id is not None else None
        if job is None:
            await self._send(writer, {"ok": False, "error": f"unknown job {job_id!r}"})
            return
        await self._send(writer, {"ok": True, "job": job.id, "watching": True})
        queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        backlog = list(job.events)
        job.subscribers.add(queue)
        try:
            for record in backlog:
                await self._send(writer, {"event": record})
                if record.get("final"):
                    return
            if job.state.terminal and not any(r.get("final") for r in backlog):
                # Terminal before any subscriber saw the sentinel (e.g. the
                # job finished while the backlog replayed an empty buffer).
                await self._send(
                    writer, {"event": {"kind": "job-finished", "state": job.state.value, "final": True}}
                )
                return
            while True:
                record = await queue.get()
                await self._send(writer, {"event": record})
                if record.get("final"):
                    return
        finally:
            job.subscribers.discard(queue)

    # -- submission / querying (also the in-process API) -------------------

    def submit(self, request: JobRequest) -> Job:
        """Admit one request: persist it, queue it, return the job record."""
        if self._stopping.is_set():
            raise AdmissionError("the service is shutting down; submission refused")
        with self._jobs_lock:
            self._seq += 1
            job = Job(id=f"job-{self._seq:04d}", seq=self._seq, request=request)
            self._jobs[job.id] = job
        job_dir = self.job_dir(job.id)
        job_dir.mkdir(parents=True, exist_ok=True)
        (job_dir / "request.json").write_text(request.to_json())
        try:
            self._queue.offer(job)
        except AdmissionError:
            with self._jobs_lock:
                del self._jobs[job.id]
            raise
        self._publish_threadsafe(job, {"kind": "job-queued", "job": job.id, "priority": request.priority})
        return job

    def cancel(self, job: Job) -> bool:
        """Cancel a job; True if this call changed its fate.

        A queued job is withdrawn and terminal immediately; a running job
        stops at its next commit boundary (exactly resumable); a terminal
        job is untouched.
        """
        if job.state.terminal:
            return False
        if job.state is JobState.QUEUED and self._queue.withdraw(job):
            job.state = JobState.CANCELLED
            job.finished_unix_s = time.time()
            self._publish_threadsafe(
                job, {"kind": "job-finished", "job": job.id, "state": "cancelled", "final": True}
            )
            return True
        job.cancel_event.set()
        return True

    def job_dir(self, job_id: str) -> Path:
        """The per-job state directory."""
        return self._run_dir / "jobs" / job_id

    def resolve_store(self, store: str) -> Path:
        """A job's store path: relative paths land under the run directory."""
        path = Path(store)
        return path if path.is_absolute() else self._run_dir / path

    def _job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job {job_id!r}")
        return job

    def job_status(self, job_id: str) -> dict[str, Any]:
        """One job's status in the RunMonitor snapshot schema.

        Running and finished jobs serve their monitor's latest ``status.json``
        snapshot (annotated with job identity); queued jobs get a synthesized
        schema-complete document, so every job is watchable the same way.
        """
        job = self._job(job_id)
        wiring = _MONITOR_WIRING[job.request.kind]
        status_path = self.job_dir(job.id) / "status.json"
        doc: Optional[dict[str, Any]] = None
        if status_path.exists():
            try:
                doc = json.loads(status_path.read_text())
            except (OSError, json.JSONDecodeError):
                doc = None
        if doc is None:
            doc = _empty_status(wiring["unit"], job.state.value, job.id, job.request.kind)
        doc["job"] = job.id
        doc["state"] = job.state.value
        doc["kind"] = job.request.kind
        if job.state.terminal:
            doc["final"] = True
        if job.error is not None:
            doc["error"] = job.error
        return doc

    def service_status(self) -> dict[str, Any]:
        """The whole service as one RunMonitor-schema document (unit: jobs)."""
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        done = sum(1 for job in jobs if job.state.terminal)
        total = len(jobs)
        now = time.time()
        return {
            "schema": STATUS_SCHEMA,
            "service": SERVICE_SCHEMA,
            "final": self._stopping.is_set(),
            "unit": "jobs",
            "written_unix_s": now,
            "elapsed_s": now - self._started_unix_s if self._started_unix_s else 0.0,
            "progress": {
                "done": done,
                "total": total,
                "fraction": (done / total) if total else None,
            },
            "throughput": {"ewma_per_s": None, "eta_s": None},
            "workers": {},
            "recent_events": [],
            "metrics": {"service.queued": self._queue.depth},
            "jobs": [job.summary() for job in jobs],
        }

    # -- the executor thread ----------------------------------------------

    def _run_executor(self) -> None:
        while True:
            job = self._queue.pop()
            if job is None:
                return
            if job.state.terminal:  # cancelled while queued, already withdrawn
                continue
            self._execute(job)

    def _execute(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_unix_s = time.time()
        self._publish_threadsafe(job, {"kind": "job-started", "job": job.id})
        try:
            result = self._run_job(job)
        except JobCancelled:
            job.state = JobState.CANCELLED
        except Exception as error:
            job.state = JobState.FAILED
            job.error = f"{type(error).__name__}: {error}"
        else:
            job.state = JobState.COMPLETED
            job.result = result
        job.finished_unix_s = time.time()
        self._publish_threadsafe(
            job,
            {
                "kind": "job-finished",
                "job": job.id,
                "state": job.state.value,
                "error": job.error,
                "result": job.result,
                "final": True,
            },
        )

    def _run_job(self, job: Job) -> dict[str, Any]:
        """Execute one job through the ordinary runners, fully instrumented."""
        request = job.request
        job_dir = self.job_dir(job.id)
        wiring = _MONITOR_WIRING[request.kind]
        store_path = self.resolve_store(request.store)
        store_path.parent.mkdir(parents=True, exist_ok=True)
        telemetry = Telemetry(sink=JsonlSink(str(job_dir / "events.jsonl")))

        def tap(event: Any) -> None:
            # Runs on the executor thread; hop to the loop thread, the sole
            # owner of the event buffer and subscriber set.  Taps must never
            # raise — a closed loop during shutdown just drops the record.
            record = event.to_dict()
            loop = self._loop
            if loop is not None and loop.is_running():
                try:
                    loop.call_soon_threadsafe(self._publish, job, record)
                except RuntimeError:
                    pass

        telemetry.add_event_tap(tap)

        def check_cancel(*_args: Any) -> None:
            if job.cancel_event.is_set():
                raise JobCancelled(f"job {job.id} cancelled")

        try:
            with ResultStore(str(store_path)) as store:
                if request.kind == "campaign":
                    return self._run_campaign(job, store, telemetry, wiring, check_cancel)
                return self._run_search(job, store, telemetry, wiring, check_cancel)
        finally:
            telemetry.remove_event_tap(tap)
            telemetry.close()

    def _monitor(
        self, job: Job, telemetry: Telemetry, wiring: dict[str, Any], total: Optional[int]
    ) -> RunMonitor:
        return RunMonitor(
            telemetry,
            status_path=str(self.job_dir(job.id) / "status.json"),
            interval=self._monitor_interval,
            unit=wiring["unit"],
            total=total,
            done_metrics=wiring["done_metrics"],
            best_metric=wiring["best_metric"],
        ).start()

    def _run_campaign(
        self,
        job: Job,
        store: ResultStore,
        telemetry: Telemetry,
        wiring: dict[str, Any],
        check_cancel: Any,
    ) -> dict[str, Any]:
        spec = job.request.parsed_spec()
        with CampaignRunner(
            spec, store, pool=self._pool, telemetry=telemetry, plan=job.request.plan
        ) as runner:
            before = runner.status()
            monitor = self._monitor(job, telemetry, wiring, total=before.total)
            try:
                progress = runner.run(max_cells=job.request.limit, on_cell=check_cancel)
            finally:
                monitor.stop()
        return {
            "total": progress.total,
            "already_complete": progress.already_complete,
            "executed": progress.executed,
            "remaining": progress.remaining,
            "complete": progress.complete,
        }

    def _run_search(
        self,
        job: Job,
        store: ResultStore,
        telemetry: Telemetry,
        wiring: dict[str, Any],
        check_cancel: Any,
    ) -> dict[str, Any]:
        spec = job.request.parsed_spec()
        with StrategySearch(
            spec, store, pool=self._pool, telemetry=telemetry, plan=job.request.plan
        ) as search:
            monitor = self._monitor(job, telemetry, wiring, total=None)
            try:
                result = search.run(
                    max_evaluations=job.request.limit, on_candidate=check_cancel
                )
            finally:
                monitor.stop()
        best = None
        if result.best is not None:
            best = {
                "score": result.best.score,
                "key": result.best.key,
                "genome": result.best.genome.describe(),
            }
        return {
            "evaluations_total": result.evaluations_total,
            "executed": result.executed,
            "reused": result.reused,
            "generations_completed": result.generations_completed,
            "complete": result.complete,
            "best": best,
        }

    # -- event fanout ------------------------------------------------------

    def _publish(self, job: Job, record: dict[str, Any]) -> None:
        """Loop-thread-only: append to the buffer and fan out to watchers."""
        job.events.append(record)
        for queue in list(job.subscribers):
            queue.put_nowait(record)

    def _publish_threadsafe(self, job: Job, record: dict[str, Any]) -> None:
        """Publish from any thread (falls back to buffer-only before start)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self._publish, job, record)
                return
            except RuntimeError:
                pass
        job.events.append(record)


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Read-only HTTP facade in the RunMonitor snapshot schema.

    ``GET /status`` serves the service-level document, ``GET /jobs`` the job
    table, and ``GET /jobs/<id>/status`` one job's document — the last shaped
    so ``repro monitor watch http://host:port/jobs/<id>`` (whose reader
    appends ``/status``) follows a service job with zero changes.
    """

    def __init__(self, service: CampaignService, *args: Any, **kwargs: Any) -> None:
        self._service = service
        super().__init__(*args, **kwargs)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/") or "/status"
        try:
            if path in ("/status", ""):
                doc: dict[str, Any] = self._service.service_status()
            elif path == "/jobs":
                doc = {"jobs": self._service.jobs_summary()}
            elif path.startswith("/jobs/"):
                parts = path.split("/")
                job_id = parts[2]
                if len(parts) == 3 or (len(parts) == 4 and parts[3] == "status"):
                    doc = self._service.job_status(job_id)
                else:
                    self.send_error(404, "unknown path")
                    return
            else:
                self.send_error(404, "unknown path")
                return
        except ConfigurationError as error:
            self.send_error(404, str(error))
            return
        body = json.dumps(doc).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *_args: Any) -> None:  # quiet by design
        return
