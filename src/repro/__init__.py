"""repro — a from-scratch reproduction of *The Wireless Synchronization Problem*.

Dolev, Gilbert, Guerraoui, Kuhn, Newport (PODC 2009) study how devices that
wake up at different times on a jammed, multi-frequency radio band can agree
on a global round numbering.  This package implements the paper's model, its
two protocols (Trapdoor and Good Samaritan), the baselines they are measured
against, the analytical machinery of the lower bounds, and an experiment
harness that regenerates every figure and theorem-shaped result.

Quick start::

    from repro import (
        ModelParameters, SimulationConfig, simulate,
        TrapdoorProtocol, StaggeredActivation, RandomJammer,
    )

    params = ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64)
    config = SimulationConfig(
        params=params,
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=10, spacing=3),
        adversary=RandomJammer(),
    )
    result = simulate(config)
    print(result.summary())
"""

from repro.adversary import (
    ActivationSchedule,
    BurstyJammer,
    CyclicObliviousSchedule,
    ExplicitActivation,
    FixedBandJammer,
    InterferenceAdversary,
    LowBandJammer,
    NoInterference,
    ObliviousSchedule,
    PolicyJammer,
    RandomActivation,
    RandomJammer,
    ReactiveJammer,
    SimultaneousActivation,
    StaggeredActivation,
    SweepJammer,
    TrickleActivation,
    TwoNodeProductJammer,
)
from repro.analysis import (
    good_samaritan_adaptive_bound,
    good_samaritan_worst_case_bound,
    theorem1_lower_bound,
    theorem4_lower_bound,
    theorem5_lower_bound,
    trapdoor_upper_bound,
)
from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    StoredSummary,
)
from repro.engine import (
    PropertyChecker,
    RoundObserver,
    SimulationConfig,
    SimulationResult,
    Simulator,
    StreamingPropertyChecker,
    TraceLevel,
    TrialSummary,
    run_trials,
    simulate,
)
from repro.exceptions import (
    ConfigurationError,
    ExperimentError,
    ProtocolViolationError,
    ReproError,
    SimulationError,
)
from repro.params import ModelParameters
from repro.search import (
    SearchObjective,
    SearchSpec,
    StrategySearch,
    StrategySpace,
)
from repro.protocols import (
    DecayWakeupProtocol,
    FaultTolerantTrapdoorProtocol,
    GoodSamaritanConfig,
    GoodSamaritanProtocol,
    GoodSamaritanSchedule,
    RoundRobinSweepProtocol,
    SingleChannelAlohaProtocol,
    SynchronizationProtocol,
    Timestamp,
    TrapdoorConfig,
    TrapdoorProtocol,
    TrapdoorSchedule,
    UniformWakeupProtocol,
)
from repro.radio import FrequencyBand, SingleHopRadioNetwork

__version__ = "1.0.0"

__all__ = [
    "ActivationSchedule",
    "BurstyJammer",
    "CyclicObliviousSchedule",
    "ExplicitActivation",
    "FixedBandJammer",
    "InterferenceAdversary",
    "LowBandJammer",
    "NoInterference",
    "ObliviousSchedule",
    "PolicyJammer",
    "RandomActivation",
    "RandomJammer",
    "ReactiveJammer",
    "SimultaneousActivation",
    "StaggeredActivation",
    "SweepJammer",
    "TrickleActivation",
    "TwoNodeProductJammer",
    "good_samaritan_adaptive_bound",
    "good_samaritan_worst_case_bound",
    "theorem1_lower_bound",
    "theorem4_lower_bound",
    "theorem5_lower_bound",
    "trapdoor_upper_bound",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "StoredSummary",
    "PropertyChecker",
    "RoundObserver",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "StreamingPropertyChecker",
    "TraceLevel",
    "TrialSummary",
    "run_trials",
    "simulate",
    "ConfigurationError",
    "ExperimentError",
    "ProtocolViolationError",
    "ReproError",
    "SimulationError",
    "ModelParameters",
    "SearchObjective",
    "SearchSpec",
    "StrategySearch",
    "StrategySpace",
    "DecayWakeupProtocol",
    "FaultTolerantTrapdoorProtocol",
    "GoodSamaritanConfig",
    "GoodSamaritanProtocol",
    "GoodSamaritanSchedule",
    "RoundRobinSweepProtocol",
    "SingleChannelAlohaProtocol",
    "SynchronizationProtocol",
    "Timestamp",
    "TrapdoorConfig",
    "TrapdoorProtocol",
    "TrapdoorSchedule",
    "UniformWakeupProtocol",
    "FrequencyBand",
    "SingleHopRadioNetwork",
    "__version__",
]
