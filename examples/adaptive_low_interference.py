#!/usr/bin/env python
"""Adaptive vs worst-case: when is the Good Samaritan Protocol worth it?

The Trapdoor Protocol sizes its schedule for the worst-case disruption budget
``t``.  The Good Samaritan Protocol (§7) is optimistic: when all devices start
together and only ``t' ≪ t`` channels are actually disrupted, it finishes in
``O(t'·log³N)`` rounds — while still falling back to a Trapdoor-style
guarantee in bad executions.

This example runs both protocols on identical "good executions" while sweeping
the *actual* interference level, then shows the flip side: under full-budget
adaptive jamming the worst-case protocol is the safer bet.

Run it with::

    python examples/adaptive_low_interference.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    GoodSamaritanProtocol,
    ModelParameters,
    NoInterference,
    ObliviousSchedule,
    RandomJammer,
    SimulationConfig,
    SimultaneousActivation,
    TrapdoorProtocol,
    good_samaritan_adaptive_bound,
    run_trials,
    trapdoor_upper_bound,
)
from repro.experiments.figures import render_bars
from repro.experiments.tables import render_table

# A wide band with a pessimistic worst-case budget (t = F/2), as in a crowded
# unlicensed band where "anything up to half the channels might be unusable".
PARAMS = ModelParameters(frequencies=64, disruption_budget=32, participant_bound=16)
NODE_COUNT = 5
SEEDS = 3


def summary_for(protocol_factory, actual_disruption: int):
    """Run good executions in which only ``actual_disruption`` channels are hit."""

    def per_seed(config: SimulationConfig, seed: int) -> SimulationConfig:
        inner = (
            RandomJammer(strength=actual_disruption) if actual_disruption else NoInterference()
        )
        jammer = ObliviousSchedule.pre_drawn(
            inner, PARAMS.band, PARAMS.disruption_budget, rounds=60_000, seed=seed * 13 + 5
        )
        return replace(config, adversary=jammer)

    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=protocol_factory,
        activation=SimultaneousActivation(count=NODE_COUNT),
        max_rounds=120_000,
    )
    return run_trials(config, seeds=SEEDS, config_for_seed=per_seed)


def good_executions() -> None:
    print(f"Good executions — {PARAMS.describe()}, {NODE_COUNT} devices waking together.")
    print("The adversary may disrupt up to t=32 channels but actually uses only t'.")
    print()
    rows = []
    for t_prime in (0, 1, 2, 4):
        trapdoor = summary_for(TrapdoorProtocol.factory(), t_prime)
        samaritan = summary_for(GoodSamaritanProtocol.factory(), t_prime)
        rows.append(
            {
                "actual disruption t'": t_prime,
                "trapdoor mean latency": trapdoor.mean_latency,
                "good samaritan mean latency": samaritan.mean_latency,
                "speedup": trapdoor.mean_latency / samaritan.mean_latency,
            }
        )
    print(render_table(rows, title="Mean rounds to synchronize (3 seeds each)", float_digits=1))
    print()
    print(
        render_bars(
            [f"t'={t}" for t in (0, 1, 2, 4)],
            [row["good samaritan mean latency"] for row in rows],
            title="Good Samaritan latency grows with the *actual* interference, not the budget",
            unit=" rounds",
        )
    )
    print()
    print(f"Theorem 10 shape for the Trapdoor schedule: {trapdoor_upper_bound(16, 64, 32):.0f}")
    print(f"Theorem 18 adaptive shape at t'=1:          {good_samaritan_adaptive_bound(16, 1):.0f}")
    print()


def worst_case() -> None:
    print("Worst case — the adversary uses its full budget every round.")
    rows = []
    for name, factory in (
        ("trapdoor", TrapdoorProtocol.factory()),
        ("good samaritan", GoodSamaritanProtocol.factory()),
    ):
        config = SimulationConfig(
            params=PARAMS,
            protocol_factory=factory,
            activation=SimultaneousActivation(count=NODE_COUNT),
            adversary=RandomJammer(),
            max_rounds=200_000,
        )
        summary = run_trials(config, seeds=2)
        rows.append(
            {
                "protocol": name,
                "mean latency": summary.mean_latency,
                "worst latency": summary.max_latency,
                "liveness": summary.liveness_rate,
            }
        )
    print(render_table(rows, title="Full-budget random jamming (2 seeds each)", float_digits=1))
    print()
    print("Under worst-case interference the optimistic protocol pays its extra log N factor;")
    print("when interference is usually light, the adaptive protocol wins by a wide margin.")


def main() -> None:
    good_executions()
    worst_case()


if __name__ == "__main__":
    main()
