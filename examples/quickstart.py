#!/usr/bin/env python
"""Quickstart: synchronize ten ad hoc devices on a jammed band.

This is the 60-second tour of the library:

1. describe the disrupted radio network (``F`` frequencies, adversary budget
   ``t``, participant bound ``N``);
2. pick a protocol (here: the Trapdoor Protocol of §6), an activation pattern,
   and an interference adversary;
3. run the simulation and inspect the result: did everyone synchronize, how
   long did it take, was a unique leader elected, and did the five problem
   properties hold?

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ModelParameters,
    RandomJammer,
    SimulationConfig,
    StaggeredActivation,
    TrapdoorProtocol,
    simulate,
    trapdoor_upper_bound,
)
from repro.apps.leader_election import election_from_result
from repro.engine.metrics import summarize_roles


def main() -> None:
    # The 2.4 GHz-style setting of the paper's introduction: a handful of
    # narrowband channels, some of which are unusable in any given round.
    params = ModelParameters(frequencies=8, disruption_budget=3, participant_bound=64)

    config = SimulationConfig(
        params=params,
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=10, spacing=3),  # devices trickle in
        adversary=RandomJammer(),  # t random channels disrupted each round
        seed=2024,
    )

    print(f"Model: {params.describe()}")
    print(f"Workload: {config.activation.describe()} against {config.adversary.describe()}")
    print()

    result = simulate(config)

    print("Outcome:", result.summary())
    print()
    print("Per-node synchronization latency (rounds from activation to first output):")
    for node_id in result.trace.node_ids:
        latency = result.trace.sync_latency_of(node_id)
        activated = result.trace.activation_rounds[node_id]
        print(f"  node {node_id}: activated in round {activated:4d}, synchronized after {latency} rounds")

    election = election_from_result(result)
    print()
    print(f"Leader election: node {election.leader} won in round {election.election_round} "
          f"({len(election.followers)} followers adopted its numbering)")
    print("Node-rounds per role:", summarize_roles(result.metrics.role_rounds))

    bound = trapdoor_upper_bound(params.participant_bound, params.frequencies, params.disruption_budget)
    print()
    print(f"Theorem 10 shape F/(F-t)·log²N + F·t/(F-t)·logN = {bound:.0f} (unitless, constants omitted)")
    print(f"Measured worst latency = {result.max_sync_latency} rounds "
          f"(≈ {result.max_sync_latency / bound:.1f}× the formula)")

    report = result.report
    print()
    print("Problem properties (§3):")
    print(f"  validity      : {'ok' if report.validity_holds else 'VIOLATED'}")
    print(f"  synch commit  : {'ok' if report.synch_commit_holds else 'VIOLATED'}")
    print(f"  correctness   : {'ok' if report.correctness_holds else 'VIOLATED'}")
    print(f"  agreement     : {'ok' if report.agreement_holds else 'VIOLATED'}")
    print(f"  liveness      : {'achieved' if report.liveness_achieved else 'NOT achieved'}")


if __name__ == "__main__":
    main()
