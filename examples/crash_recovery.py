#!/usr/bin/env python
"""Crash recovery: surviving the death of the elected leader (§8).

Both of the paper's protocols funnel the round numbering through a single
elected leader.  The concluding remarks sketch how to tolerate that leader
crashing: restart contention when the leader has been silent for long enough,
and delay committing to a numbering until several leader messages have been
heard.  This example kills the leader at two different points and shows the
crash-tolerant variant recovering, then contrasts it with the plain Trapdoor
Protocol, where a late arrival is stranded forever once the leader is gone.

Run it with::

    python examples/crash_recovery.py
"""

from __future__ import annotations

from repro import ModelParameters, RandomJammer, SimulationConfig, TrapdoorProtocol, simulate
from repro.adversary.activation import ExplicitActivation
from repro.experiments.tables import render_table
from repro.protocols.fault_tolerant import (
    CrashSchedule,
    FaultToleranceConfig,
    FaultTolerantTrapdoorProtocol,
    crashable,
)
from repro.protocols.trapdoor.config import TrapdoorConfig
from repro.protocols.trapdoor.epochs import TrapdoorSchedule

PARAMS = ModelParameters(frequencies=8, disruption_budget=2, participant_bound=16)
FT_CONFIG = FaultToleranceConfig(
    trapdoor=TrapdoorConfig(final_epoch_constant=6.0),
    commit_threshold=2,
    assist_probability=0.25,
)
SCHEDULE = TrapdoorSchedule(PARAMS, FT_CONFIG.trapdoor)


def run(factory, crash_round, activation_rounds, seed=11, max_rounds=150_000):
    if crash_round is not None:
        factory = crashable(factory, CrashSchedule(crash_rounds={0: crash_round}))
    config = SimulationConfig(
        params=PARAMS,
        protocol_factory=factory,
        activation=ExplicitActivation(rounds=activation_rounds),
        adversary=RandomJammer(),
        max_rounds=max_rounds,
        seed=seed,
    )
    return simulate(config)


def describe(result, crashed_node=0):
    rows = []
    for node in result.trace.node_ids:
        sync_round = result.trace.sync_round_of(node)
        rows.append(
            {
                "node": node,
                "crashed": "yes" if node == crashed_node else "no",
                "activated_in_round": result.trace.activation_rounds[node],
                "synchronized_in_round": sync_round if sync_round is not None else "never",
            }
        )
    return rows


def main() -> None:
    activation = [1, 3, 5, 7]
    scenarios = {
        "no crash": None,
        "leader crashes the moment it wins": SCHEDULE.total_rounds + 1,
        "leader crashes after everyone synced": 3 * SCHEDULE.total_rounds,
    }

    print(f"Crash-tolerant Trapdoor — {PARAMS.describe()}")
    print(f"schedule length {SCHEDULE.total_rounds} rounds, "
          f"restart timeout {FT_CONFIG.silence_timeout(SCHEDULE)} rounds, "
          f"commit after {FT_CONFIG.commit_threshold} leader messages\n")

    for name, crash_round in scenarios.items():
        result = run(FaultTolerantTrapdoorProtocol.factory(FT_CONFIG), crash_round, activation)
        print(render_table(describe(result), title=f"Scenario: {name}"))
        survivors = [n for n in result.trace.node_ids if n != 0]
        synced = all(result.trace.sync_round_of(n) is not None for n in survivors)
        print(f"  -> all surviving nodes synchronized: {'yes' if synced else 'NO'}"
              f" (execution took {result.rounds_simulated} rounds)\n")

    print("Contrast: the plain Trapdoor Protocol with a late arrival after the leader died.")
    # Node 3 arrives long after the leader (node 0) has crashed; without the §8
    # modification nobody ever tells it the agreed numbering, so it eventually
    # crowns itself leader with a *different* numbering and breaks agreement.
    late_arrival = [1, 3, 5, 4 * SCHEDULE.total_rounds]
    straggler = late_arrival.index(max(late_arrival))
    plain = run(
        TrapdoorProtocol.factory(),
        crash_round=2 * SCHEDULE.total_rounds,
        activation_rounds=late_arrival,
        max_rounds=20_000,
        seed=11,
    )
    print(render_table(describe(plain), title="Plain Trapdoor, leader crashed, straggler arrives late"))

    def straggler_agrees(result) -> bool:
        last = result.trace.records[-1]
        straggler_output = last.outputs.get(straggler)
        survivor_outputs = {
            value
            for node, value in last.outputs.items()
            if node not in (0, straggler) and value is not None
        }
        return straggler_output is not None and survivor_outputs == {straggler_output}

    print(f"  -> the straggler agrees with the group without the §8 modification: "
          f"{'yes' if straggler_agrees(plain) else 'NO (it invented its own numbering)'}")

    ft_late = run(
        FaultTolerantTrapdoorProtocol.factory(FT_CONFIG),
        crash_round=2 * SCHEDULE.total_rounds,
        activation_rounds=late_arrival,
        max_rounds=200_000,
        seed=11,
    )
    print(f"  -> with restart + assist the same straggler adopts the surviving numbering: "
          f"{'yes' if straggler_agrees(ft_late) else 'no'}")


if __name__ == "__main__":
    main()
