#!/usr/bin/env python
"""The jammed café: ad hoc arrivals under adaptive interference.

The paper's motivating scene is "a malcontent with a signal jammer attempting
to block a Starbucks base station": devices arrive at unpredictable times, the
interference is not random noise but an adversary that reacts to what the
devices do, and nobody knows how many participants there will be.

This example runs the Trapdoor Protocol in exactly that setting — customers
trickle in over time while a *reactive* jammer always disrupts the channels
that carried the most traffic so far — and then repeats the run across several
seeds and jammer strategies to show that the protocol's guarantees are not an
artifact of one lucky execution.

Run it with::

    python examples/jammed_cafe.py
"""

from __future__ import annotations

from repro import (
    BurstyJammer,
    ModelParameters,
    RandomJammer,
    ReactiveJammer,
    SimulationConfig,
    StaggeredActivation,
    SweepJammer,
    TrapdoorProtocol,
    run_trials,
    simulate,
)
from repro.experiments.tables import render_table


def single_execution() -> None:
    """One café afternoon, narrated round by round (coarsely)."""
    params = ModelParameters(frequencies=12, disruption_budget=5, participant_bound=128)
    config = SimulationConfig(
        params=params,
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=12, spacing=5),
        adversary=ReactiveJammer(),
        seed=7,
    )
    result = simulate(config)

    print(f"One execution — {params.describe()}, 12 devices arriving every 5 rounds,")
    print("reactive jammer targeting the busiest channels.")
    print()
    print(" ", result.summary())
    print()

    milestones = []
    synced_so_far: set[int] = set()
    for record in result.trace:
        newly_synced = [
            node for node in record.synchronized_nodes() if node not in synced_so_far
        ]
        synced_so_far.update(newly_synced)
        if newly_synced or record.activity.activations:
            milestones.append(
                {
                    "round": record.global_round,
                    "activated": ", ".join(map(str, record.activity.activations)) or "-",
                    "newly_synchronized": ", ".join(map(str, newly_synced)) or "-",
                    "jammed_channels": len(record.activity.disrupted),
                }
            )
    print(render_table(milestones[:30], title="Arrival and synchronization milestones (first 30 events)"))
    print()


def across_jammers() -> None:
    """The same afternoon against different interference sources."""
    params = ModelParameters(frequencies=12, disruption_budget=5, participant_bound=128)
    jammers = {
        "random noise": RandomJammer(),
        "frequency sweep": SweepJammer(),
        "microwave oven (bursty)": BurstyJammer(on_rounds=20, off_rounds=20),
        "reactive attacker": ReactiveJammer(),
    }
    rows = []
    for name, jammer in jammers.items():
        config = SimulationConfig(
            params=params,
            protocol_factory=TrapdoorProtocol.factory(),
            activation=StaggeredActivation(count=12, spacing=5),
            adversary=jammer,
            max_rounds=50_000,
        )
        summary = run_trials(config, seeds=5)
        rows.append(
            {
                "interference": name,
                "mean_latency": summary.mean_latency,
                "p95_latency": summary.percentile_latency(0.95),
                "liveness": summary.liveness_rate,
                "agreement": summary.agreement_rate,
            }
        )
    print(render_table(rows, title="Five seeds per interference source", float_digits=1))


def main() -> None:
    single_execution()
    across_jammers()


if __name__ == "__main__":
    main()
