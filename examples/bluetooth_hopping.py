#!/usr/bin/env python
"""Synchronize, then coordinate: frequency hopping, TDMA, and group re-keying.

The paper's introduction argues that a shared round numbering is the building
block that lets higher-level protocols run in an ad hoc setting: Bluetooth-style
pseudorandom frequency hopping needs every device to hop to the same channel in
the same round; TDMA needs a shared slot count; periodic maintenance (group
re-keying, counting) needs everyone to agree on *when* the maintenance rounds
are.  This example runs the whole pipeline:

1. synchronize a piconet of devices with the Trapdoor Protocol under jamming;
2. derive a shared frequency-hopping sequence from the agreed round numbers;
3. carve the synchronized rounds into TDMA slots using the device uids;
4. schedule group re-keying epochs on the shared clock;
5. show what breaks for a device whose clock is off by a few rounds.

Run it with::

    python examples/bluetooth_hopping.py
"""

from __future__ import annotations

from repro import (
    ModelParameters,
    RandomJammer,
    SimulationConfig,
    StaggeredActivation,
    TrapdoorProtocol,
    simulate,
)
from repro.apps.counting import CountingWindow, recommended_window_length, windows_to_count_all
from repro.apps.frequency_hopping import FrequencyHopper
from repro.apps.group_key import GroupKeySchedule
from repro.apps.leader_election import election_from_result
from repro.apps.tdma import TdmaSchedule
from repro.experiments.tables import render_table


def synchronize():
    params = ModelParameters(frequencies=16, disruption_budget=4, participant_bound=64)
    config = SimulationConfig(
        params=params,
        protocol_factory=TrapdoorProtocol.factory(),
        activation=StaggeredActivation(count=7, spacing=4),
        adversary=RandomJammer(),
        seed=99,
        extra_rounds_after_sync=5,
    )
    result = simulate(config)
    print("Step 1 — synchronization:", result.summary())
    election = election_from_result(result)
    print(f"          leader: node {election.leader}, followers: {list(election.followers)}")
    print()
    return params, result


def main() -> None:
    params, result = synchronize()
    trace = result.trace

    # The agreed round number at the end of the execution (all nodes output it).
    final_record = trace.records[-1]
    shared_round = next(v for v in final_record.outputs.values() if v is not None)
    # The uids the devices drew at activation; in a real deployment these
    # would be exchanged during the maintenance rounds the paper describes.
    device_uids = sorted({_uid_of(result, node) for node in trace.node_ids})

    # Step 2 — frequency hopping from the shared round number.
    hopper = FrequencyHopper(params.band, seed=0xB1_07_EE, avoid=frozenset({1}))
    hops = hopper.hop_sequence(shared_round, 12)
    print("Step 2 — shared hop sequence for the next 12 rounds (channel 1 avoided):")
    print("         ", " ".join(f"{f:2d}" for f in hops))
    print(f"          a device whose clock is 2 rounds off meets the group in only "
          f"{hopper.rendezvous_rate(2, shared_round, 500):.0%} of rounds")
    print()

    # Step 3 — TDMA slots from the device uids.
    tdma = TdmaSchedule.round_robin(device_uids)
    rows = [
        {
            "round": shared_round + offset,
            "hop_channel": hopper.frequency_for_round(shared_round + offset),
            "tdma_transmitter_uid": (tdma.transmitters_in_round(shared_round + offset) or ("-",))[0],
        }
        for offset in range(8)
    ]
    print(render_table(rows, title="Step 3 — the coordinated schedule (one transmitter per round, same channel)"))
    assert tdma.is_collision_free(range(shared_round, shared_round + 10 * tdma.cycle_length))
    print()

    # Step 4 — periodic maintenance on the shared clock.
    keys = GroupKeySchedule(group_secret=b"piconet-42", rekey_period=128)
    window = CountingWindow(period=64, length=recommended_window_length(len(device_uids)) // 2)
    print("Step 4 — maintenance on the shared clock:")
    print(f"          group key epoch at round {shared_round}: #{keys.epoch_of_round(shared_round)}")
    print(f"          next re-key at round {(keys.epoch_of_round(shared_round) + 1) * 128}")
    print(f"          counting windows recur every {window.period} rounds; "
          f"{windows_to_count_all(device_uids, window.length)} window(s) suffice to hear every device")
    print()

    # Step 5 — what synchronization buys.
    print("Step 5 — without synchronization:")
    print(f"          desynchronized hopper rendezvous rate ≈ {hopper.rendezvous_rate(5, shared_round, 500):.0%}")
    print(f"          devices 3 rounds apart agree on the group key: {keys.keys_match(shared_round, shared_round + 3)}")


def _uid_of(result, node_id: int) -> int:
    """The uid a node drew at activation (exposed for the example via the trace roles)."""
    # The engine does not expose protocol internals in the trace, so for the
    # example we re-derive the uid the same way the engine did: from the
    # node's deterministic random stream.
    from repro.engine.rng import RandomStreams
    from repro.timestamps import draw_uid

    streams = RandomStreams(result.trace.seed)
    return draw_uid(streams.node_stream(node_id), result.trace.params.participant_bound)


if __name__ == "__main__":
    main()
